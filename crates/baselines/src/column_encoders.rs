//! Trained column encoders: a Starmie-style contrastive encoder and a
//! DeepJoin-style supervised encoder.
//!
//! Both consume the deterministic [`crate::SentenceEncoder`] features of a
//! column (the "pretrained LM" stand-in) and train a two-layer projection
//! head on top — Starmie with SimCLR-style views (two random halves of the
//! same column must embed close, in-batch others far), DeepJoin with
//! labelled joinable pairs.

use crate::sentence::SentenceEncoder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tsfm_nn::{AdamW, Linear, ParamStore, Tape, Tensor, Var};
use tsfm_table::{Column, Value};

/// Two-layer projection head with bounded (tanh) output.
struct ProjectionHead {
    fc1: Linear,
    fc2: Linear,
}

impl ProjectionHead {
    fn new<R: Rng>(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            fc1: Linear::new_xavier(store, "proj.fc1", in_dim, out_dim, rng),
            fc2: Linear::new_xavier(store, "proj.fc2", out_dim, out_dim, rng),
        }
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let z = self.fc1.forward(tape, store, x);
        let z = tape.gelu(z);
        let z = self.fc2.forward(tape, store, z);
        tape.tanh(z)
    }
}

/// InfoNCE over matched rows of `a[B,d]` and `b[B,d]`: row `i` of `a` must
/// be most similar to row `i` of `b`.
fn info_nce(tape: &mut Tape, a: Var, b: Var, temperature: f32) -> Var {
    let bt = tape.permute(b, &[1, 0]);
    let logits = tape.matmul(a, bt);
    let logits = tape.scale(logits, 1.0 / temperature);
    let n = tape.value(logits).shape()[0];
    let targets: Vec<i64> = (0..n as i64).collect();
    tape.cross_entropy_logits(logits, targets)
}

/// Training hyper-parameters shared by both encoders.
#[derive(Debug, Clone)]
pub struct ColumnEncoderConfig {
    pub out_dim: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub temperature: f32,
    pub seed: u64,
}

impl Default for ColumnEncoderConfig {
    fn default() -> Self {
        Self { out_dim: 48, epochs: 6, batch_size: 16, lr: 2e-3, temperature: 0.3, seed: 0 }
    }
}

/// Starmie-style contrastively trained column encoder.
pub struct ContrastiveColumnEncoder {
    pub features: SentenceEncoder,
    cfg: ColumnEncoderConfig,
    store: ParamStore,
    head: ProjectionHead,
}

/// A random "view" of a column: roughly half its values.
fn column_view<R: Rng>(col: &Column, rng: &mut R) -> Column {
    let vals: Vec<Value> = col
        .values
        .iter()
        .filter(|_| rng.gen_bool(0.5))
        .cloned()
        .collect();
    let vals = if vals.is_empty() { col.values.clone() } else { vals };
    Column::with_type(col.name.clone(), col.ty, vals)
}

impl ContrastiveColumnEncoder {
    pub fn new(features: SentenceEncoder, cfg: ColumnEncoderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x57a3);
        let mut store = ParamStore::new();
        let head = ProjectionHead::new(&mut store, features.dim, cfg.out_dim, &mut rng);
        Self { features, cfg, store, head }
    }

    fn featurize(&self, cols: &[&Column]) -> Tensor {
        let d = self.features.dim;
        let mut data = Vec::with_capacity(cols.len() * d);
        for c in cols {
            data.extend(self.features.encode_column(c, 100));
        }
        Tensor::from_vec(vec![cols.len(), d], data)
    }

    /// SimCLR-style training over a column corpus. Returns per-epoch loss.
    pub fn train(&mut self, columns: &[&Column]) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut opt = AdamW::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..columns.len()).collect();
        let mut losses = Vec::new();
        for epoch in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                if chunk.len() < 2 {
                    continue; // InfoNCE needs in-batch negatives
                }
                let view_a: Vec<Column> =
                    chunk.iter().map(|&i| column_view(columns[i], &mut rng)).collect();
                let view_b: Vec<Column> =
                    chunk.iter().map(|&i| column_view(columns[i], &mut rng)).collect();
                let fa = self.featurize(&view_a.iter().collect::<Vec<_>>());
                let fb = self.featurize(&view_b.iter().collect::<Vec<_>>());
                let mut tape = Tape::new(true, self.cfg.seed ^ (epoch as u64) << 8);
                let xa = tape.constant(fa);
                let xb = tape.constant(fb);
                let za = self.head.forward(&mut tape, &self.store, xa);
                let zb = self.head.forward(&mut tape, &self.store, xb);
                let loss = info_nce(&mut tape, za, zb, self.cfg.temperature);
                sum += tape.value(loss).item() as f64;
                batches += 1;
                let grads = tape.backward(loss);
                self.store.absorb_grads(&tape, &grads);
                drop(tape);
                self.store.clip_grad_norm(1.0);
                opt.step(&mut self.store, 1.0);
                self.store.zero_grads();
            }
            losses.push((sum / batches.max(1) as f64) as f32);
        }
        losses
    }

    /// Embed one column (eval mode).
    pub fn embed(&self, col: &Column) -> Vec<f32> {
        let f = self.featurize(&[col]);
        let mut tape = Tape::new(false, 0);
        let x = tape.constant(f);
        let z = self.head.forward(&mut tape, &self.store, x);
        tape.value(z).data().to_vec()
    }
}

/// DeepJoin-style supervised column encoder: positive joinable pairs pull
/// together under InfoNCE with in-batch negatives.
pub struct DeepJoinEncoder {
    pub features: SentenceEncoder,
    cfg: ColumnEncoderConfig,
    store: ParamStore,
    head: ProjectionHead,
}

impl DeepJoinEncoder {
    pub fn new(features: SentenceEncoder, cfg: ColumnEncoderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdee9);
        let mut store = ParamStore::new();
        let head = ProjectionHead::new(&mut store, features.dim, cfg.out_dim, &mut rng);
        Self { features, cfg, store, head }
    }

    /// DeepJoin's column-to-text: header plus values (we reuse the
    /// sentence featurizer on the combined text).
    fn column_text_features(&self, cols: &[&Column]) -> Tensor {
        let d = self.features.dim;
        let mut data = Vec::with_capacity(cols.len() * d);
        for c in cols {
            let mut text = c.name.clone();
            text.push(' ');
            for v in c.rendered_values().take(60) {
                text.push_str(&v);
                text.push(' ');
            }
            data.extend(self.features.encode(&text));
        }
        Tensor::from_vec(vec![cols.len(), d], data)
    }

    /// Train on positive joinable pairs. Returns per-epoch loss.
    pub fn train(&mut self, pairs: &[(&Column, &Column)]) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut opt = AdamW::new(self.cfg.lr);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let mut losses = Vec::new();
        for epoch in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                if chunk.len() < 2 {
                    continue;
                }
                let left: Vec<&Column> = chunk.iter().map(|&i| pairs[i].0).collect();
                let right: Vec<&Column> = chunk.iter().map(|&i| pairs[i].1).collect();
                let fa = self.column_text_features(&left);
                let fb = self.column_text_features(&right);
                let mut tape = Tape::new(true, self.cfg.seed ^ (epoch as u64) << 9);
                let xa = tape.constant(fa);
                let xb = tape.constant(fb);
                let za = self.head.forward(&mut tape, &self.store, xa);
                let zb = self.head.forward(&mut tape, &self.store, xb);
                let loss = info_nce(&mut tape, za, zb, self.cfg.temperature);
                sum += tape.value(loss).item() as f64;
                batches += 1;
                let grads = tape.backward(loss);
                self.store.absorb_grads(&tape, &grads);
                drop(tape);
                self.store.clip_grad_norm(1.0);
                opt.step(&mut self.store, 1.0);
                self.store.zero_grads();
            }
            losses.push((sum / batches.max(1) as f64) as f32);
        }
        losses
    }

    pub fn embed(&self, col: &Column) -> Vec<f32> {
        let f = self.column_text_features(&[col]);
        let mut tape = Tape::new(false, 0);
        let x = tape.constant(f);
        let z = self.head.forward(&mut tape, &self.store, x);
        tape.value(z).data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_core::cosine;

    fn col(prefix: &str, n: usize) -> Column {
        Column::new(
            "c",
            (0..n).map(|i| Value::Str(format!("{prefix} item {i}"))).collect(),
        )
    }

    #[test]
    fn contrastive_training_reduces_loss() {
        let cols: Vec<Column> = (0..24).map(|i| col(&format!("dom{}", i % 6), 30)).collect();
        let refs: Vec<&Column> = cols.iter().collect();
        let mut enc = ContrastiveColumnEncoder::new(
            SentenceEncoder::new(48, 1),
            ColumnEncoderConfig { epochs: 5, ..Default::default() },
        );
        let losses = enc.train(&refs);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "contrastive loss should fall: {losses:?}"
        );
    }

    #[test]
    fn views_of_same_column_embed_close() {
        let cols: Vec<Column> = (0..16).map(|i| col(&format!("dom{i}"), 40)).collect();
        let refs: Vec<&Column> = cols.iter().collect();
        let mut enc = ContrastiveColumnEncoder::new(
            SentenceEncoder::new(48, 2),
            ColumnEncoderConfig { epochs: 4, ..Default::default() },
        );
        enc.train(&refs);
        let mut rng = StdRng::seed_from_u64(9);
        let v1 = column_view(&cols[0], &mut rng);
        let v2 = column_view(&cols[0], &mut rng);
        let (e1, e2) = (enc.embed(&v1), enc.embed(&v2));
        let eo = enc.embed(&cols[7]);
        assert!(cosine(&e1, &e2) > cosine(&e1, &eo), "same column closer than other");
    }

    #[test]
    fn deepjoin_pairs_embed_close_after_training() {
        // Joinable pairs share a value prefix domain.
        let lefts: Vec<Column> = (0..16).map(|i| col(&format!("k{}", i % 4), 25)).collect();
        let rights: Vec<Column> = (0..16).map(|i| col(&format!("k{}", i % 4), 25)).collect();
        let pairs: Vec<(&Column, &Column)> = lefts.iter().zip(rights.iter()).collect();
        let mut enc = DeepJoinEncoder::new(
            SentenceEncoder::new(48, 3),
            ColumnEncoderConfig { epochs: 5, ..Default::default() },
        );
        let losses = enc.train(&pairs);
        assert!(losses.last().unwrap() <= losses.first().unwrap(), "{losses:?}");
        let same = cosine(&enc.embed(&lefts[0]), &enc.embed(&rights[0]));
        let diff = cosine(&enc.embed(&lefts[0]), &enc.embed(&rights[1]));
        assert!(same > diff, "joinable pair closer: {same} vs {diff}");
    }

    #[test]
    fn column_view_never_empty() {
        let c = col("x", 1);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert!(!column_view(&c, &mut rng).is_empty());
        }
    }
}
