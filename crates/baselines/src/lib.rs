//! The comparison systems from the paper's evaluation (§IV-A1, §IV-C).
//!
//! Neural baselines are *value-serialization* models built on the same
//! `tsfm-nn` stack as TabSketchFM, differing exactly where the original
//! systems differ (what they see and what can train):
//!
//! | Paper system | Here | Sees | Trains |
//! |---|---|---|---|
//! | Vanilla BERT | [`TextPairModel`] + `Serialization::Headers` | headers | all |
//! | TaBERT | `Serialization::Rows` | headers + cell values | all |
//! | TUTA | `Serialization::Struct` | headers + types + structure | all |
//! | TAPAS/TABBIE | `Serialization::Rows` + frozen encoder | cells | MLP only |
//! | SBERT | [`SentenceEncoder`] | top-100 unique values | nothing |
//! | Starmie | [`ContrastiveColumnEncoder`] | column values | contrastive |
//! | DeepJoin | [`DeepJoinEncoder`] | column text | supervised pairs |
//! | WarpGate | [`SentenceEncoder`] + `SimHashLsh` | column values | nothing |
//! | D3L / SANTOS | [`traditional`] scorers | values + headers + stats | nothing |
//! | Josie / LSHForest | `tsfm-search::overlap` | value sets | nothing |

#![forbid(unsafe_code)]

pub mod column_encoders;
pub mod sentence;
pub mod textmodel;
pub mod traditional;

pub use column_encoders::{ContrastiveColumnEncoder, DeepJoinEncoder};
pub use sentence::SentenceEncoder;
pub use textmodel::{Serialization, TextModelConfig, TextPairModel};
pub use traditional::{d3l_column_score, d3l_table_score, santos_table_score, ColumnEvidence};
