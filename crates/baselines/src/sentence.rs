//! A deterministic sentence encoder standing in for SBERT
//! (`all-MiniLM-L12-v2` in the paper).
//!
//! Word vectors are seeded pseudo-Gaussian hashes of the word plus its
//! character 3-grams (FastText-style subwords), mean-pooled and
//! L2-normalized. Two properties the paper's SBERT usage relies on are
//! preserved: (a) columns drawing values from the same lexical domain get
//! similar embeddings even with zero value overlap, and (b) the encoding
//! is order-invariant in the value set (a *sentence* of concatenated
//! values is pooled as a bag). See DESIGN.md's substitution table.

use tsfm_table::hash::{hash_str_seeded, splitmix64};
use tsfm_table::Column;

/// Hash-based sentence/column encoder.
#[derive(Debug, Clone)]
pub struct SentenceEncoder {
    pub dim: usize,
    seed: u64,
}

impl Default for SentenceEncoder {
    fn default() -> Self {
        Self::new(96, 0x5be7)
    }
}

impl SentenceEncoder {
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0);
        Self { dim, seed }
    }

    /// Deterministic pseudo-Gaussian vector for one subword unit.
    fn unit_vector(&self, unit: &str, out: &mut [f32], weight: f32) {
        let h = hash_str_seeded(unit, self.seed);
        let mut state = h | 1;
        for slot in out.iter_mut() {
            state = splitmix64(state);
            // Sum of two uniforms − 1 ≈ triangular(0, σ≈0.41); adequate.
            let u1 = (state >> 40) as f32 / (1u64 << 24) as f32;
            state = splitmix64(state);
            let u2 = (state >> 40) as f32 / (1u64 << 24) as f32;
            *slot += (u1 + u2 - 1.0) * weight;
        }
    }

    /// Embed one word: the word hash plus its char-3-gram hashes, so
    /// morphologically related words share mass.
    fn add_word(&self, word: &str, out: &mut [f32]) {
        self.unit_vector(word, out, 1.0);
        let chars: Vec<char> = word.chars().collect();
        if chars.len() >= 3 {
            for w in chars.windows(3) {
                let g: String = w.iter().collect();
                self.unit_vector(&format!("#{g}#"), out, 0.4);
            }
        }
    }

    /// Encode free text: mean of word vectors, L2-normalized.
    pub fn encode(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for w in text.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()) {
            let lw = w.to_lowercase();
            self.add_word(&lw, &mut v);
            n += 1;
        }
        if n > 0 {
            for x in &mut v {
                *x /= n as f32;
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Encode a column the way the paper's SBERT baseline does: the top
    /// `max_values` *unique* values concatenated into one sentence.
    pub fn encode_column(&self, col: &Column, max_values: usize) -> Vec<f32> {
        let mut seen = std::collections::BTreeSet::new();
        let mut sentence = String::new();
        for v in col.rendered_values() {
            if seen.insert(v.clone()) {
                sentence.push_str(&v);
                sentence.push(' ');
                if seen.len() >= max_values {
                    break;
                }
            }
        }
        self.encode(&sentence)
    }
}

fn l2_normalize(v: &mut [f32]) {
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_core::cosine;
    use tsfm_table::Value;

    fn col(vals: &[&str]) -> Column {
        Column::new("c", vals.iter().map(|v| Value::Str((*v).to_string())).collect())
    }

    #[test]
    fn deterministic_and_normalized() {
        let e = SentenceEncoder::default();
        let a = e.encode("vienna graz linz");
        let b = e.encode("vienna graz linz");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn shared_words_increase_similarity() {
        let e = SentenceEncoder::default();
        let a = e.encode("north station street");
        let b = e.encode("south station street");
        let c = e.encode("quarterly revenue total");
        assert!(cosine(&a, &b) > cosine(&a, &c), "lexical overlap dominates");
    }

    #[test]
    fn subwords_link_related_forms() {
        let e = SentenceEncoder::default();
        let a = e.encode("austria");
        let b = e.encode("austrian");
        let c = e.encode("zimbabwe");
        assert!(cosine(&a, &b) > cosine(&a, &c), "char n-grams share mass");
    }

    #[test]
    fn column_encoding_order_invariant() {
        let e = SentenceEncoder::default();
        let a = e.encode_column(&col(&["x1", "x2", "x3"]), 100);
        let b = e.encode_column(&col(&["x3", "x1", "x2"]), 100);
        // Unique-value iteration order differs but the bag is the same.
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn column_encoding_caps_values() {
        let e = SentenceEncoder::default();
        let many: Vec<String> = (0..500).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = many.iter().map(String::as_str).collect();
        let v = e.encode_column(&col(&refs), 100);
        assert_eq!(v.len(), e.dim);
    }

    #[test]
    fn empty_input_is_zero() {
        let e = SentenceEncoder::default();
        let v = e.encode("");
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
