//! Value-serialization cross-encoders: the Vanilla-BERT, TaBERT-, TUTA-
//! and TAPAS/TABBIE-style baselines of §IV-A1, all built on the same
//! `tsfm-nn` encoder stack as TabSketchFM but consuming *text* instead of
//! sketches.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tsfm_core::finetune::{task_loss, FinetuneConfig, FinetuneReport, Label, TaskKind};
use tsfm_nn::layers::attn_bias_from_lengths;
use tsfm_nn::{
    AdamW, Embedding, EncoderConfig, LayerNorm, Linear, LinearSchedule, ParamStore, Pooler,
    Tape, TransformerEncoder, Var,
};
use tsfm_table::Table;
use tsfm_tokenizer::{Vocab, CLS, SEP};

/// What a baseline sees of a table (the axis the original systems differ
/// on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Serialization {
    /// Column headers only (Vanilla BERT).
    Headers,
    /// Headers plus the first rows of cell values (TaBERT/TAPAS/TABBIE).
    Rows { max_rows: usize },
    /// Headers, declared types and shape markers (TUTA-style structure).
    Struct,
}

/// Baseline model configuration.
#[derive(Debug, Clone)]
pub struct TextModelConfig {
    pub encoder: EncoderConfig,
    pub max_seq: usize,
    /// Freeze embeddings/encoder/pooler; only the 2-layer head trains
    /// (the TAPAS/TABBIE adaptation in the paper).
    pub frozen_encoder: bool,
}

impl TextModelConfig {
    pub fn small() -> Self {
        Self { encoder: EncoderConfig::small(), max_seq: 160, frozen_encoder: false }
    }

    pub fn tiny() -> Self {
        Self { encoder: EncoderConfig::tiny(), max_seq: 96, frozen_encoder: false }
    }
}

/// A text cross-encoder over table pairs with a two-layer task head.
pub struct TextPairModel {
    pub name: String,
    pub cfg: TextModelConfig,
    pub serialization: Serialization,
    pub task: TaskKind,
    pub store: ParamStore,
    vocab: Vocab,
    token_emb: Embedding,
    pos_emb: Embedding,
    seg_emb: Embedding,
    ln: LayerNorm,
    encoder: TransformerEncoder,
    pooler: Pooler,
    head1: Linear,
    head2: Linear,
}

impl TextPairModel {
    pub fn new<R: Rng>(
        name: impl Into<String>,
        vocab: Vocab,
        cfg: TextModelConfig,
        serialization: Serialization,
        task: TaskKind,
        rng: &mut R,
    ) -> Self {
        let mut store = ParamStore::new();
        let d = cfg.encoder.d_model;
        let token_emb = Embedding::new(&mut store, "emb.token", vocab.len(), d, rng);
        let pos_emb = Embedding::new(&mut store, "emb.pos", cfg.max_seq, d, rng);
        let seg_emb = Embedding::new(&mut store, "emb.seg", 2, d, rng);
        let ln = LayerNorm::new(&mut store, "emb.ln", d);
        let encoder = TransformerEncoder::new(&mut store, "encoder", cfg.encoder.clone(), rng);
        let pooler = Pooler::new(&mut store, "pooler", d, rng);
        let head1 = Linear::new_xavier(&mut store, "head.fc1", d, d, rng);
        let head2 = Linear::new_xavier(&mut store, "head.fc2", d, task.output_dim(), rng);
        if cfg.frozen_encoder {
            store.freeze_prefix("emb");
            store.freeze_prefix("encoder");
            store.freeze_prefix("pooler");
        }
        TextPairModel {
            name: name.into(),
            cfg,
            serialization,
            task,
            store,
            vocab,
            token_emb,
            pos_emb,
            seg_emb,
            ln,
            encoder,
            pooler,
            head1,
            head2,
        }
    }

    /// Serialize one table to a token id stream.
    pub fn serialize(&self, t: &Table) -> Vec<u32> {
        let mut text = String::new();
        match self.serialization {
            Serialization::Headers => {
                for c in &t.columns {
                    text.push_str(&c.name);
                    text.push(' ');
                }
            }
            Serialization::Rows { max_rows } => {
                for c in &t.columns {
                    text.push_str(&c.name);
                    text.push(' ');
                }
                for r in 0..t.num_rows().min(max_rows) {
                    for ci in 0..t.num_cols() {
                        text.push_str(&t.cell(r, ci).render());
                        text.push(' ');
                    }
                }
            }
            Serialization::Struct => {
                text.push_str(&t.description);
                text.push(' ');
                for c in &t.columns {
                    text.push_str(&c.name);
                    text.push(' ');
                    text.push_str(c.ty.name());
                    text.push(' ');
                }
                // Coarse shape markers (row-count bucket).
                let bucket = match t.num_rows() {
                    0..=10 => "tiny",
                    11..=100 => "small",
                    101..=1000 => "medium",
                    _ => "large",
                };
                text.push_str(bucket);
            }
        }
        self.vocab.encode_text(&text)
    }

    /// Build `[CLS] A [SEP] B [SEP]` (ids, segments), truncated evenly.
    fn pair_ids(&self, a: &Table, b: &Table) -> (Vec<u32>, Vec<u32>) {
        let budget = self.cfg.max_seq - 3; // CLS + 2 SEP
        let half = budget / 2;
        let mut ta = self.serialize(a);
        let mut tb = self.serialize(b);
        let take_a = ta.len().min(half.max(budget.saturating_sub(tb.len())));
        ta.truncate(take_a);
        tb.truncate(budget - ta.len());
        let mut ids = Vec::with_capacity(ta.len() + tb.len() + 3);
        let mut segs = Vec::with_capacity(ids.capacity());
        ids.push(CLS);
        segs.push(0);
        ids.extend(&ta);
        segs.extend(std::iter::repeat(0).take(ta.len()));
        ids.push(SEP);
        segs.push(0);
        ids.extend(&tb);
        segs.extend(std::iter::repeat(1).take(tb.len()));
        ids.push(SEP);
        segs.push(1);
        (ids, segs)
    }

    /// Logits `[B, N]` for a batch of table pairs.
    pub fn forward(&self, tape: &mut Tape, pairs: &[(&Table, &Table)]) -> Var {
        let encoded: Vec<(Vec<u32>, Vec<u32>)> =
            pairs.iter().map(|(a, b)| self.pair_ids(a, b)).collect();
        let b = encoded.len();
        let t = encoded.iter().map(|(ids, _)| ids.len()).max().expect("non-empty");
        let lengths: Vec<usize> = encoded.iter().map(|(ids, _)| ids.len()).collect();
        let mut ids = vec![tsfm_tokenizer::PAD; b * t];
        let mut segs = vec![0u32; b * t];
        let mut pos = vec![0u32; b * t];
        for (bi, (i_row, s_row)) in encoded.iter().enumerate() {
            ids[bi * t..bi * t + i_row.len()].copy_from_slice(i_row);
            segs[bi * t..bi * t + s_row.len()].copy_from_slice(s_row);
            for (p, slot) in pos[bi * t..bi * t + i_row.len()].iter_mut().enumerate() {
                *slot = p.min(self.cfg.max_seq - 1) as u32;
            }
        }
        let st = &self.store;
        let e_tok = self.token_emb.forward(tape, st, ids);
        let e_pos = self.pos_emb.forward(tape, st, pos);
        let e_seg = self.seg_emb.forward(tape, st, segs);
        let mut x = tape.add(e_tok, e_pos);
        x = tape.add(x, e_seg);
        let x = self.ln.forward(tape, st, x);
        let x = tape.dropout(x, self.cfg.encoder.dropout);
        let x3 = tape.reshape(x, vec![b, t, self.cfg.encoder.d_model]);
        let bias = attn_bias_from_lengths(&lengths, t);
        let h = self.encoder.forward(tape, st, x3, &bias);
        let pooled = self.pooler.forward(tape, st, h);
        let pooled = tape.dropout(pooled, self.cfg.encoder.dropout);
        let z = self.head1.forward(tape, st, pooled);
        let z = tape.gelu(z);
        self.head2.forward(tape, st, z)
    }

    /// Pooled embedding of one free-text sequence (`[CLS] text [SEP]`) —
    /// how the fine-tuned TaBERT/TUTA baselines provide column/table
    /// embeddings for search (§IV-C).
    pub fn embed_text(&self, text: &str) -> Vec<f32> {
        let mut ids = vec![CLS];
        let mut body = self.vocab.encode_text(text);
        body.truncate(self.cfg.max_seq - 2);
        ids.extend(body);
        ids.push(SEP);
        let t = ids.len();
        let pos: Vec<u32> = (0..t).map(|p| p.min(self.cfg.max_seq - 1) as u32).collect();
        let segs = vec![0u32; t];
        let mut tape = Tape::new(false, 0);
        let st = &self.store;
        let e_tok = self.token_emb.forward(&mut tape, st, ids);
        let e_pos = self.pos_emb.forward(&mut tape, st, pos);
        let e_seg = self.seg_emb.forward(&mut tape, st, segs);
        let mut x = tape.add(e_tok, e_pos);
        x = tape.add(x, e_seg);
        let x = self.ln.forward(&mut tape, st, x);
        let x3 = tape.reshape(x, vec![1, t, self.cfg.encoder.d_model]);
        let bias = attn_bias_from_lengths(&[t], t);
        let h = self.encoder.forward(&mut tape, st, x3, &bias);
        let pooled = self.pooler.forward(&mut tape, st, h);
        tape.value(pooled).data().to_vec()
    }

    /// Serialize a single table the way this model's pair input would, for
    /// table-level embedding search.
    pub fn table_text(&self, t: &Table) -> String {
        let mut text = String::new();
        match self.serialization {
            Serialization::Headers => {
                for c in &t.columns {
                    text.push_str(&c.name);
                    text.push(' ');
                }
            }
            Serialization::Rows { max_rows } => {
                for c in &t.columns {
                    text.push_str(&c.name);
                    text.push(' ');
                }
                for r in 0..t.num_rows().min(max_rows) {
                    for ci in 0..t.num_cols() {
                        text.push_str(&t.cell(r, ci).render());
                        text.push(' ');
                    }
                }
            }
            Serialization::Struct => {
                text.push_str(&t.description);
                for c in &t.columns {
                    text.push(' ');
                    text.push_str(&c.name);
                    text.push(' ');
                    text.push_str(c.ty.name());
                }
            }
        }
        text
    }

    /// Predicted raw outputs, batched.
    pub fn predict(&self, pairs: &[(&Table, &Table)], batch_size: usize) -> Vec<Vec<f32>> {
        let n_out = self.task.output_dim();
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(batch_size) {
            let mut tape = Tape::new(false, 0);
            let logits = self.forward(&mut tape, chunk);
            for row in tape.value(logits).data().chunks(n_out) {
                out.push(row.to_vec());
            }
        }
        out
    }
}

/// Train a baseline on table pairs (mirrors `tsfm_core::finetune`).
pub fn train_text_model(
    model: &mut TextPairModel,
    train: (&[(&Table, &Table)], &[Label]),
    valid: (&[(&Table, &Table)], &[Label]),
    cfg: &FinetuneConfig,
) -> FinetuneReport {
    let (train_pairs, train_labels) = train;
    let (valid_pairs, valid_labels) = valid;
    assert_eq!(train_pairs.len(), train_labels.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let steps_per_epoch = train_pairs.len().div_ceil(cfg.batch_size).max(1);
    let total = (steps_per_epoch * cfg.epochs) as u64;
    let sched = LinearSchedule { warmup: total / 10, total };
    let mut opt = AdamW::new(cfg.lr);

    let mut report = FinetuneReport {
        train_losses: Vec::new(),
        valid_losses: Vec::new(),
        best_valid: f32::INFINITY,
        stopped_early: false,
    };
    let mut bad = 0usize;
    let mut order: Vec<usize> = (0..train_pairs.len()).collect();
    let mut step = 0u64;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let pairs: Vec<(&Table, &Table)> = chunk.iter().map(|&i| train_pairs[i]).collect();
            let labels: Vec<Label> = chunk.iter().map(|&i| train_labels[i].clone()).collect();
            let mut tape = Tape::new(true, cfg.seed ^ (step << 1) ^ 0xba5e);
            let logits = model.forward(&mut tape, &pairs);
            let loss = task_loss(&mut tape, logits, &labels, model.task);
            sum += tape.value(loss).item() as f64;
            batches += 1;
            let grads = tape.backward(loss);
            model.store.absorb_grads(&tape, &grads);
            drop(tape);
            model.store.clip_grad_norm(1.0);
            opt.step(&mut model.store, sched.scale(step));
            model.store.zero_grads();
            step += 1;
        }
        report.train_losses.push((sum / batches.max(1) as f64) as f32);

        let vloss = if valid_pairs.is_empty() {
            *report.train_losses.last().expect("pushed")
        } else {
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for (chunk_p, chunk_l) in valid_pairs
                .chunks(cfg.batch_size)
                .zip(valid_labels.chunks(cfg.batch_size))
            {
                let mut tape = Tape::new(false, 0);
                let logits = model.forward(&mut tape, chunk_p);
                let loss = task_loss(&mut tape, logits, chunk_l, model.task);
                sum += tape.value(loss).item() as f64;
                n += 1;
            }
            (sum / n.max(1) as f64) as f32
        };
        report.valid_losses.push(vloss);
        if vloss < report.best_valid - 1e-4 {
            report.best_valid = vloss;
            bad = 0;
        } else {
            bad += 1;
            if bad >= cfg.patience {
                report.stopped_early = true;
                break;
            }
        }
    }
    report
}

/// Build a vocabulary from a table corpus for the given serialization
/// (value tokens are included only when the model will see values).
pub fn build_vocab(tables: &[&Table], serialization: Serialization, max_words: usize) -> Vocab {
    let mut vb = tsfm_tokenizer::VocabBuilder::new();
    for t in tables {
        vb.add_text(&t.description);
        for c in &t.columns {
            vb.add_text(&c.name);
            vb.add_text(c.ty.name());
        }
        if let Serialization::Rows { max_rows } = serialization {
            for r in 0..t.num_rows().min(max_rows) {
                for ci in 0..t.num_cols() {
                    vb.add_text(&t.cell(r, ci).render());
                }
            }
        }
    }
    vb.add_text("tiny small medium large");
    vb.build(1, max_words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_table::{Column, Value};

    fn table(id: &str, header: &str, vals: &[&str]) -> Table {
        let mut t = Table::new(id, id).with_description("test data");
        t.push_column(Column::new(
            header,
            vals.iter().map(|v| Value::Str((*v).to_string())).collect(),
        ));
        t
    }

    fn pairs_fixture() -> (Vec<Table>, Vec<Label>) {
        // Positive pairs carry a shared join-key value in BOTH tables'
        // value lists; negatives carry it in exactly one side. Headers are
        // identical everywhere, so Headers serialization is at chance
        // while Rows serialization can learn the value conjunction.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let filler = |i: usize, side: char, rng: &mut StdRng| -> Vec<String> {
            (0..5).map(|j| format!("f{side}{i}x{}", rng.gen_range(0..9) + j)).collect()
        };
        let mut tables = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let positive = i % 2 == 0;
            let mut va = filler(i, 'a', &mut rng);
            let mut vb = filler(i, 'b', &mut rng);
            if positive {
                va[2] = "joinkey".into();
                vb[2] = "joinkey".into();
            } else if rng.gen_bool(0.5) {
                va[2] = "joinkey".into();
            } else {
                vb[2] = "joinkey".into();
            }
            tables.push(table(
                &format!("p{i}a"),
                "name",
                &va.iter().map(String::as_str).collect::<Vec<_>>(),
            ));
            tables.push(table(
                &format!("p{i}b"),
                "name",
                &vb.iter().map(String::as_str).collect::<Vec<_>>(),
            ));
            labels.push(Label::Binary(positive));
        }
        (tables, labels)
    }

    #[test]
    fn serializations_differ() {
        let (tables, _) = pairs_fixture();
        let refs: Vec<&Table> = tables.iter().collect();
        let vocab = build_vocab(&refs, Serialization::Rows { max_rows: 5 }, 2000);
        let mut rng = StdRng::seed_from_u64(0);
        let mk = |ser| {
            TextPairModel::new(
                "m",
                vocab.clone(),
                TextModelConfig::tiny(),
                ser,
                TaskKind::Binary,
                &mut StdRng::seed_from_u64(0),
            )
        };
        let headers = mk(Serialization::Headers);
        let rows = mk(Serialization::Rows { max_rows: 5 });
        let structm = mk(Serialization::Struct);
        let _ = &mut rng;
        let h = headers.serialize(&tables[0]);
        let r = rows.serialize(&tables[0]);
        let s = structm.serialize(&tables[0]);
        assert!(r.len() > h.len(), "rows see values");
        assert!(s.len() > h.len(), "struct sees types");
        assert_ne!(r, s);
    }

    #[test]
    fn value_model_learns_what_header_model_cannot() {
        let (tables, labels) = pairs_fixture();
        let refs: Vec<&Table> = tables.iter().collect();
        let vocab = build_vocab(&refs, Serialization::Rows { max_rows: 6 }, 4000);
        let pairs: Vec<(&Table, &Table)> =
            (0..labels.len()).map(|i| (&tables[2 * i], &tables[2 * i + 1])).collect();
        let cfg = FinetuneConfig { epochs: 30, batch_size: 8, lr: 3e-3, patience: 30, seed: 3 };

        let mut rng = StdRng::seed_from_u64(1);
        let mut rows_model = TextPairModel::new(
            "tabert-like",
            vocab.clone(),
            TextModelConfig::tiny(),
            Serialization::Rows { max_rows: 6 },
            TaskKind::Binary,
            &mut rng,
        );
        train_text_model(&mut rows_model, (&pairs, &labels), (&[], &[]), &cfg);
        let preds = rows_model.predict(&pairs, 4);
        let acc = preds
            .iter()
            .zip(&labels)
            .filter(|(p, l)| {
                let yhat = p[1] > p[0];
                matches!(l, Label::Binary(b) if *b == yhat)
            })
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.8, "value model should learn value overlap: acc={acc}");

        // Header-only model is stuck near chance (identical headers).
        let mut header_model = TextPairModel::new(
            "vanilla-bert",
            vocab,
            TextModelConfig::tiny(),
            Serialization::Headers,
            TaskKind::Binary,
            &mut rng,
        );
        train_text_model(&mut header_model, (&pairs, &labels), (&[], &[]), &cfg);
        let preds = header_model.predict(&pairs, 4);
        let acc_h = preds
            .iter()
            .zip(&labels)
            .filter(|(p, l)| {
                let yhat = p[1] > p[0];
                matches!(l, Label::Binary(b) if *b == yhat)
            })
            .count() as f64
            / labels.len() as f64;
        assert!(
            acc_h < 0.75,
            "header model cannot see values; acc={acc_h} suspiciously high"
        );
    }

    #[test]
    fn frozen_encoder_does_not_move() {
        let (tables, labels) = pairs_fixture();
        let refs: Vec<&Table> = tables.iter().collect();
        let vocab = build_vocab(&refs, Serialization::Rows { max_rows: 4 }, 2000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = TextPairModel::new(
            "tapas-like",
            vocab,
            TextModelConfig { frozen_encoder: true, ..TextModelConfig::tiny() },
            Serialization::Rows { max_rows: 4 },
            TaskKind::Binary,
            &mut rng,
        );
        let tok_id = m.store.id_by_name("emb.token.table").unwrap();
        let head_id = m.store.id_by_name("head.fc2.weight").unwrap();
        let tok_before = m.store.value(tok_id).clone();
        let head_before = m.store.value(head_id).clone();
        let pairs: Vec<(&Table, &Table)> =
            (0..labels.len()).map(|i| (&tables[2 * i], &tables[2 * i + 1])).collect();
        let cfg = FinetuneConfig { epochs: 2, batch_size: 4, lr: 1e-3, patience: 5, seed: 0 };
        train_text_model(&mut m, (&pairs, &labels), (&[], &[]), &cfg);
        assert_eq!(
            m.store.value(tok_id),
            &tok_before,
            "frozen embeddings must not change"
        );
        assert_ne!(m.store.value(head_id), &head_before, "head must train");
    }
}
