//! Non-neural data-discovery scorers: D3L's multi-evidence column/table
//! unionability and SANTOS's relationship-based table unionability.

use crate::sentence::SentenceEncoder;
use std::collections::{BTreeSet, HashSet};
use tsfm_sketch::NumericalSketch;
use tsfm_table::hash::hash_str;
use tsfm_table::{ColType, Column, Table};

/// D3L's five evidence channels for a column pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnEvidence {
    /// Jaccard of header word sets.
    pub header_sim: f64,
    /// Jaccard of exact value sets.
    pub value_jaccard: f64,
    /// Cosine of (hashed) word embeddings of the headers.
    pub word_embedding_sim: f64,
    /// Numeric distribution similarity `1/(1+L1)` of numerical sketches.
    pub numeric_sim: f64,
    /// Character-class histogram cosine (the regex/format evidence).
    pub format_sim: f64,
}

impl ColumnEvidence {
    /// D3L aggregates evidences by averaging the applicable ones.
    pub fn score(&self, both_numeric: bool) -> f64 {
        if both_numeric {
            (self.header_sim + self.word_embedding_sim + self.numeric_sim) / 3.0
        } else {
            (self.header_sim
                + self.value_jaccard
                + self.word_embedding_sim
                + self.format_sim)
                / 4.0
        }
    }
}

fn word_set(s: &str) -> BTreeSet<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

fn set_jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Character-class histogram: [digit, alpha, space, punct] frequencies
/// over the first values — a cheap stand-in for D3L's regex evidence.
fn format_histogram(col: &Column) -> [f64; 4] {
    let mut h = [0.0f64; 4];
    let mut total = 0.0;
    for v in col.rendered_values().take(50) {
        for c in v.chars() {
            let slot = if c.is_ascii_digit() {
                0
            } else if c.is_alphabetic() {
                1
            } else if c.is_whitespace() {
                2
            } else {
                3
            };
            h[slot] += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for x in &mut h {
            *x /= total;
        }
    }
    h
}

fn cos4(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Compute all five D3L evidences for a column pair.
pub fn d3l_column_score(a: &Column, b: &Column, enc: &SentenceEncoder) -> ColumnEvidence {
    let header_sim = set_jaccard(&word_set(&a.name), &word_set(&b.name));
    let va: BTreeSet<String> = a.rendered_values().take(1000).collect();
    let vb: BTreeSet<String> = b.rendered_values().take(1000).collect();
    let value_jaccard = set_jaccard(&va, &vb);
    let ea = enc.encode(&a.name);
    let eb = enc.encode(&b.name);
    let word_embedding_sim = tsfm_core::cosine(&ea, &eb) as f64;
    let sa = NumericalSketch::of_column(a, 10_000);
    let sb = NumericalSketch::of_column(b, 10_000);
    let numeric_sim = 1.0 / (1.0 + sa.l1_distance(&sb));
    let format_sim = cos4(&format_histogram(a), &format_histogram(b));
    ColumnEvidence { header_sim, value_jaccard, word_embedding_sim, numeric_sim, format_sim }
}

/// D3L table unionability: greedy one-to-one column matching on the
/// evidence score, averaged over the query's columns.
pub fn d3l_table_score(query: &Table, cand: &Table, enc: &SentenceEncoder) -> f64 {
    if query.num_cols() == 0 || cand.num_cols() == 0 {
        return 0.0;
    }
    let mut scores: Vec<(f64, usize, usize)> = Vec::new();
    for (i, ca) in query.columns.iter().enumerate() {
        for (j, cb) in cand.columns.iter().enumerate() {
            let both_num = ca.ty.is_numeric() && cb.ty.is_numeric();
            if ca.ty.is_numeric() != cb.ty.is_numeric() {
                continue; // type-incompatible columns never union
            }
            let e = d3l_column_score(ca, cb, enc);
            scores.push((e.score(both_num), i, j));
        }
    }
    scores.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let mut used_q = HashSet::new();
    let mut used_c = HashSet::new();
    let mut total = 0.0;
    for (s, i, j) in scores {
        if used_q.contains(&i) || used_c.contains(&j) {
            continue;
        }
        used_q.insert(i);
        used_c.insert(j);
        total += s;
    }
    total / query.num_cols() as f64
}

/// SANTOS-style relationship signature of a string-column pair: the set of
/// hashed `(value_i, value_j)` row pairs.
fn relationship_set(a: &Column, b: &Column) -> HashSet<u64> {
    let n = a.len().min(b.len()).min(1000);
    let mut out = HashSet::with_capacity(n);
    for r in 0..n {
        let (va, vb) = (&a.values[r], &b.values[r]);
        if va.is_null() || vb.is_null() {
            continue;
        }
        out.insert(hash_str(&format!("{}→{}", va.render(), vb.render())));
    }
    out
}

/// SANTOS table unionability: the fraction of the query's string-column
/// relationships that find a matching relationship in the candidate
/// (relationship-set containment > threshold), backed off to D3L-style
/// column matching for single-string-column tables.
pub fn santos_table_score(query: &Table, cand: &Table, enc: &SentenceEncoder) -> f64 {
    let q_str: Vec<usize> = (0..query.num_cols())
        .filter(|&i| query.column(i).ty == ColType::Str)
        .collect();
    let c_str: Vec<usize> = (0..cand.num_cols())
        .filter(|&i| cand.column(i).ty == ColType::Str)
        .collect();
    if q_str.len() < 2 || c_str.len() < 2 {
        return d3l_table_score(query, cand, enc);
    }
    let mut matched = 0usize;
    let mut total = 0usize;
    for qi in 0..q_str.len() {
        for qj in 0..q_str.len() {
            if qi == qj {
                continue;
            }
            total += 1;
            let rq = relationship_set(query.column(q_str[qi]), query.column(q_str[qj]));
            if rq.is_empty() {
                continue;
            }
            // Columns about the same domains relate via shared *words*
            // even without full-value matches; approximate semantic
            // relationship matching by header+value evidence of endpoints.
            'cand: for ci in 0..c_str.len() {
                for cj in 0..c_str.len() {
                    if ci == cj {
                        continue;
                    }
                    let rc =
                        relationship_set(cand.column(c_str[ci]), cand.column(c_str[cj]));
                    let inter = rq.intersection(&rc).count();
                    let sem = {
                        let e1 = d3l_column_score(
                            query.column(q_str[qi]),
                            cand.column(c_str[ci]),
                            enc,
                        );
                        let e2 = d3l_column_score(
                            query.column(q_str[qj]),
                            cand.column(c_str[cj]),
                            enc,
                        );
                        (e1.score(false) + e2.score(false)) / 2.0
                    };
                    if inter as f64 / rq.len() as f64 > 0.1 || sem > 0.45 {
                        matched += 1;
                        break 'cand;
                    }
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        matched as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_table::Value;

    fn col(name: &str, vals: &[&str]) -> Column {
        Column::new(name, vals.iter().map(|v| Value::Str((*v).to_string())).collect())
    }

    fn int_col(name: &str, vals: &[i64]) -> Column {
        Column::new(name, vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn evidence_channels_behave() {
        let enc = SentenceEncoder::default();
        let a = col("city name", &["vienna", "graz"]);
        let b = col("city name", &["vienna", "linz"]);
        let c = col("revenue total", &["10020", "33310"]);
        let e_ab = d3l_column_score(&a, &b, &enc);
        let e_ac = d3l_column_score(&a, &c, &enc);
        assert_eq!(e_ab.header_sim, 1.0);
        assert!(e_ab.value_jaccard > 0.3);
        assert!(e_ab.word_embedding_sim > 0.99);
        assert!(e_ab.format_sim > e_ac.format_sim, "alpha vs digit formats differ");
        assert!(e_ab.score(false) > e_ac.score(false));
    }

    #[test]
    fn numeric_evidence() {
        let enc = SentenceEncoder::default();
        let a = int_col("age count", &[30, 40, 50, 60]);
        let b = int_col("age count", &[31, 41, 51, 61]);
        let c = int_col("age count", &[30_000, 40_000, 50_000]);
        let e_ab = d3l_column_score(&a, &b, &enc);
        let e_ac = d3l_column_score(&a, &c, &enc);
        assert!(e_ab.numeric_sim > e_ac.numeric_sim, "close distributions score higher");
    }

    #[test]
    fn d3l_table_score_prefers_unionable() {
        let enc = SentenceEncoder::default();
        let mut q = Table::new("q", "q");
        q.push_column(col("city name", &["vienna", "graz"]));
        q.push_column(int_col("population count", &[1900000, 290000]));
        let mut u = Table::new("u", "u");
        u.push_column(col("town name", &["salzburg", "linz"]));
        u.push_column(int_col("population count", &[155000, 206000]));
        let mut n = Table::new("n", "n");
        n.push_column(col("protein code", &["p53", "brca1"]));
        n.push_column(int_col("mass rate", &[53, 190]));
        assert!(
            d3l_table_score(&q, &u, &enc) > d3l_table_score(&q, &n, &enc),
            "unionable table scores higher"
        );
    }

    #[test]
    fn type_incompatible_columns_never_match() {
        let enc = SentenceEncoder::default();
        let mut q = Table::new("q", "q");
        q.push_column(col("value", &["a", "b"]));
        let mut c = Table::new("c", "c");
        c.push_column(int_col("value", &[1, 2]));
        assert_eq!(d3l_table_score(&q, &c, &enc), 0.0);
    }

    #[test]
    fn santos_uses_relationships() {
        let enc = SentenceEncoder::default();
        // Query: city → country relationship.
        let mut q = Table::new("q", "q");
        q.push_column(col("city", &["vienna", "graz", "paris"]));
        q.push_column(col("country", &["austria", "austria", "france"]));
        // Unionable candidate: same relationship instances.
        let mut u = Table::new("u", "u");
        u.push_column(col("city", &["vienna", "paris"]));
        u.push_column(col("country", &["austria", "france"]));
        // Non-unionable: same vocab but scrambled relationship.
        let mut n = Table::new("n", "n");
        n.push_column(col("planet", &["mars", "venus"]));
        n.push_column(col("moon", &["phobos", "none"]));
        let su = santos_table_score(&q, &u, &enc);
        let sn = santos_table_score(&q, &n, &enc);
        assert!(su > sn, "relationship match must dominate: {su} vs {sn}");
    }

    #[test]
    fn santos_backs_off_without_relationships() {
        let enc = SentenceEncoder::default();
        let mut q = Table::new("q", "q");
        q.push_column(col("city", &["vienna"]));
        let mut c = Table::new("c", "c");
        c.push_column(col("city", &["vienna"]));
        // Single string column: falls back to column matching, non-zero.
        assert!(santos_table_score(&q, &c, &enc) > 0.0);
    }
}
