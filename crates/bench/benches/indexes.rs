//! Criterion microbenchmarks for the search substrate: index build and
//! query costs behind Tables V–VIII (exact vs approximate trade-offs).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsfm_search::{
    BruteForceIndex, ColumnHit, Hnsw, HnswConfig, JosieIndex, LshForest, Metric, MinHashLsh,
};
use tsfm_sketch::MinHasher;
use tsfm_table::hash::hash_str;

fn random_vecs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
}

fn bench_dense_indexes(c: &mut Criterion) {
    let vecs = random_vecs(2000, 64, 0);
    let q = random_vecs(1, 64, 1).pop().unwrap();

    let mut bf = BruteForceIndex::new(64, Metric::Cosine);
    for v in &vecs {
        bf.add(v);
    }
    c.bench_function("bruteforce_query_2k_d64", |b| b.iter(|| bf.search(&q, 10)));

    let mut hnsw = Hnsw::new(64, Metric::Cosine, HnswConfig::default());
    for v in &vecs {
        hnsw.add(v);
    }
    c.bench_function("hnsw_query_2k_d64", |b| b.iter(|| hnsw.search(&q, 10)));

    c.bench_function("hnsw_build_500_d64", |b| {
        b.iter(|| {
            let mut h = Hnsw::new(64, Metric::Cosine, HnswConfig::default());
            for v in &vecs[..500] {
                h.add(v);
            }
            h.len()
        })
    });
}

fn bench_overlap_indexes(c: &mut Criterion) {
    let sets: Vec<Vec<u64>> = (0..1000)
        .map(|i| (0..100).map(|j| hash_str(&format!("s{}e{j}", i % 37))).collect())
        .collect();
    let query: Vec<u64> = (0..100).map(|j| hash_str(&format!("s1e{j}"))).collect();

    let mut josie = JosieIndex::new();
    for s in &sets {
        josie.add(s.iter().copied());
    }
    c.bench_function("josie_topk_1k_sets", |b| {
        b.iter(|| josie.top_k_overlap(query.iter().copied(), 10))
    });

    let mh = MinHasher::new(64, 0);
    let sigs: Vec<_> = sets.iter().map(|s| mh.signature_hashed(s.iter().copied())).collect();
    let qsig = mh.signature_hashed(query.iter().copied());

    let mut lsh = MinHashLsh::new(16, 4);
    for s in &sigs {
        lsh.add(s.clone());
    }
    c.bench_function("minhash_lsh_query_1k_sets", |b| b.iter(|| lsh.search(&qsig, 10)));

    let mut forest = LshForest::new(8, 8, 64, 7);
    for s in &sigs {
        forest.add(s.clone());
    }
    c.bench_function("lsh_forest_query_1k_sets", |b| b.iter(|| forest.search(&qsig, 10)));
}

fn bench_fig6_ranking(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let per_col: Vec<Vec<ColumnHit>> = (0..8)
        .map(|_| {
            (0..30)
                .map(|_| ColumnHit {
                    table: rng.gen_range(0..200),
                    column: rng.gen_range(0..2000),
                    distance: rng.gen_range(0.0..1.0),
                })
                .collect()
        })
        .collect();
    c.bench_function("fig6_near_tables_8col_30hits", |b| {
        b.iter(|| tsfm_search::near_tables(&per_col, Some(0)))
    });
}

criterion_group!(benches, bench_dense_indexes, bench_overlap_indexes, bench_fig6_ranking);
criterion_main!(benches);
