//! Criterion microbenchmarks for the neural substrate: the per-step costs
//! behind pretraining/fine-tuning and per-query embedding extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsfm_core::{encode_table, single_sequence, ModelConfig, SketchToggle, TabSketchFM};
use tsfm_nn::layers::attn_bias_from_lengths;
use tsfm_nn::{EncoderConfig, ParamStore, Tape, Tensor, TransformerEncoder};
use tsfm_sketch::{SketchConfig, TableSketch};
use tsfm_table::{Column, Table, Value};
use tsfm_tokenizer::VocabBuilder;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(&[128, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    c.bench_function("matmul_128x64x64", |bch| {
        bch.iter(|| tsfm_nn::tensor::matmul(&a, &b))
    });
}

fn bench_encoder(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = EncoderConfig::small();
    let mut store = ParamStore::new();
    let enc = TransformerEncoder::new(&mut store, "enc", cfg.clone(), &mut rng);
    let x = Tensor::randn(&[4, 64, cfg.d_model], 1.0, &mut rng);
    let bias = attn_bias_from_lengths(&[64, 48, 64, 32], 64);

    c.bench_function("encoder_forward_b4_t64_d64", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new(false, 0);
            let xv = tape.constant(x.clone());
            enc.forward(&mut tape, &store, xv, &bias)
        })
    });

    c.bench_function("encoder_forward_backward_b4_t64_d64", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new(true, 0);
            let xv = tape.leaf(std::rc::Rc::new(x.clone()));
            let h = enc.forward(&mut tape, &store, xv, &bias);
            let loss = tape.mean_all(h);
            tape.backward(loss)
        })
    });
}

fn bench_embedding_extraction(c: &mut Criterion) {
    let mut t = Table::new("t", "bench table").with_description("rows and columns");
    for ci in 0..6 {
        t.push_column(Column::new(
            format!("column number {ci}"),
            (0..200).map(|r| Value::Str(format!("v{ci}x{r}"))).collect(),
        ));
    }
    let mut vb = VocabBuilder::new();
    vb.add_text("rows and columns column number bench table");
    let vocab = vb.build(1, 1000);
    let mcfg = ModelConfig::small(vocab.len());
    let mut rng = StdRng::seed_from_u64(2);
    let model = TabSketchFM::new(mcfg.clone(), &mut rng);
    let sketch =
        TableSketch::build(&t, &SketchConfig { minhash_k: mcfg.minhash_k, ..Default::default() });
    let enc = encode_table(&sketch, &vocab, &mcfg.input, SketchToggle::ALL);
    let seq = single_sequence(&enc, &mcfg.input);

    c.bench_function("column_embeddings_6cols", |bch| {
        bch.iter(|| tsfm_core::column_embeddings(&model, &seq))
    });
    c.bench_function("table_embedding_single", |bch| {
        bch.iter(|| tsfm_core::table_embeddings(&model, std::slice::from_ref(&seq), 1))
    });
}

criterion_group!(benches, bench_matmul, bench_encoder, bench_embedding_extraction);
criterion_main!(benches);
