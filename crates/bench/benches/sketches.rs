//! Criterion microbenchmarks for sketch generation — the preprocessing
//! cost the paper's pipeline pays once per table (§III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsfm_sketch::{content_snapshot, MinHasher, NumericalSketch, SketchConfig, TableSketch};
use tsfm_table::{Column, Table, Value};

fn make_table(rows: usize, cols: usize) -> Table {
    let mut t = Table::new("bench", "bench table").with_description("benchmark table");
    for c in 0..cols {
        if c % 2 == 0 {
            t.push_column(Column::new(
                format!("strcol{c}"),
                (0..rows).map(|r| Value::Str(format!("value {c} {r}"))).collect(),
            ));
        } else {
            t.push_column(Column::new(
                format!("numcol{c}"),
                (0..rows).map(|r| Value::Float(r as f64 * 0.37 + c as f64)).collect(),
            ));
        }
    }
    t
}

fn bench_minhash(c: &mut Criterion) {
    let values: Vec<String> = (0..1000).map(|i| format!("element-{i}")).collect();
    let mut g = c.benchmark_group("minhash_signature_1k_values");
    for k in [16usize, 64, 128] {
        let hasher = MinHasher::new(k, 0);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| hasher.signature(values.iter()))
        });
    }
    g.finish();

    let hasher = MinHasher::new(64, 0);
    let a = hasher.signature(values.iter());
    let b2 = hasher.signature(values[200..].iter());
    c.bench_function("minhash_jaccard_estimate_k64", |b| b.iter(|| a.jaccard(&b2)));
}

fn bench_numeric_sketch(c: &mut Criterion) {
    let col = Column::new("n", (0..10_000).map(|i| Value::Float(i as f64 * 1.7)).collect());
    c.bench_function("numeric_sketch_10k_rows", |b| {
        b.iter(|| NumericalSketch::of_column(&col, 10_000))
    });
}

fn bench_table_sketch(c: &mut Criterion) {
    let table = make_table(1000, 8);
    let cfg = SketchConfig::default();
    c.bench_function("table_sketch_1000x8", |b| b.iter(|| TableSketch::build(&table, &cfg)));
    let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
    c.bench_function("content_snapshot_1000x8", |b| {
        b.iter(|| content_snapshot(&table, &hasher, 10_000))
    });
}

criterion_group!(benches, bench_minhash, bench_numeric_sketch, bench_table_sketch);
criterion_main!(benches);
