//! Criterion benches for the persistent catalog: ingest throughput
//! (tables/sec), the cold-open + first-query latency that the on-disk
//! index cache is designed to amortize, and the parallel `search_batch`
//! speedup over a serial query loop, at 1k and 10k synthetic tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tsfm_lake::{gen_pretrain_corpus, World, WorldConfig};
use tsfm_sketch::SketchConfig;
use tsfm_store::{Catalog, DiscoveryRequest, QueryMode};
use tsfm_table::hash::hash_str;
use tsfm_table::Table;

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("tsfm_store_bench_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus(n: usize) -> Vec<Table> {
    let world = World::generate(WorldConfig::default());
    gen_pretrain_corpus(&world, n, 17)
}

/// Build a populated, committed catalog (indexes not yet built).
fn populate(tables: &[Table], tag: &str) -> (PathBuf, Catalog) {
    let dir = fresh_dir(tag);
    let mut cat = Catalog::open(&dir).expect("open");
    for t in tables {
        cat.add_table(t, hash_str(&t.id)).expect("add");
    }
    cat.commit().expect("commit");
    (dir, cat)
}

fn bench_catalog(c: &mut Criterion) {
    // 10k tables stresses segment-file throughput and graph build; trim it
    // in fast/smoke runs via TSFM_BENCH_FILTER=1k.
    for &n in &[1_000usize, 10_000] {
        let tables = corpus(n);
        let mut group = c.benchmark_group("store");

        // Ingest throughput: sketches + segment writes, manifest at the
        // end, over the hash-once parallel ingest pool (auto-sized; the
        // serial path on a 1-core host). Reported ns/iter covers the
        // whole corpus → tables/sec = n/1e-9·t.
        let hashes: Vec<u64> = tables.iter().map(|t| hash_str(&t.id)).collect();
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        group.bench_with_input(BenchmarkId::new("ingest_tables", n), &tables, |b, tables| {
            b.iter(|| {
                let dir = fresh_dir("ingest");
                let mut cat = Catalog::open(&dir).expect("open");
                cat.ingest_tables(tables, &hashes, threads).expect("ingest");
                cat.commit().expect("commit");
                let len = cat.len();
                drop(cat);
                let _ = std::fs::remove_dir_all(&dir);
                len
            })
        });

        // Incremental re-ingest of an unchanged corpus: pure hash checks.
        let (_dir_noop, mut noop_cat) = populate(&tables, "noop");
        group.bench_with_input(BenchmarkId::new("reingest_noop", n), &tables, |b, tables| {
            b.iter(|| {
                let mut unchanged = 0;
                for t in tables {
                    if noop_cat.add_table(t, hash_str(&t.id)).expect("add")
                        == tsfm_store::IngestOutcome::Unchanged
                    {
                        unchanged += 1;
                    }
                }
                unchanged
            })
        });

        // Cold open + first query, index built from records (no cache).
        let query = &tables[0];
        let join_req = DiscoveryRequest::builder(QueryMode::Join).k(10).build().expect("req");
        let (cold_dir, _) = populate(&tables, "cold");
        group.bench_with_input(BenchmarkId::new("cold_first_query", n), query, |b, q| {
            b.iter(|| {
                // Remove any cache a previous iteration wrote.
                let _ = std::fs::remove_file(cold_dir.join("index.cache"));
                let mut cat = Catalog::open(&cold_dir).expect("open");
                let searcher = cat.searcher().expect("snapshot");
                searcher.search_table(q, &join_req).expect("query").hits.len()
            })
        });

        // Cold open + first query with a warm on-disk index cache.
        let (warm_dir, mut warm_cat) = populate(&tables, "warm");
        warm_cat
            .searcher()
            .expect("snapshot")
            .search_table(query, &join_req)
            .expect("build + cache index");
        warm_cat.commit().expect("commit");
        drop(warm_cat);
        group.bench_with_input(BenchmarkId::new("cached_first_query", n), query, |b, q| {
            b.iter(|| {
                let mut cat = Catalog::open(&warm_dir).expect("open");
                let searcher = cat.searcher().expect("snapshot");
                searcher.search_table(q, &join_req).expect("query").hits.len()
            })
        });

        // Batched querying over one shared snapshot: serial loop vs the
        // std::thread::scope fan-out in QueryEngine::search_batch. Only at
        // 1k — the acceptance number — to keep bench wall-clock sane.
        if n == 1_000 {
            let (_batch_dir, mut batch_cat) = populate(&tables, "batch");
            let searcher = batch_cat.searcher().expect("snapshot");
            let sketches: Vec<_> =
                tables.iter().take(64).map(|t| searcher.sketch(t)).collect();
            group.bench_function("serial_batch_1k", |b| {
                b.iter(|| {
                    sketches
                        .iter()
                        .map(|s| searcher.search_sketch(s, &join_req).expect("query").hits.len())
                        .sum::<usize>()
                })
            });
            group.bench_function("parallel_batch_1k", |b| {
                b.iter(|| {
                    searcher
                        .search_batch(&sketches, &join_req)
                        .expect("batch")
                        .iter()
                        .map(|r| r.hits.len())
                        .sum::<usize>()
                })
            });

            // One-shot headline speedup outside the measurement loop. On a
            // single-core host search_batch degrades to the serial path,
            // so the ratio is ~1.0x there by design; the thread count in
            // the output says which regime was measured.
            let threads =
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            let t0 = Instant::now();
            for s in &sketches {
                searcher.search_sketch(s, &join_req).expect("query");
            }
            let serial = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            searcher.search_batch(&sketches, &join_req).expect("batch");
            let parallel = t0.elapsed().as_secs_f64();
            println!(
                "store: batch of {} queries at n={n} over {threads} thread(s): \
                 serial {:.1}ms, parallel {:.1}ms ({:.1}x)",
                sketches.len(),
                serial * 1e3,
                parallel * 1e3,
                serial / parallel
            );
        }

        group.finish();

        // One-shot headline number outside the measurement loop.
        let t0 = Instant::now();
        let dir = fresh_dir("rate");
        let mut cat = Catalog::open(&dir).expect("open");
        for t in &tables {
            cat.add_table(t, hash_str(&t.id)).expect("add");
        }
        cat.commit().expect("commit");
        let secs = t0.elapsed().as_secs_f64();
        println!("store: ingest rate at n={n}: {:.0} tables/sec", n as f64 / secs);
        drop(cat);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn bench_sketch_only(c: &mut Criterion) {
    // Baseline: sketching without any persistence, to separate sketch cost
    // from segment I/O in the ingest numbers above.
    let tables = corpus(1_000);
    let cfg = SketchConfig::default();
    c.bench_function("store/sketch_only_1000", |b| {
        b.iter(|| {
            tables
                .iter()
                .map(|t| tsfm_sketch::TableSketch::build(t, &cfg).num_cols())
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_catalog, bench_sketch_only);
criterion_main!(benches);
