//! `bench_serve` — machine-readable load benchmark for the serve frontend.
//!
//! Companion to `bench_store`: where that binary measures the storage hot
//! paths in-process, this one measures the full wire path — TCP, JSONL
//! framing, the bounded worker pool, and the searcher — under concurrent
//! load, and writes the headline numbers to a JSON file tracked across
//! PRs (`BENCH_serve.json`):
//!
//! ```text
//! bench_serve [--n N] [--duration-ms D] [--out PATH] [--quick]
//! ```
//!
//! * `--n`           corpus size in tables (default 2 000)
//! * `--duration-ms` measured window per concurrency level (default 3 000)
//! * `--out`         output path (default `BENCH_serve.json`)
//! * `--quick`       CI smoke mode: `--n 200 --duration-ms 300`
//!
//! The server runs in-process ([`tsfm_store::Server`] on an ephemeral
//! port) with a pool large enough that no level sheds; clients are real
//! TCP connections. Each level (1, 64, and 512 concurrent connections —
//! always all three, so the artifact shape is stable for CI) runs: every
//! client connects, completes one unrecorded warm-up request, parks on a
//! barrier, then issues `join`-mode `k=10` queries round-robin over the
//! corpus until the window closes, recording one wall-clock latency per
//! request. Percentiles are exact (merged and sorted), not histogram
//! approximations — the server's own histogram is cross-checked via the
//! `stats` verb at the end.
//!
//! After the ladder, one extra single-connection section measures a fixed
//! request count with `tsfm_obs` tracing disabled (the shipping default)
//! vs. enabled — the server runs in-process, so flipping the global trace
//! switch covers its worker threads — making the cost of turning tracing
//! on a tracked number instead of an assertion.
//!
//! The emitted JSON carries a `meta` object (schema version, host core
//! count, git commit) so numbers from different hosts aren't silently
//! compared, and is validated by re-parsing it with the store's own
//! `wire::parse_json` before the process exits, so CI can trust the file.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use tsfm_lake::{gen_pretrain_corpus, World, WorldConfig};
use tsfm_store::{wire, Catalog, ServeConfig, Server};
use tsfm_table::hash::hash_str;
use tsfm_table::Table;

/// The concurrency ladder. Fixed so `BENCH_serve.json` has the same shape
/// on every run — CI greps for each level.
const LEVELS: [usize; 3] = [1, 64, 512];

struct Args {
    n: usize,
    duration: Duration,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 2_000,
        duration: Duration::from_millis(3_000),
        out: PathBuf::from("BENCH_serve.json"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                let v = it.next().ok_or("--n needs a value")?;
                args.n = v.parse().map_err(|_| format!("invalid --n {v:?}"))?;
            }
            "--duration-ms" => {
                let v = it.next().ok_or("--duration-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("invalid --duration-ms {v:?}"))?;
                args.duration = Duration::from_millis(ms);
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--quick" => {
                args.n = 200;
                args.duration = Duration::from_millis(300);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.n == 0 || args.duration.is_zero() {
        return Err("--n and --duration-ms must be >= 1".into());
    }
    Ok(args)
}

struct LevelResult {
    connections: usize,
    requests: u64,
    qps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
}

/// One client connection's measured loop: warm up, sync on the barrier,
/// then hammer until the window closes. Returns per-request latencies in
/// microseconds; any error reply is fatal (the bench must not quietly
/// count failures as throughput).
fn client_loop(
    addr: std::net::SocketAddr,
    ids: &[String],
    start_at: &Barrier,
    duration: Duration,
    thread_idx: usize,
) -> Result<Vec<u64>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader =
        BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    let mut line = String::new();
    let mut roundtrip = |req: &str, line: &mut String| -> Result<(), String> {
        writer
            .write_all(req.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        line.clear();
        reader.read_line(line).map_err(|e| format!("recv: {e}"))?;
        if line.is_empty() {
            return Err("server closed the connection".into());
        }
        if line.contains("\"error\"") {
            return Err(format!("error reply: {}", line.trim()));
        }
        Ok(())
    };

    // Unrecorded warm-up: faults in connect/TLS-of-the-future/index paths
    // surface here, before the measured window.
    let req = format!("{{\"mode\":\"join\",\"k\":10,\"id\":\"{}\"}}", ids[thread_idx % ids.len()]);
    roundtrip(&req, &mut line)?;

    start_at.wait();
    let t0 = Instant::now();
    let mut lat = Vec::with_capacity(4096);
    let mut i = thread_idx;
    while t0.elapsed() < duration {
        let req = format!("{{\"mode\":\"join\",\"k\":10,\"id\":\"{}\"}}", ids[i % ids.len()]);
        i += 1;
        let r0 = Instant::now();
        roundtrip(&req, &mut line)?;
        lat.push(r0.elapsed().as_micros() as u64);
    }
    Ok(lat)
}

fn run_level(
    addr: std::net::SocketAddr,
    ids: &Arc<Vec<String>>,
    conc: usize,
    duration: Duration,
) -> Result<LevelResult, String> {
    let barrier = Arc::new(Barrier::new(conc));
    let mut joins = Vec::with_capacity(conc);
    for t in 0..conc {
        let (ids, barrier) = (ids.clone(), barrier.clone());
        // Small stacks: 512 client threads must not dominate memory.
        let j = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(move || client_loop(addr, &ids, &barrier, duration, t))
            .map_err(|e| format!("spawn client: {e}"))?;
        joins.push(j);
    }
    let mut all: Vec<u64> = Vec::new();
    for j in joins {
        all.extend(j.join().map_err(|_| "client panicked")??);
    }
    if all.is_empty() {
        return Err(format!("{conc}-connection level finished zero requests"));
    }
    all.sort_unstable();
    let pct = |p: f64| all[((all.len() - 1) as f64 * p) as usize];
    Ok(LevelResult {
        connections: conc,
        requests: all.len() as u64,
        qps: all.len() as f64 / duration.as_secs_f64(),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        max_us: *all.last().expect("non-empty"),
    })
}

/// One connection, `count` sequential requests, returning q/s. Used for
/// the tracing off-vs-on comparison where exact pacing matters more than
/// concurrency.
fn timed_requests(
    addr: std::net::SocketAddr,
    ids: &[String],
    count: usize,
) -> Result<f64, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    let mut line = String::new();
    let mut roundtrip = |req: &str, line: &mut String| -> Result<(), String> {
        writer
            .write_all(req.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        line.clear();
        reader.read_line(line).map_err(|e| format!("recv: {e}"))?;
        if line.is_empty() {
            return Err("server closed the connection".into());
        }
        if line.contains("\"error\"") {
            return Err(format!("error reply: {}", line.trim()));
        }
        Ok(())
    };
    // One unrecorded warm-up so connect cost stays out of the window.
    roundtrip(&format!("{{\"mode\":\"join\",\"k\":10,\"id\":\"{}\"}}", ids[0]), &mut line)?;
    let t0 = Instant::now();
    for i in 0..count {
        let req = format!("{{\"mode\":\"join\",\"k\":10,\"id\":\"{}\"}}", ids[i % ids.len()]);
        roundtrip(&req, &mut line)?;
    }
    Ok(count as f64 / t0.elapsed().as_secs_f64())
}

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() -> Result<(), String> {
    let args = parse_args()?;
    let n = args.n;

    eprintln!("bench_serve: generating and ingesting {n}-table corpus ...");
    let world = World::generate(WorldConfig::default());
    let tables: Vec<Table> = gen_pretrain_corpus(&world, n, 17);
    let hashes: Vec<u64> = tables.iter().map(|t| hash_str(&t.id)).collect();
    let ids: Arc<Vec<String>> = Arc::new(tables.iter().map(|t| t.id.clone()).collect());
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let dir = fresh_dir();
    let mut cat = Catalog::open(&dir).map_err(|e| e.to_string())?;
    cat.ingest_tables(&tables, &hashes, threads).map_err(|e| e.to_string())?;
    let searcher = cat.searcher().map_err(|e| e.to_string())?;
    cat.commit().map_err(|e| e.to_string())?;
    drop(cat);
    drop(tables);

    // Pool sized past the top level so the bench never sheds: shedding is
    // correct overload behaviour, but here it would silently deflate q/s.
    let cfg = ServeConfig {
        max_connections: LEVELS[LEVELS.len() - 1] + 32,
        pending_capacity: 1024,
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(60),
        idle_timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", searcher, cfg).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let handle = server.handle();
    let server_join = std::thread::spawn(move || server.run());
    eprintln!("bench_serve: serving on {addr}");

    let mut results = Vec::with_capacity(LEVELS.len());
    for conc in LEVELS {
        let r = run_level(addr, &ids, conc, args.duration)?;
        eprintln!(
            "bench_serve: {:>4} conns  {:>8.0} q/s  p50 {:>6} µs  p95 {:>6} µs  p99 {:>6} µs  ({} requests)",
            r.connections, r.qps, r.p50_us, r.p95_us, r.p99_us, r.requests
        );
        results.push(r);
    }

    // Cross-check through the ops surface: the server's own counters must
    // have seen every measured request (plus warm-ups).
    let measured: u64 = results.iter().map(|r| r.requests).sum();
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    writeln!(writer, "{{\"op\":\"stats\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let stats = wire::parse_json(line.trim()).map_err(|e| format!("bad stats reply: {e}"))?;
    let served = stats
        .get("stats")
        .and_then(|s| s.get("requests"))
        .and_then(|r| r.get("ok"))
        .and_then(tsfm_store::wire::Json::as_f64)
        .ok_or("stats reply missing requests.ok")? as u64;
    if served < measured {
        return Err(format!("server counted {served} ok requests, clients measured {measured}"));
    }
    drop((reader, writer));

    // Tracing overhead on the full wire path: a fixed request count with
    // the global trace switch off, then on. The server is in-process, so
    // enable() covers its worker threads; drain() afterwards frees the
    // buffered spans.
    const TRACE_REQUESTS: usize = 512;
    let trace_off = timed_requests(addr, &ids, TRACE_REQUESTS)?;
    tsfm_obs::trace::enable();
    let trace_on = timed_requests(addr, &ids, TRACE_REQUESTS)?;
    tsfm_obs::trace::disable();
    let spans = tsfm_obs::trace::drain().len();
    let trace_overhead_pct = (trace_off - trace_on) / trace_off * 100.0;
    eprintln!(
        "bench_serve: tracing {trace_off:>8.0} q/s off, {trace_on:>8.0} q/s on \
         ({trace_overhead_pct:+.2}% when enabled, {spans} spans)"
    );

    handle.shutdown();
    server_join.join().map_err(|_| "server panicked")?.map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&dir);

    let levels_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"connections\":{},\"requests\":{},\"qps\":{:.1},\
                 \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                r.connections, r.requests, r.qps, r.p50_us, r.p95_us, r.p99_us, r.max_us
            )
        })
        .collect();
    let json = format!(
        "{{\"meta\":{},\"n\":{n},\"duration_ms\":{},\"levels\":[{}],\
         \"tracing\":{{\"off_qps\":{trace_off:.1},\"on_qps\":{trace_on:.1},\
         \"on_overhead_pct\":{trace_overhead_pct:.2}}}}}",
        tsfm_bench::bench_meta_json(),
        args.duration.as_millis(),
        levels_json.join(",")
    );
    // The file must be trustworthy for CI and cross-PR tracking: re-parse
    // it with the store's own JSON parser before declaring success.
    wire::parse_json(&json).map_err(|e| format!("emitted invalid JSON: {e}"))?;
    // Durable commit (tmp + fsync + rename): a result file is either the
    // previous complete run or this one, never a torn mix CI might parse.
    tsfm_store::durable::commit_file(&args.out, format!("{json}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    println!("{json}");
    eprintln!("bench_serve: wrote {}", args.out.display());
    Ok(())
}
