//! `bench_store` — machine-readable store benchmarks.
//!
//! Unlike the Criterion benches (`cargo bench`), this binary runs the three
//! store hot paths once at a fixed scale and writes the headline numbers to
//! a JSON file, so the perf trajectory can be tracked across PRs:
//!
//! ```text
//! bench_store [--n N] [--queries Q] [--threads T] [--runs R] [--out PATH] [--quick]
//! ```
//!
//! * `--n`        corpus size in tables (default 10 000)
//! * `--queries`  number of query tables for the latency/batch sections
//!   (default 64)
//! * `--threads`  worker threads for ingest and batch search (default: the
//!   host's available parallelism)
//! * `--runs`     repeat every measured section R times and report the
//!   median (default 1; use 3+ on noisy shared hosts so the tracked
//!   artifact isn't one unlucky sample)
//! * `--out`      output path (default `BENCH_store.json`)
//! * `--quick`    CI smoke mode: `--n 200 --queries 8`
//!
//! Measured sections (all join-mode, k = 10):
//!
//! * **sketch** — pure sketching throughput, no persistence;
//! * **ingest** — fresh-catalog ingest (sketch + segment write + manifest);
//! * **index** — cold ANN index build over the ingested corpus;
//! * **query** — serial single-query latency (p50/p95 µs);
//! * **batch** — `search_batch` fan-out throughput vs. the serial loop;
//! * **tracing** — the serial query loop with `tsfm_obs` tracing disabled
//!   (the shipping default: one relaxed atomic load per span site) vs.
//!   enabled, so the overhead of turning tracing on is a measured row
//!   rather than an assertion. All other sections run with tracing off.
//!
//! The emitted JSON carries a `meta` object (schema version, host core
//! count, git commit) so numbers from different hosts aren't silently
//! compared, and is validated by re-parsing it with the store's own
//! `wire::parse_json` before the process exits, so CI can trust the file.

use std::path::PathBuf;
use std::time::Instant;
use tsfm_lake::{gen_pretrain_corpus, World, WorldConfig};
use tsfm_sketch::{SketchConfig, TableSketch};
use tsfm_store::{wire, Catalog, DiscoveryRequest, QueryMode};
use tsfm_table::hash::hash_str;
use tsfm_table::Table;

struct Args {
    n: usize,
    queries: usize,
    threads: usize,
    runs: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 10_000,
        queries: 64,
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runs: 1,
        out: PathBuf::from("BENCH_store.json"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                let v = it.next().ok_or("--n needs a value")?;
                args.n = v.parse().map_err(|_| format!("invalid --n {v:?}"))?;
            }
            "--queries" => {
                let v = it.next().ok_or("--queries needs a value")?;
                args.queries = v.parse().map_err(|_| format!("invalid --queries {v:?}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("invalid --threads {v:?}"))?;
            }
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                args.runs = v.parse().map_err(|_| format!("invalid --runs {v:?}"))?;
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--quick" => {
                args.n = 200;
                args.queries = 8;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.n == 0 || args.queries == 0 || args.runs == 0 {
        return Err("--n, --queries, and --runs must be >= 1".into());
    }
    Ok(args)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_bench_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() -> Result<(), String> {
    let args = parse_args()?;
    let n = args.n;
    eprintln!("bench_store: generating {n}-table corpus ...");
    let world = World::generate(WorldConfig::default());
    let tables: Vec<Table> = gen_pretrain_corpus(&world, n, 17);
    let hashes: Vec<u64> = tables.iter().map(|t| hash_str(&t.id)).collect();
    let cfg = SketchConfig::default();
    let req = DiscoveryRequest::builder(QueryMode::Join).k(10).build().map_err(|e| e.to_string())?;

    let mut m_sketch = Vec::new();
    let mut m_ingest = Vec::new();
    let mut m_index = Vec::new();
    let mut m_p50 = Vec::new();
    let mut m_p95 = Vec::new();
    let mut m_serial = Vec::new();
    let mut m_batch = Vec::new();
    let mut m_trace_off = Vec::new();
    let mut m_trace_on = Vec::new();

    for run in 0..args.runs {
        // Pure sketching throughput (no persistence).
        let t0 = Instant::now();
        let mut cols = 0usize;
        for t in &tables {
            cols += TableSketch::build(t, &cfg).num_cols();
        }
        let sketch_rate = n as f64 / t0.elapsed().as_secs_f64();
        m_sketch.push(sketch_rate);
        eprintln!("bench_store[{run}]: sketch  {sketch_rate:>9.0} tables/s ({cols} columns)");

        // Fresh-catalog ingest throughput.
        let dir = fresh_dir("ingest");
        let t0 = Instant::now();
        let mut cat = Catalog::open(&dir).map_err(|e| e.to_string())?;
        let report =
            cat.ingest_tables(&tables, &hashes, args.threads).map_err(|e| e.to_string())?;
        cat.commit().map_err(|e| e.to_string())?;
        let ingest_rate = n as f64 / t0.elapsed().as_secs_f64();
        m_ingest.push(ingest_rate);
        assert_eq!(report.added, n, "every table is new in a fresh catalog");
        eprintln!(
            "bench_store[{run}]: ingest  {ingest_rate:>9.0} tables/s over {} thread(s)",
            args.threads
        );

        // Cold ANN index build (the first searcher() call).
        let t0 = Instant::now();
        let searcher = cat.searcher().map_err(|e| e.to_string())?;
        let index_build_ms = t0.elapsed().as_secs_f64() * 1e3;
        m_index.push(index_build_ms);
        eprintln!("bench_store[{run}]: index   {index_build_ms:>9.1} ms cold build");

        // Serial query latency.
        let sketches: Vec<TableSketch> =
            tables.iter().take(args.queries).map(|t| searcher.sketch(t)).collect();
        let mut lat_us: Vec<f64> = Vec::with_capacity(sketches.len());
        let serial_t0 = Instant::now();
        for s in &sketches {
            let t0 = Instant::now();
            searcher.search_sketch(s, &req).map_err(|e| e.to_string())?;
            lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        let serial_secs = serial_t0.elapsed().as_secs_f64();
        lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
        m_p50.push(pct(0.5));
        m_p95.push(pct(0.95));
        let serial_rate = sketches.len() as f64 / serial_secs;
        m_serial.push(serial_rate);
        eprintln!("bench_store[{run}]: query   p50 {:>7.0} µs, p95 {:>7.0} µs", pct(0.5), pct(0.95));

        // Batch fan-out throughput over the same queries.
        let t0 = Instant::now();
        let responses = searcher.search_batch(&sketches, &req).map_err(|e| e.to_string())?;
        let batch_rate = responses.len() as f64 / t0.elapsed().as_secs_f64();
        m_batch.push(batch_rate);
        eprintln!(
            "bench_store[{run}]: batch   {batch_rate:>9.0} queries/s ({serial_rate:.0} serial, {:.2}x)",
            batch_rate / serial_rate
        );

        // Tracing overhead: the same serial loop, once with tracing off
        // (re-measured so both sides share warm caches) and once with it
        // on. Several passes so the window isn't a handful of queries.
        let passes = (256 / sketches.len()).max(1);
        let timed_loop = |searcher: &tsfm_store::Searcher| -> Result<f64, String> {
            let t0 = Instant::now();
            for _ in 0..passes {
                for s in &sketches {
                    searcher.search_sketch(s, &req).map_err(|e| e.to_string())?;
                }
            }
            Ok((passes * sketches.len()) as f64 / t0.elapsed().as_secs_f64())
        };
        let off_rate = timed_loop(&searcher)?;
        tsfm_obs::trace::enable();
        let on_rate = timed_loop(&searcher)?;
        tsfm_obs::trace::disable();
        let spans = tsfm_obs::trace::drain().len();
        m_trace_off.push(off_rate);
        m_trace_on.push(on_rate);
        eprintln!(
            "bench_store[{run}]: tracing {off_rate:>9.0} q/s off, {on_rate:>9.0} q/s on \
             ({:+.2}% when enabled, {spans} spans)",
            (off_rate - on_rate) / off_rate * 100.0
        );

        drop(searcher);
        drop(cat);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let trace_off = median(&mut m_trace_off);
    let trace_on = median(&mut m_trace_on);
    let json = format!(
        "{{\"meta\":{},\"n\":{n},\"queries\":{},\"threads\":{},\"runs\":{},\
         \"sketch_tables_per_s\":{:.1},\"ingest_tables_per_s\":{:.1},\
         \"index_build_ms\":{:.1},\"query_p50_us\":{:.1},\"query_p95_us\":{:.1},\
         \"serial_batch_queries_per_s\":{:.1},\"batch_queries_per_s\":{:.1},\
         \"tracing\":{{\"off_queries_per_s\":{trace_off:.1},\
         \"on_queries_per_s\":{trace_on:.1},\
         \"on_overhead_pct\":{:.2}}}}}",
        tsfm_bench::bench_meta_json(),
        args.queries,
        args.threads,
        args.runs,
        median(&mut m_sketch),
        median(&mut m_ingest),
        median(&mut m_index),
        median(&mut m_p50),
        median(&mut m_p95),
        median(&mut m_serial),
        median(&mut m_batch),
        (trace_off - trace_on) / trace_off * 100.0,
    );
    // The file must be trustworthy for CI and cross-PR tracking: re-parse
    // it with the store's own JSON parser before declaring success.
    wire::parse_json(&json).map_err(|e| format!("emitted invalid JSON: {e}"))?;
    // Durable commit (tmp + fsync + rename): a result file is either the
    // previous complete run or this one, never a torn mix CI might parse.
    tsfm_store::durable::commit_file(&args.out, format!("{json}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    println!("{json}");
    eprintln!("bench_store: wrote {}", args.out.display());
    Ok(())
}
