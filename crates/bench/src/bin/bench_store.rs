//! `bench_store` — machine-readable store benchmarks.
//!
//! Unlike the Criterion benches (`cargo bench`), this binary runs the three
//! store hot paths once at a fixed scale and writes the headline numbers to
//! a JSON file, so the perf trajectory can be tracked across PRs:
//!
//! ```text
//! bench_store [--n N] [--queries Q] [--threads T] [--runs R] [--out PATH]
//!             [--quick] [--scale N] [--scale-only] [--open-gate-ms MS]
//! ```
//!
//! * `--n`        corpus size in tables (default 10 000)
//! * `--queries`  number of query tables for the latency/batch sections
//!   (default 64)
//! * `--threads`  worker threads for ingest and batch search (default: the
//!   host's available parallelism)
//! * `--runs`     repeat every measured section R times and report the
//!   median (default 1; use 3+ on noisy shared hosts so the tracked
//!   artifact isn't one unlucky sample)
//! * `--out`      output path (default `BENCH_store.json`)
//! * `--quick`    CI smoke mode: `--n 200 --queries 8`
//! * `--scale N`  also measure the open-time/ingest curve at corpus sizes
//!   1 000, 10 000, … up to N (each step: fresh ingest, commit —
//!   which folds the corpus into shards — index build, then cold lazy
//!   and eager reopens in child processes so RSS is per-mode honest)
//! * `--scale-only`    run only the `--scale` curve (headline open keys
//!   come from the largest step)
//! * `--open-gate-ms`  exit non-zero if any measured *lazy* open exceeds
//!   this many milliseconds — the CI regression gate for O(1) open
//!
//! Measured sections (all join-mode, k = 10):
//!
//! * **sketch** — pure sketching throughput, no persistence;
//! * **ingest** — fresh-catalog ingest (sketch + segment write + manifest);
//! * **index** — cold ANN index build over the ingested corpus;
//! * **query** — serial single-query latency (p50/p95 µs);
//! * **batch** — `search_batch` fan-out throughput vs. the serial loop;
//! * **tracing** — the serial query loop with `tsfm_obs` tracing disabled
//!   (the shipping default: one relaxed atomic load per span site) vs.
//!   enabled, so the overhead of turning tracing on is a measured row
//!   rather than an assertion. All other sections run with tracing off;
//! * **open** — the catalog is compacted into shards, dropped, and
//!   reopened cold in a child process per mode, timing the storage
//!   layer: `Catalog::open` plus either one positioned sketch read
//!   (lazy — root manifest, one shard's offset index, one payload) or
//!   `load_all_records` (eager — every sketch deserialized, the
//!   pre-shard behavior). Each child records its own RSS, so memory is
//!   per-mode honest. The lazy number is the tentpole: it must stay
//!   flat as tables grow because it does O(shards), not O(tables),
//!   work. ANN-graph construction is mode-independent and tracked
//!   separately as `index_build_ms`.
//!
//! The emitted JSON carries a `meta` object (schema version, host core
//! count, git commit) so numbers from different hosts aren't silently
//! compared, and is validated by re-parsing it with the store's own
//! `wire::parse_json` before the process exits, so CI can trust the file.

use std::path::{Path, PathBuf};
use std::time::Instant;
use tsfm_lake::{gen_pretrain_corpus, World, WorldConfig};
use tsfm_sketch::{SketchConfig, TableSketch};
use tsfm_store::{wire, Catalog, DiscoveryRequest, QueryMode, SnapshotMode};
use tsfm_table::hash::hash_str;
use tsfm_table::Table;

struct Args {
    n: usize,
    queries: usize,
    threads: usize,
    runs: usize,
    out: PathBuf,
    scale: Option<usize>,
    scale_only: bool,
    open_gate_ms: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 10_000,
        queries: 64,
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        runs: 1,
        out: PathBuf::from("BENCH_store.json"),
        scale: None,
        scale_only: false,
        open_gate_ms: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => {
                let v = it.next().ok_or("--n needs a value")?;
                args.n = v.parse().map_err(|_| format!("invalid --n {v:?}"))?;
            }
            "--queries" => {
                let v = it.next().ok_or("--queries needs a value")?;
                args.queries = v.parse().map_err(|_| format!("invalid --queries {v:?}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("invalid --threads {v:?}"))?;
            }
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                args.runs = v.parse().map_err(|_| format!("invalid --runs {v:?}"))?;
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--quick" => {
                args.n = 200;
                args.queries = 8;
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Some(v.parse().map_err(|_| format!("invalid --scale {v:?}"))?);
            }
            "--scale-only" => args.scale_only = true,
            "--open-gate-ms" => {
                let v = it.next().ok_or("--open-gate-ms needs a value")?;
                args.open_gate_ms =
                    Some(v.parse().map_err(|_| format!("invalid --open-gate-ms {v:?}"))?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.n == 0 || args.queries == 0 || args.runs == 0 {
        return Err("--n, --queries, and --runs must be >= 1".into());
    }
    if args.scale_only && args.scale.is_none() {
        return Err("--scale-only needs --scale".into());
    }
    if args.scale == Some(0) {
        return Err("--scale must be >= 1".into());
    }
    Ok(args)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsfm_bench_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Resident set size of this process in MiB (`VmRSS` from
/// `/proc/self/status`); 0.0 where the proc filesystem is unavailable.
fn rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("VmRSS:"))
                .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<f64>().ok())
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Cold catalog open measured in *this* process — the `--measure-open`
/// child entry point, so each mode's RSS reflects only what that mode
/// actually pages in.
///
/// * `lazy` — `Catalog::open` plus one sketch fetched by positioned
///   arena read: the sharded open path (root manifest + one shard's
///   offset index + one payload), O(shards) work regardless of table
///   count.
/// * `eager` — `Catalog::open` plus `load_all_records`: the pre-shard
///   behavior of deserializing every sketch into the heap, O(tables).
///
/// Both end with the probe record in hand, so the numbers compare the
/// same outcome (a table served from a cold store). The ANN-graph load
/// is deliberately *not* in this window — it is mode-independent and
/// already tracked by `index_build_ms`.
fn measure_open(dir: &str, mode: SnapshotMode, probe_id: &str) -> Result<(), String> {
    let t0 = Instant::now();
    let cat = Catalog::open(dir).map_err(|e| e.to_string())?;
    let rec = match mode {
        SnapshotMode::Eager => {
            let records = cat.load_all_records().map_err(|e| e.to_string())?;
            records.into_iter().find(|r| r.table_id() == probe_id)
        }
        _ => cat.get(probe_id).map_err(|e| e.to_string())?,
    };
    if rec.is_none() {
        return Err(format!("probe table {probe_id:?} missing from {dir}"));
    }
    let open_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("{{\"open_ms\":{open_ms:.2},\"rss_mb\":{:.1}}}", rss_mb());
    Ok(())
}

/// Spawn this binary as a `--measure-open` child and parse its one-line
/// JSON result: `(open_ms, rss_mb)`.
fn spawn_measure_open(dir: &Path, mode: &str, probe_id: &str) -> Result<(f64, f64), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let out = std::process::Command::new(exe)
        .args(["--measure-open", mode])
        .arg(dir)
        .arg(probe_id)
        .output()
        .map_err(|e| format!("spawning open-measure child: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "open-measure child ({mode}) failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().last().ok_or("open-measure child printed nothing")?;
    let v = wire::parse_json(line).map_err(|e| format!("open-measure child JSON: {e}"))?;
    let f = |key: &str| {
        v.get(key)
            .and_then(wire::Json::as_f64)
            .ok_or_else(|| format!("open-measure child JSON missing {key:?}"))
    };
    Ok((f("open_ms")?, f("rss_mb")?))
}

/// Cold lazy + eager reopen of a committed catalog, each in its own child
/// process. Returns `(open_ms_lazy, rss_mb_lazy, open_ms_eager,
/// rss_mb_eager)`.
fn measure_reopens(dir: &Path, probe_id: &str) -> Result<(f64, f64, f64, f64), String> {
    let (lazy_ms, lazy_rss) = spawn_measure_open(dir, "lazy", probe_id)?;
    let (eager_ms, eager_rss) = spawn_measure_open(dir, "eager", probe_id)?;
    Ok((lazy_ms, lazy_rss, eager_ms, eager_rss))
}

/// One row of the `--scale` curve.
struct ScaleRow {
    n: usize,
    ingest_tables_per_s: f64,
    commit_ms: f64,
    index_build_ms: f64,
    shards: usize,
    open_ms_lazy: f64,
    rss_mb_lazy: f64,
    open_ms_eager: f64,
    rss_mb_eager: f64,
}

/// Corpus sizes for the curve: 1 000 · 10 000 · … capped at (and always
/// including) `top`.
fn scale_steps(top: usize) -> Vec<usize> {
    let mut steps: Vec<usize> = std::iter::successors(Some(1_000usize), |n| {
        n.checked_mul(10).filter(|&n| n < top)
    })
    .filter(|&n| n < top)
    .collect();
    steps.push(top);
    steps
}

fn run_scale_step(world: &World, n: usize, threads: usize) -> Result<ScaleRow, String> {
    eprintln!("bench_store[scale]: {n} tables ...");
    let tables: Vec<Table> = gen_pretrain_corpus(world, n, 23);
    let probe_id = tables[0].id.clone();
    let hashes: Vec<u64> = tables.iter().map(|t| hash_str(&t.id)).collect();
    let dir = fresh_dir(&format!("scale_{n}"));
    let mut cat = Catalog::open(&dir).map_err(|e| e.to_string())?;

    let t0 = Instant::now();
    cat.ingest_tables(&tables, &hashes, threads).map_err(|e| e.to_string())?;
    let ingest_tables_per_s = n as f64 / t0.elapsed().as_secs_f64();
    drop(tables);

    // Commit durably folds everything into shards (auto-compaction at
    // this scale), then `compact()` guarantees it even below threshold.
    let t0 = Instant::now();
    cat.commit().map_err(|e| e.to_string())?;
    cat.compact().map_err(|e| e.to_string())?;
    let commit_ms = t0.elapsed().as_secs_f64() * 1e3;
    let shards = cat.shard_count();

    // One index build so the reopens below measure open, not construction.
    let t0 = Instant::now();
    cat.searcher().map_err(|e| e.to_string())?;
    let index_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(cat);

    let (open_ms_lazy, rss_mb_lazy, open_ms_eager, rss_mb_eager) =
        measure_reopens(&dir, &probe_id)?;
    eprintln!(
        "bench_store[scale]: {n:>7} tables  ingest {ingest_tables_per_s:>7.0}/s  \
         commit {commit_ms:>8.0} ms  index {index_build_ms:>8.0} ms  {shards:>3} shard(s)  \
         open lazy {open_ms_lazy:>7.1} ms ({rss_mb_lazy:.0} MiB) / \
         eager {open_ms_eager:>7.1} ms ({rss_mb_eager:.0} MiB)"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(ScaleRow {
        n,
        ingest_tables_per_s,
        commit_ms,
        index_build_ms,
        shards,
        open_ms_lazy,
        rss_mb_lazy,
        open_ms_eager,
        rss_mb_eager,
    })
}

fn main() -> Result<(), String> {
    // Child mode: `bench_store --measure-open <lazy|eager> <dir> <probe-id>`.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().is_some_and(|a| a == "--measure-open") {
        let [_, mode, dir, probe] = &argv[..] else {
            return Err("--measure-open needs <lazy|eager> <dir> <probe-id>".into());
        };
        let mode = match mode.as_str() {
            "lazy" => SnapshotMode::Lazy,
            "eager" => SnapshotMode::Eager,
            other => return Err(format!("unknown snapshot mode {other:?}")),
        };
        return measure_open(dir, mode, probe);
    }

    let args = parse_args()?;
    let n = args.n;
    let world = World::generate(WorldConfig::default());
    let req = DiscoveryRequest::builder(QueryMode::Join).k(10).build().map_err(|e| e.to_string())?;

    let mut m_sketch = Vec::new();
    let mut m_ingest = Vec::new();
    let mut m_index = Vec::new();
    let mut m_p50 = Vec::new();
    let mut m_p95 = Vec::new();
    let mut m_serial = Vec::new();
    let mut m_batch = Vec::new();
    let mut m_trace_off = Vec::new();
    let mut m_trace_on = Vec::new();
    let mut m_open_lazy = Vec::new();
    let mut m_open_eager = Vec::new();
    let mut m_rss_lazy = Vec::new();
    let mut m_rss_eager = Vec::new();

    if !args.scale_only {
        eprintln!("bench_store: generating {n}-table corpus ...");
        let tables: Vec<Table> = gen_pretrain_corpus(&world, n, 17);
        let hashes: Vec<u64> = tables.iter().map(|t| hash_str(&t.id)).collect();
        let cfg = SketchConfig::default();

        for run in 0..args.runs {
            // Pure sketching throughput (no persistence).
            let t0 = Instant::now();
            let mut cols = 0usize;
            for t in &tables {
                cols += TableSketch::build(t, &cfg).num_cols();
            }
            let sketch_rate = n as f64 / t0.elapsed().as_secs_f64();
            m_sketch.push(sketch_rate);
            eprintln!("bench_store[{run}]: sketch  {sketch_rate:>9.0} tables/s ({cols} columns)");

            // Fresh-catalog ingest throughput.
            let dir = fresh_dir("ingest");
            let t0 = Instant::now();
            let mut cat = Catalog::open(&dir).map_err(|e| e.to_string())?;
            let report =
                cat.ingest_tables(&tables, &hashes, args.threads).map_err(|e| e.to_string())?;
            cat.commit().map_err(|e| e.to_string())?;
            let ingest_rate = n as f64 / t0.elapsed().as_secs_f64();
            m_ingest.push(ingest_rate);
            assert_eq!(report.added, n, "every table is new in a fresh catalog");
            eprintln!(
                "bench_store[{run}]: ingest  {ingest_rate:>9.0} tables/s over {} thread(s)",
                args.threads
            );

            // Cold ANN index build (the first searcher() call).
            let t0 = Instant::now();
            let searcher = cat.searcher().map_err(|e| e.to_string())?;
            let index_build_ms = t0.elapsed().as_secs_f64() * 1e3;
            m_index.push(index_build_ms);
            eprintln!("bench_store[{run}]: index   {index_build_ms:>9.1} ms cold build");

            // Serial query latency.
            let sketches: Vec<TableSketch> =
                tables.iter().take(args.queries).map(|t| searcher.sketch(t)).collect();
            let mut lat_us: Vec<f64> = Vec::with_capacity(sketches.len());
            let serial_t0 = Instant::now();
            for s in &sketches {
                let t0 = Instant::now();
                searcher.search_sketch(s, &req).map_err(|e| e.to_string())?;
                lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            let serial_secs = serial_t0.elapsed().as_secs_f64();
            lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
            m_p50.push(pct(0.5));
            m_p95.push(pct(0.95));
            let serial_rate = sketches.len() as f64 / serial_secs;
            m_serial.push(serial_rate);
            eprintln!(
                "bench_store[{run}]: query   p50 {:>7.0} µs, p95 {:>7.0} µs",
                pct(0.5),
                pct(0.95)
            );

            // Batch fan-out throughput over the same queries.
            let t0 = Instant::now();
            let responses = searcher.search_batch(&sketches, &req).map_err(|e| e.to_string())?;
            let batch_rate = responses.len() as f64 / t0.elapsed().as_secs_f64();
            m_batch.push(batch_rate);
            eprintln!(
                "bench_store[{run}]: batch   {batch_rate:>9.0} queries/s ({serial_rate:.0} serial, {:.2}x)",
                batch_rate / serial_rate
            );

            // Tracing overhead: the same serial loop, once with tracing off
            // (re-measured so both sides share warm caches) and once with it
            // on. Several passes so the window isn't a handful of queries.
            let passes = (256 / sketches.len()).max(1);
            let timed_loop = |searcher: &tsfm_store::Searcher| -> Result<f64, String> {
                let t0 = Instant::now();
                for _ in 0..passes {
                    for s in &sketches {
                        searcher.search_sketch(s, &req).map_err(|e| e.to_string())?;
                    }
                }
                Ok((passes * sketches.len()) as f64 / t0.elapsed().as_secs_f64())
            };
            let off_rate = timed_loop(&searcher)?;
            tsfm_obs::trace::enable();
            let on_rate = timed_loop(&searcher)?;
            tsfm_obs::trace::disable();
            let spans = tsfm_obs::trace::drain().len();
            m_trace_off.push(off_rate);
            m_trace_on.push(on_rate);
            eprintln!(
                "bench_store[{run}]: tracing {off_rate:>9.0} q/s off, {on_rate:>9.0} q/s on \
                 ({:+.2}% when enabled, {spans} spans)",
                (off_rate - on_rate) / off_rate * 100.0
            );

            // Cold-open cost per snapshot mode: fold into shards, drop
            // everything, and reopen in child processes.
            drop(searcher);
            cat.compact().map_err(|e| e.to_string())?;
            drop(cat);
            let (lazy_ms, lazy_rss, eager_ms, eager_rss) = measure_reopens(&dir, &tables[0].id)?;
            m_open_lazy.push(lazy_ms);
            m_rss_lazy.push(lazy_rss);
            m_open_eager.push(eager_ms);
            m_rss_eager.push(eager_rss);
            eprintln!(
                "bench_store[{run}]: open    lazy {lazy_ms:>7.1} ms ({lazy_rss:.0} MiB), \
                 eager {eager_ms:>7.1} ms ({eager_rss:.0} MiB)"
            );

            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    let scale_rows = match args.scale {
        Some(top) => {
            let mut rows = Vec::new();
            for step in scale_steps(top) {
                rows.push(run_scale_step(&world, step, args.threads)?);
            }
            rows
        }
        None => Vec::new(),
    };

    // Headline open numbers: medians over the main runs, or (scale-only)
    // the largest curve step.
    let (open_ms_lazy, rss_mb_lazy, open_ms_eager, rss_mb_eager) = if args.scale_only {
        let last = scale_rows.last().ok_or("--scale produced no rows")?;
        (last.open_ms_lazy, last.rss_mb_lazy, last.open_ms_eager, last.rss_mb_eager)
    } else {
        (
            median(&mut m_open_lazy),
            median(&mut m_rss_lazy),
            median(&mut m_open_eager),
            median(&mut m_rss_eager),
        )
    };

    let scale_json: Vec<String> = scale_rows
        .iter()
        .map(|r| {
            format!(
                "{{\"n\":{},\"ingest_tables_per_s\":{:.1},\"commit_ms\":{:.1},\
                 \"index_build_ms\":{:.1},\"shards\":{},\"open_ms_lazy\":{:.2},\
                 \"rss_mb_lazy\":{:.1},\"open_ms_eager\":{:.2},\"rss_mb_eager\":{:.1}}}",
                r.n,
                r.ingest_tables_per_s,
                r.commit_ms,
                r.index_build_ms,
                r.shards,
                r.open_ms_lazy,
                r.rss_mb_lazy,
                r.open_ms_eager,
                r.rss_mb_eager
            )
        })
        .collect();

    let main_sections = if args.scale_only {
        String::new()
    } else {
        let trace_off = median(&mut m_trace_off);
        let trace_on = median(&mut m_trace_on);
        format!(
            "\"sketch_tables_per_s\":{:.1},\"ingest_tables_per_s\":{:.1},\
             \"index_build_ms\":{:.1},\"query_p50_us\":{:.1},\"query_p95_us\":{:.1},\
             \"serial_batch_queries_per_s\":{:.1},\"batch_queries_per_s\":{:.1},\
             \"tracing\":{{\"off_queries_per_s\":{trace_off:.1},\
             \"on_queries_per_s\":{trace_on:.1},\
             \"on_overhead_pct\":{:.2}}},",
            median(&mut m_sketch),
            median(&mut m_ingest),
            median(&mut m_index),
            median(&mut m_p50),
            median(&mut m_p95),
            median(&mut m_serial),
            median(&mut m_batch),
            (trace_off - trace_on) / trace_off * 100.0,
        )
    };
    let json = format!(
        "{{\"meta\":{},\"n\":{n},\"queries\":{},\"threads\":{},\"runs\":{},\
         {main_sections}\"open_ms_lazy\":{open_ms_lazy:.2},\"rss_mb_lazy\":{rss_mb_lazy:.1},\
         \"open_ms_eager\":{open_ms_eager:.2},\"rss_mb_eager\":{rss_mb_eager:.1},\
         \"scale_curve\":[{}]}}",
        tsfm_bench::bench_meta_json(),
        args.queries,
        args.threads,
        args.runs,
        scale_json.join(","),
    );
    // The file must be trustworthy for CI and cross-PR tracking: re-parse
    // it with the store's own JSON parser before declaring success.
    wire::parse_json(&json).map_err(|e| format!("emitted invalid JSON: {e}"))?;
    // Durable commit (tmp + fsync + rename): a result file is either the
    // previous complete run or this one, never a torn mix CI might parse.
    tsfm_store::durable::commit_file(&args.out, format!("{json}\n").as_bytes())
        .map_err(|e| e.to_string())?;
    println!("{json}");
    eprintln!("bench_store: wrote {}", args.out.display());

    // The O(1)-open regression gate, checked over every lazy open this
    // invocation measured (headline and curve alike).
    if let Some(gate) = args.open_gate_ms {
        let worst = scale_rows
            .iter()
            .map(|r| r.open_ms_lazy)
            .chain(std::iter::once(open_ms_lazy))
            .fold(0.0f64, f64::max);
        if worst > gate {
            return Err(format!(
                "lazy open took {worst:.1} ms, over the --open-gate-ms {gate} budget"
            ));
        }
        eprintln!("bench_store: lazy open gate ok ({worst:.1} ms <= {gate} ms)");
    }
    Ok(())
}
