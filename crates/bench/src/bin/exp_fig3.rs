//! Fig. 3: whole-column masking + MLM-probability masking, showing the up
//! to five examples generated from a single table.
//!
//! `cargo run --release -p tsfm_bench --bin exp_fig3`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsfm_core::{mlm_examples, ModelConfig};
use tsfm_lake::{World, WorldConfig};
use tsfm_nn::ops::IGNORE_INDEX;
use tsfm_sketch::{SketchConfig, TableSketch};
use tsfm_tokenizer::VocabBuilder;

fn main() {
    let world = World::generate(WorldConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let at = world.random_table("fig3", 30, &mut rng);
    let table = at.table;

    let mut vb = VocabBuilder::new();
    vb.add_text(&table.description);
    for c in &table.columns {
        vb.add_text(&c.name);
    }
    let vocab = vb.build(1, 1000);
    let cfg = ModelConfig::small(vocab.len());
    let sketch = TableSketch::build(
        &table,
        &SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() },
    );

    println!("Fig. 3 — masking examples from one table");
    println!("table description: {:?}", table.description);
    println!(
        "columns: {:?}",
        table.columns.iter().map(|c| c.name.as_str()).collect::<Vec<_>>()
    );
    let examples = mlm_examples(&sketch, &vocab, &cfg, 0.15, &mut rng);
    println!("generated {} masking examples (≤5 per table):\n", examples.len());
    for (i, ex) in examples.iter().enumerate() {
        let rendered: Vec<String> = ex
            .seq
            .ids
            .iter()
            .map(|&id| vocab.token_of(id).to_string())
            .collect();
        let labels: Vec<String> = ex
            .labels
            .iter()
            .map(|&l| {
                if l == IGNORE_INDEX {
                    "·".to_string()
                } else {
                    vocab.token_of(l as u32).to_string()
                }
            })
            .collect();
        println!("example {i}:");
        println!("  input : {}", rendered.join(" "));
        println!("  labels: {}", labels.join(" "));
    }
}
