//! Fig. 8: transfer across tasks and domains — a model fine-tuned on one
//! task (join containment) searches the other benchmarks, compared with
//! each benchmark's natively fine-tuned model. All models include the
//! SBERT value embeddings, as in the paper ("all models shown include
//! value embeddings for maximal generalization").
//!
//! `cargo run --release -p tsfm_bench --bin exp_fig8`

use tsfm_baselines::SentenceEncoder;
use tsfm_bench::searchexp::{
    fig6_search, finetuned_model_for_search, join_search_embeddings, sbert_columns,
    search_vocab, tabsketchfm_columns,
};
use tsfm_bench::{print_curve, Scale};
use tsfm_core::{SketchToggle, TabSketchFM};
use tsfm_lake::{
    gen_ckan_subset, gen_eurostat_subset, gen_join_search, gen_tus_santos,
    gen_union_search, gen_wiki_containment, JoinSearchConfig, PairTask, SearchBenchmark,
    UnionSearchConfig, World, WorldConfig,
};
use tsfm_tokenizer::Vocab;

fn run_bench(
    bench: &SearchBenchmark,
    model: &TabSketchFM,
    vocab: &Vocab,
    join: bool,
    kmax: usize,
) -> Vec<Vec<usize>> {
    let tsfm_space = tabsketchfm_columns(model, &bench.tables, vocab);
    let sbert = sbert_columns(&bench.tables, &SentenceEncoder::default());
    let space = tsfm_space.concat(&sbert);
    if join {
        join_search_embeddings(&space, bench, kmax)
    } else {
        fig6_search(&space, bench, kmax)
    }
}

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());

    let benches: Vec<(String, SearchBenchmark, bool, Vec<usize>)> = vec![
        (
            "Fig 8a WikiJoin".into(),
            gen_join_search(&world, &JoinSearchConfig::default()),
            true,
            vec![2, 4, 6, 8, 10, 15, 20],
        ),
        (
            "Fig 8b SANTOS".into(),
            gen_union_search(&world, "SANTOS", &UnionSearchConfig::santos_style()),
            false,
            vec![2, 4, 6, 8, 10, 12],
        ),
        (
            "Fig 8c TUS".into(),
            gen_union_search(&world, "TUS", &UnionSearchConfig::tus_style()),
            false,
            vec![5, 10, 15, 20, 25, 30],
        ),
        (
            "Fig 8d Eurostat".into(),
            gen_eurostat_subset(&world, 12, 5),
            false,
            vec![2, 4, 6, 8, 10, 12],
        ),
    ];

    // Fine-tuning tasks from *different* source tasks/domains.
    let tasks: Vec<(&str, PairTask)> = vec![
        ("FT-join", gen_wiki_containment(&world, scale.pairs_per_task, 0)),
        ("FT-union", gen_tus_santos(&world, scale.pairs_per_task, 0)),
        ("FT-subset", gen_ckan_subset(&world, scale.pairs_per_task, 0)),
    ];

    for (bname, bench, join, ks) in &benches {
        println!("{bname} — F1@k for models fine-tuned on different tasks, k = {ks:?}");
        for (tname, task) in &tasks {
            let vocab = search_vocab(bench, task);
            let model = finetuned_model_for_search(
                task,
                &bench.tables,
                &vocab,
                &scale,
                SketchToggle::ALL,
                0,
            );
            let kmax = *ks.last().unwrap();
            let retrieved = run_bench(bench, &model, &vocab, *join, kmax);
            print_curve(tname, &retrieved, &bench.gold, ks);
        }
        println!();
    }
}
