//! §IV-A2 error analysis: mean MinHash Hamming distance between the key
//! columns of positive vs negative Wiki-Union pairs. The paper found the
//! distributions indistinguishable — "the sketches alone did not contain
//! sufficient information to discriminate those examples" — explaining why
//! value-aware TaBERT beats TabSketchFM on Wiki Union.
//!
//! `cargo run --release -p tsfm_bench --bin exp_hamming`

use tsfm_bench::Scale;
use tsfm_core::finetune::Label;
use tsfm_lake::{gen_spider_join, gen_wiki_union, World, WorldConfig};
use tsfm_sketch::{MinHasher, SketchConfig};

fn mean_hamming(task: &tsfm_lake::PairTask, hasher: &MinHasher) -> (f64, f64) {
    let (mut pos, mut neg) = (Vec::new(), Vec::new());
    for (a, b, l) in &task.pairs {
        // Key columns sit at arbitrary positions: take the best-matching
        // column pair (minimum normalized Hamming distance).
        let sigs_a: Vec<_> = task.tables[*a]
            .columns
            .iter()
            .map(|c| hasher.signature(c.rendered_values()))
            .collect();
        let sigs_b: Vec<_> = task.tables[*b]
            .columns
            .iter()
            .map(|c| hasher.signature(c.rendered_values()))
            .collect();
        let mut best = 1.0f64;
        for sa in &sigs_a {
            for sb in &sigs_b {
                best = best.min(sa.hamming(sb) as f64 / sa.k() as f64);
            }
        }
        match l {
            Label::Binary(true) => pos.push(best),
            Label::Binary(false) => neg.push(best),
            _ => {}
        }
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (mean(&pos), mean(&neg))
}

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());
    let cfg = SketchConfig::default();
    let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);

    println!("MinHash Hamming-distance error analysis (normalized, first column)");
    println!("{:<18} {:>14} {:>14} {:>10}", "Task", "positive pairs", "negative pairs", "gap");

    let wiki = gen_wiki_union(&world, scale.pairs_per_task, 0);
    let (p, n) = mean_hamming(&wiki, &hasher);
    println!("{:<18} {:>14.3} {:>14.3} {:>10.3}", "Wiki Union", p, n, n - p);
    println!("  → near-zero gap: positives are value-disjoint partitions, so sketches");
    println!("    cannot separate them (the paper's explanation for TaBERT's win).");

    let spider = gen_spider_join(&world, scale.pairs_per_task, 0);
    let (p, n) = mean_hamming(&spider, &hasher);
    println!("{:<18} {:>14.3} {:>14.3} {:>10.3}", "Spider-OpenData", p, n, n - p);
    println!("  → for join tasks the positive/negative gap is large; MinHash suffices.");
}
