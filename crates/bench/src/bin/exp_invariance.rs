//! §IV-C3 order-invariance probe: do row-shuffled and column-shuffled
//! variants of a query appear among its nearest neighbours?
//! (Paper: TabSketchFM returns 3072/3072 row-shuffled and 3059/3072
//! column-shuffled variants; SBERT 91% / 100%.)
//!
//! `cargo run --release -p tsfm_bench --bin exp_invariance`

use tsfm_baselines::SentenceEncoder;
use tsfm_bench::searchexp::{
    fig6_search, finetuned_model_for_search, sbert_columns, search_vocab, tabsketchfm_columns,
};
use tsfm_bench::Scale;
use tsfm_core::SketchToggle;
use tsfm_lake::{gen_ckan_subset, gen_eurostat_subset, World, WorldConfig, EUROSTAT_VARIANTS};

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());
    let bench = gen_eurostat_subset(&world, 16, 5);
    let task = gen_ckan_subset(&world, scale.pairs_per_task, 0);
    let vocab = search_vocab(&bench, &task);

    // Variant index → offset inside the 11-variant block; the shuffles are
    // the last two entries of EUROSTAT_VARIANTS.
    let col_shuffle_off = EUROSTAT_VARIANTS.len() - 2;
    let row_shuffle_off = EUROSTAT_VARIANTS.len() - 1;
    let k = EUROSTAT_VARIANTS.len() + 1;

    let count_found = |retrieved: &[Vec<usize>], offset: usize| -> usize {
        bench
            .queries
            .iter()
            .zip(retrieved)
            .filter(|(&q, ids)| ids.contains(&(q + 1 + offset)))
            .count()
    };

    println!("Order-invariance probe over {} queries (k = {k})", bench.queries.len());
    println!("{:<14} {:>22} {:>22}", "Model", "row-shuffle retrieved", "col-shuffle retrieved");

    let model =
        finetuned_model_for_search(&task, &bench.tables, &vocab, &scale, SketchToggle::ALL, 0);
    let space = tabsketchfm_columns(&model, &bench.tables, &vocab);
    let r = fig6_search(&space, &bench, k);
    println!(
        "{:<14} {:>18}/{} {:>18}/{}",
        "TabSketchFM",
        count_found(&r, row_shuffle_off),
        bench.queries.len(),
        count_found(&r, col_shuffle_off),
        bench.queries.len()
    );

    let sbert = sbert_columns(&bench.tables, &SentenceEncoder::default());
    let r = fig6_search(&sbert, &bench, k);
    println!(
        "{:<14} {:>18}/{} {:>18}/{}",
        "SBERT",
        count_found(&r, row_shuffle_off),
        bench.queries.len(),
        count_found(&r, col_shuffle_off),
        bench.queries.len()
    );
}
