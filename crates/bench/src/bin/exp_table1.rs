//! Table I: cardinality of every dataset (synthetic analogues).
//!
//! `cargo run --release -p tsfm_bench --bin exp_table1`

use tsfm_bench::Scale;
use tsfm_lake::{
    gen_all_tasks, gen_eurostat_subset, gen_join_search, gen_union_search, JoinSearchConfig,
    UnionSearchConfig, World, WorldConfig,
};
use tsfm_table::ColType;

fn type_distribution(tables: &[tsfm_table::Table]) -> [f64; 4] {
    let mut counts = [0usize; 4];
    let mut total = 0usize;
    for t in tables {
        for c in &t.columns {
            let i = match c.ty {
                ColType::Str => 0,
                ColType::Int => 1,
                ColType::Float => 2,
                ColType::Date => 3,
            };
            counts[i] += 1;
            total += 1;
        }
    }
    let total = total.max(1) as f64;
    [0, 1, 2, 3].map(|i| 100.0 * counts[i] as f64 / total)
}

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());
    println!("Table I — dataset cardinalities (synthetic LakeBench analogues)");
    println!(
        "{:<18} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7} {:>24}",
        "Benchmark", "#Tables", "AvgRows", "AvgCols", "Train", "Test", "Valid", "Str/Int/Float/Date (%)"
    );
    for task in gen_all_tasks(&world, scale.pairs_per_task, 0) {
        let d = type_distribution(&task.tables);
        println!(
            "{:<18} {:>8} {:>9.2} {:>9.2} {:>7} {:>7} {:>7}   {:>4.1}/{:>4.1}/{:>4.1}/{:>4.1}",
            task.name,
            task.tables.len(),
            task.avg_rows(),
            task.avg_cols(),
            task.splits.train.len(),
            task.splits.test.len(),
            task.splits.valid.len(),
            d[0], d[1], d[2], d[3]
        );
    }
    for bench in [
        gen_join_search(&world, &JoinSearchConfig::default()),
        gen_union_search(&world, "SANTOS Union", &UnionSearchConfig::santos_style()),
        gen_union_search(&world, "TUS Union", &UnionSearchConfig::tus_style()),
        gen_eurostat_subset(&world, 12, 5),
    ] {
        let d = type_distribution(&bench.tables);
        println!(
            "{:<18} {:>8} {:>9.2} {:>9.2} {:>7} {:>7} {:>7}   {:>4.1}/{:>4.1}/{:>4.1}/{:>4.1}",
            bench.name,
            bench.tables.len(),
            bench.avg_rows(),
            bench.avg_cols(),
            "-",
            bench.queries.len(),
            "-",
            d[0], d[1], d[2], d[3]
        );
    }
}
