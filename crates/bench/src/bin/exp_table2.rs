//! Table II: fine-tuned performance of TabSketchFM vs the five baseline
//! systems on all eight LakeBench-style tasks, averaged over seeds
//! (weighted F1 for classification, R² for regression).
//!
//! `cargo run --release -p tsfm_bench --bin exp_table2`
//! Scale via `TSFM_PAIRS`, `TSFM_SEEDS`, `TSFM_EPOCHS`.

use tsfm_bench::tasks::{mean_std, metadata_vocab, pretrain_checkpoint, run_system, System};
use tsfm_bench::Scale;
use tsfm_core::SketchToggle;
use tsfm_lake::{gen_all_tasks, World, WorldConfig};
use tsfm_table::Table;

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());
    let systems = [
        System::VanillaBert,
        System::Tapas,
        System::Tabbie,
        System::Tuta,
        System::TaBert,
        System::TabSketchFM(SketchToggle::ALL),
    ];
    println!(
        "Table II — TabSketchFM vs baselines (avg ± std over {} seeds; F1 or R²)",
        scale.seeds
    );
    print!("{:<22}", "Task");
    for s in &systems {
        print!(" {:>16}", s.name());
    }
    println!();

    let tmp = std::env::temp_dir().join("tsfm_table2");
    std::fs::create_dir_all(&tmp).expect("tmp dir");

    for seed0_task in gen_all_tasks(&world, scale.pairs_per_task, 0) {
        let metric = match seed0_task.task {
            tsfm_core::TaskKind::Regression => "R2",
            _ => "F1",
        };
        print!("{:<22}", format!("{} ({})", seed0_task.name, metric));
        for system in &systems {
            let mut scores = Vec::with_capacity(scale.seeds);
            for seed in 0..scale.seeds as u64 {
                // Regenerate the task per seed (different tables + splits),
                // mirroring the paper's 5-random-seed protocol.
                let task = gen_all_tasks(&world, scale.pairs_per_task, seed)
                    .into_iter()
                    .find(|t| t.name == seed0_task.name)
                    .expect("task exists");
                let refs: Vec<&Table> = task.tables.iter().collect();
                let vocab = metadata_vocab(&refs);
                let pre = if matches!(system, System::TabSketchFM(_)) {
                    let path = tmp.join(format!("pre_{}_{}.ckpt", task.name.replace(' ', "_"), seed));
                    if !path.exists() {
                        pretrain_checkpoint(
                            &world,
                            &vocab,
                            &scale,
                            SketchToggle::ALL,
                            seed,
                            &path,
                        );
                    }
                    Some(path)
                } else {
                    None
                };
                scores.push(run_system(*system, &task, &vocab, &scale, seed, pre.as_deref()));
            }
            let (m, s) = mean_std(&scores);
            print!(" {:>9.2} ±{:>4.2}", m, s);
        }
        println!();
    }
}
