//! Table IV: remove-one-sketch ablation (seed 0).
//!
//! `cargo run --release -p tsfm_bench --bin exp_table4`

use tsfm_bench::tasks::{metadata_vocab, pretrain_checkpoint, run_system, System};
use tsfm_bench::Scale;
use tsfm_core::SketchToggle;
use tsfm_lake::{gen_all_tasks, World, WorldConfig};
use tsfm_table::Table;

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());
    let variants = [
        ("No MinHash", SketchToggle::NO_MINHASH),
        ("No Numerical", SketchToggle::NO_NUMERIC),
        ("No Content", SketchToggle::NO_CONTENT),
        ("Everything", SketchToggle::ALL),
    ];
    println!("Table IV — removing one sketch (seed 0)");
    print!("{:<22}", "Task");
    for (name, _) in &variants {
        print!(" {:>15}", name);
    }
    println!();
    let tmp = std::env::temp_dir().join("tsfm_table4");
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    for task in gen_all_tasks(&world, scale.pairs_per_task, 0) {
        if task.name == "TUS-SANTOS" {
            continue;
        }
        let metric = match task.task {
            tsfm_core::TaskKind::Regression => "R2",
            _ => "F1",
        };
        print!("{:<22}", format!("{} ({})", task.name, metric));
        let refs: Vec<&Table> = task.tables.iter().collect();
        let vocab = metadata_vocab(&refs);
        for (vname, toggle) in &variants {
            // Paper protocol: ablations fine-tune the *pretrained* model,
            // pretrained with the same sketch toggle.
            let path = tmp.join(format!(
                "pre_{}_{}.ckpt",
                task.name.replace(' ', "_"),
                vname.replace(' ', "_")
            ));
            if !path.exists() {
                pretrain_checkpoint(&world, &vocab, &scale, *toggle, 0, &path);
            }
            let score = run_system(
                System::TabSketchFM(*toggle),
                &task,
                &vocab,
                &scale,
                0,
                Some(&path),
            );
            print!(" {:>15.3}", score);
        }
        println!();
    }
}
