//! Table V + Fig. 4a: Wiki-Join search — mean F1 / P@10 / R@10 for the
//! eight systems, plus the F1@k curve.
//!
//! `cargo run --release -p tsfm_bench --bin exp_table5`

use tsfm_baselines::column_encoders::ColumnEncoderConfig;
use tsfm_baselines::textmodel::{
    build_vocab, train_text_model, Serialization, TextModelConfig, TextPairModel,
};
use tsfm_baselines::{DeepJoinEncoder, SentenceEncoder};
use tsfm_bench::searchexp::{
    columns_by, finetuned_model_for_search, join_search_embeddings, join_search_josie,
    join_search_lshforest, sbert_columns, search_vocab, tabsketchfm_columns, ColumnSpace,
};
use tsfm_bench::{print_curve, print_search_row, Scale};
use tsfm_core::finetune::Label;
use tsfm_core::SketchToggle;
use tsfm_lake::{gen_wiki_containment, gen_join_search, JoinSearchConfig, World, WorldConfig};
use tsfm_search::{SimHashConfig, SimHashLsh};
use tsfm_table::Table;

/// WarpGate: SentenceEncoder column embeddings behind SimHash LSH.
fn warpgate_search(
    space: &ColumnSpace,
    bench: &tsfm_lake::SearchBenchmark,
    k: usize,
) -> Vec<Vec<usize>> {
    let dim = space.vecs[0].len();
    let mut lsh = SimHashLsh::new(dim, SimHashConfig::default());
    for v in &space.vecs {
        lsh.add(v);
    }
    let keys = bench.key_column.as_ref().expect("join benchmark");
    bench
        .queries
        .iter()
        .map(|&q| {
            let pos = space.position(q, keys[q]).expect("key column");
            let hits = lsh.search(&space.vecs[pos], k * 4);
            let mut seen = std::collections::BTreeSet::new();
            let mut ids = Vec::new();
            for (cid, _) in hits {
                let t = space.owners[cid].table;
                if t != q && seen.insert(t) {
                    ids.push(t);
                    if ids.len() == k {
                        break;
                    }
                }
            }
            ids
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());
    let bench = gen_join_search(&world, &JoinSearchConfig::default());
    let task = gen_wiki_containment(&world, scale.pairs_per_task, 0);
    let vocab = search_vocab(&bench, &task);
    let k = 10;
    let ks = [2, 4, 6, 8, 10, 15, 20];

    println!(
        "Table V — Wiki-Join search ({} tables, {} queries, gold = same entity domain & J > 0.5)",
        bench.tables.len(),
        bench.queries.len()
    );
    println!("{:<20} {:>8} {:>6} {:>6}", "Baseline", "MeanF1%", "P@10", "R@10");

    let mut curves: Vec<(String, Vec<Vec<usize>>)> = Vec::new();

    // TaBERT-FT: rows model fine-tuned on the containment task, column-text
    // embeddings for search.
    let refs: Vec<&Table> = task.tables.iter().chain(bench.tables.iter()).collect();
    let bvocab = build_vocab(&refs, Serialization::Rows { max_rows: 5 }, 8_000);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let mut tabert = TextPairModel::new(
        "TaBERT-FT",
        bvocab,
        TextModelConfig { encoder: tsfm_nn::EncoderConfig::small(), max_seq: 120, frozen_encoder: false },
        Serialization::Rows { max_rows: 5 },
        task.task,
        &mut rng,
    );
    {
        let pair_of = |i: usize| {
            let (a, b, _) = &task.pairs[i];
            (&task.tables[*a], &task.tables[*b])
        };
        let tp: Vec<(&Table, &Table)> = task.splits.train.iter().map(|&i| pair_of(i)).collect();
        let tl: Vec<Label> = task.splits.train.iter().map(|&i| task.pairs[i].2.clone()).collect();
        let ft = tsfm_core::FinetuneConfig {
            epochs: scale.epochs.min(4),
            batch_size: 8,
            lr: 2e-3,
            patience: 10,
            seed: 0,
        };
        train_text_model(&mut tabert, (&tp, &tl), (&[], &[]), &ft);
    }
    let tabert_space = columns_by(&bench.tables, |c| {
        let mut text = c.name.clone();
        for v in c.rendered_values().take(30) {
            text.push(' ');
            text.push_str(&v);
        }
        tabert.embed_text(&text)
    });
    let r = join_search_embeddings(&tabert_space, &bench, k);
    print_search_row("TaBERT-FT", &r, &bench.gold, k);
    curves.push(("TaBERT-FT".into(), r));

    let r = join_search_lshforest(&bench, k);
    print_search_row("LSH-Forest", &r, &bench.gold, k);
    curves.push(("LSH-Forest".into(), join_search_lshforest(&bench, *ks.last().unwrap())));

    let r = join_search_josie(&bench, k);
    print_search_row("Josie", &r, &bench.gold, k);
    curves.push(("Josie".into(), join_search_josie(&bench, *ks.last().unwrap())));

    // DeepJoin: supervised on joinable key-column pairs from the task.
    let mut deepjoin = DeepJoinEncoder::new(
        SentenceEncoder::default(),
        ColumnEncoderConfig { epochs: 4, ..Default::default() },
    );
    {
        // Training positives: the column pair with maximal exact value
        // overlap (the construction's key pair, at arbitrary positions).
        let mut pairs = Vec::new();
        for (a, b, l) in &task.pairs {
            if let Label::Scalar(v) = l {
                if *v > 0.5 {
                    let mut best: Option<(usize, usize, usize)> = None;
                    for (i, ca) in task.tables[*a].columns.iter().enumerate() {
                        let va: std::collections::BTreeSet<String> =
                            ca.rendered_values().collect();
                        for (j, cb) in task.tables[*b].columns.iter().enumerate() {
                            let inter = cb
                                .rendered_values()
                                .filter(|v| va.contains(v))
                                .count();
                            if best.map_or(true, |(_, _, n)| inter > n) {
                                best = Some((i, j, inter));
                            }
                        }
                    }
                    if let Some((i, j, n)) = best {
                        if n > 0 {
                            pairs.push((
                                &task.tables[*a].columns[i],
                                &task.tables[*b].columns[j],
                            ));
                        }
                    }
                }
            }
        }
        deepjoin.train(&pairs);
    }
    let dj_space = columns_by(&bench.tables, |c| deepjoin.embed(c));
    let r = join_search_embeddings(&dj_space, &bench, *ks.last().unwrap());
    print_search_row("DeepJoin", &r, &bench.gold, k);
    curves.push(("DeepJoin".into(), r));

    // WarpGate: hashed embeddings + SimHash LSH.
    let sbert = SentenceEncoder::default();
    let sbert_space = sbert_columns(&bench.tables, &sbert);
    let r = warpgate_search(&sbert_space, &bench, *ks.last().unwrap());
    print_search_row("WarpGate", &r, &bench.gold, k);
    curves.push(("WarpGate".into(), r));

    // SBERT: same embeddings, exact search.
    let r = join_search_embeddings(&sbert_space, &bench, *ks.last().unwrap());
    print_search_row("SBERT", &r, &bench.gold, k);
    curves.push(("SBERT".into(), r));

    // TabSketchFM fine-tuned on the containment task.
    let model =
        finetuned_model_for_search(&task, &bench.tables, &vocab, &scale, SketchToggle::ALL, 0);
    let tsfm_space = tabsketchfm_columns(&model, &bench.tables, &vocab);
    let r = join_search_embeddings(&tsfm_space, &bench, *ks.last().unwrap());
    print_search_row("TabSketchFM", &r, &bench.gold, k);
    curves.push(("TabSketchFM".into(), r));

    // TabSketchFM-SBERT: concatenated normalized embeddings.
    let concat = tsfm_space.concat(&sbert_space);
    let r = join_search_embeddings(&concat, &bench, *ks.last().unwrap());
    print_search_row("TabSketchFM-SBERT", &r, &bench.gold, k);
    curves.push(("TabSketchFM-SBERT".into(), r));

    println!("\nFig. 4a — F1@k on Wiki-Join search, k = {ks:?}");
    for (name, retrieved) in &curves {
        print_curve(name, retrieved, &bench.gold, &ks);
    }
}
