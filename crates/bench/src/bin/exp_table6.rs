//! Table VI + Fig. 4b: SANTOS-style union search.
//!
//! `cargo run --release -p tsfm_bench --bin exp_table6`

use tsfm_bench::unionexp::union_search_experiment;
use tsfm_bench::Scale;

fn main() {
    union_search_experiment(false, &Scale::from_env());
}
