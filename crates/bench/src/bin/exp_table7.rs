//! Table VII + Fig. 4c: TUS-style union search (larger clusters, k to 30).
//!
//! `cargo run --release -p tsfm_bench --bin exp_table7`

use tsfm_bench::unionexp::union_search_experiment;
use tsfm_bench::Scale;

fn main() {
    union_search_experiment(true, &Scale::from_env());
}
