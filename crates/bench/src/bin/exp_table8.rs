//! Table VIII + Fig. 4d: Eurostat-style subset search (Fig.-7 variant
//! recipe; gold = the 11 variants of each query).
//!
//! `cargo run --release -p tsfm_bench --bin exp_table8`

use tsfm_baselines::textmodel::{
    build_vocab, train_text_model, Serialization, TextModelConfig, TextPairModel,
};
use tsfm_baselines::SentenceEncoder;
use tsfm_bench::searchexp::{
    center_vectors, columns_by, fig6_search, finetuned_model_for_search, sbert_columns,
    search_vocab, table_embedding_search, tabsketchfm_columns,
};
use tsfm_bench::{print_curve, print_search_row, Scale};
use tsfm_core::finetune::Label;
use tsfm_core::SketchToggle;
use tsfm_lake::{gen_ckan_subset, gen_eurostat_subset, World, WorldConfig};
use tsfm_table::Table;

fn main() {
    let scale = Scale::from_env();
    let world = World::generate(WorldConfig::default());
    let bench = gen_eurostat_subset(&world, 16, 5);
    // The paper's subset-search model is fine-tuned on CKAN Subset.
    let task = gen_ckan_subset(&world, scale.pairs_per_task, 0);
    let vocab = search_vocab(&bench, &task);
    let k = 10;
    let ks = [2, 4, 6, 8, 10, 12];
    let kmax = *ks.last().unwrap();

    println!(
        "Table VIII — Eurostat subset search ({} tables, {} queries, gold = 11 variants)",
        bench.tables.len(),
        bench.queries.len()
    );
    println!("{:<20} {:>8} {:>6} {:>6}", "Baseline", "MeanF1%", "P@10", "R@10");
    let mut curves: Vec<(String, Vec<Vec<usize>>)> = Vec::new();

    // TaBERT-FT / TUTA-FT fine-tuned on the subset task.
    let refs: Vec<&Table> = task.tables.iter().chain(bench.tables.iter()).collect();
    let bvocab = build_vocab(&refs, Serialization::Rows { max_rows: 5 }, 8_000);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
    let ft = tsfm_core::FinetuneConfig {
        epochs: scale.epochs.min(4),
        batch_size: 8,
        lr: 2e-3,
        patience: 10,
        seed: 0,
    };
    let pair_of = |i: usize| {
        let (a, b, _) = &task.pairs[i];
        (&task.tables[*a], &task.tables[*b])
    };
    let tp: Vec<(&Table, &Table)> = task.splits.train.iter().map(|&i| pair_of(i)).collect();
    let tl: Vec<Label> = task.splits.train.iter().map(|&i| task.pairs[i].2.clone()).collect();

    let mut tabert = TextPairModel::new(
        "TaBERT-FT",
        bvocab.clone(),
        TextModelConfig { encoder: tsfm_nn::EncoderConfig::small(), max_seq: 120, frozen_encoder: false },
        Serialization::Rows { max_rows: 5 },
        task.task,
        &mut rng,
    );
    train_text_model(&mut tabert, (&tp, &tl), (&[], &[]), &ft);
    let mut tabert_space = columns_by(&bench.tables, |c| {
        let mut text = c.name.clone();
        for v in c.rendered_values().take(30) {
            text.push(' ');
            text.push_str(&v);
        }
        tabert.embed_text(&text)
    });
    center_vectors(&mut tabert_space.vecs);
    let r = fig6_search(&tabert_space, &bench, kmax);
    print_search_row("TaBERT-FT", &r, &bench.gold, k);
    curves.push(("TaBERT-FT".into(), r));

    let mut tuta = TextPairModel::new(
        "TUTA-FT",
        bvocab,
        TextModelConfig { encoder: tsfm_nn::EncoderConfig::small(), max_seq: 120, frozen_encoder: false },
        Serialization::Struct,
        task.task,
        &mut rng,
    );
    train_text_model(&mut tuta, (&tp, &tl), (&[], &[]), &ft);
    let mut table_vecs: Vec<Vec<f32>> =
        bench.tables.iter().map(|t| tuta.embed_text(&tuta.table_text(t))).collect();
    center_vectors(&mut table_vecs);
    let r = table_embedding_search(&table_vecs, &bench, kmax);
    print_search_row("TUTA-FT", &r, &bench.gold, k);
    curves.push(("TUTA-FT".into(), r));

    // SBERT value embeddings.
    let enc = SentenceEncoder::default();
    let sbert_space = sbert_columns(&bench.tables, &enc);
    let r = fig6_search(&sbert_space, &bench, kmax);
    print_search_row("SBERT", &r, &bench.gold, k);
    curves.push(("SBERT".into(), r));

    // TabSketchFM fine-tuned on CKAN Subset.
    let model =
        finetuned_model_for_search(&task, &bench.tables, &vocab, &scale, SketchToggle::ALL, 0);
    let tsfm_space = tabsketchfm_columns(&model, &bench.tables, &vocab);
    let r = fig6_search(&tsfm_space, &bench, kmax);
    print_search_row("TabSketchFM", &r, &bench.gold, k);
    curves.push(("TabSketchFM".into(), r));

    let concat = tsfm_space.concat(&sbert_space);
    let r = fig6_search(&concat, &bench, kmax);
    print_search_row("TabSketchFM-SBERT", &r, &bench.gold, k);
    curves.push(("TabSketchFM-SBERT".into(), r));

    println!("\nFig. 4d — F1@k on Eurostat subset search, k = {ks:?}");
    for (name, retrieved) in &curves {
        print_curve(name, retrieved, &bench.gold, &ks);
    }
}
