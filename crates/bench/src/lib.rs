//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§IV). Each `src/bin/exp_*.rs` binary prints the rows/series
//! of one artefact; this library holds the shared pipeline.

#![forbid(unsafe_code)]

pub mod scale;
pub mod searchexp;
pub mod tasks;
pub mod unionexp;

pub use scale::Scale;

/// Schema version of the tracked `BENCH_*.json` artifacts. Bump whenever
/// a field is renamed/removed so cross-PR tooling can refuse to compare
/// incompatible files.
pub const BENCH_SCHEMA: u32 = 2;

/// The `"meta"` object stamped into every tracked bench artifact:
/// schema version, host core count, and the git commit the binary ran
/// from — without it a number from a 4-core CI runner and one from a
/// 32-core dev box look interchangeable.
pub fn bench_meta_json() -> String {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| "unknown".into());
    format!("{{\"schema\":{BENCH_SCHEMA},\"cores\":{cores},\"commit\":\"{commit}\"}}")
}

/// Render a results row: name then fixed-width numeric columns.
pub fn row(name: &str, values: &[f64]) -> String {
    let mut s = format!("{name:<24}");
    for v in values {
        s.push_str(&format!(" {v:>8.3}"));
    }
    s
}

/// Print one search-table row: Mean F1 (%), P@k, R@k.
pub fn print_search_row(
    name: &str,
    retrieved: &[Vec<usize>],
    gold: &[std::collections::BTreeSet<usize>],
    k: usize,
) {
    let s = tsfm_search::evaluate_search(retrieved, gold, k);
    println!(
        "{name:<20} {:>8.2} {:>6.2} {:>6.2}",
        100.0 * s.mean_f1,
        s.mean_precision,
        s.mean_recall
    );
}

/// Print a Fig.-4/8 style F1@k series.
pub fn print_curve(
    name: &str,
    retrieved: &[Vec<usize>],
    gold: &[std::collections::BTreeSet<usize>],
    ks: &[usize],
) {
    let curve = tsfm_search::f1_curve(retrieved, gold, ks);
    print!("{name:<20}");
    for v in curve {
        print!(" {:>6.3}", v);
    }
    println!();
}
