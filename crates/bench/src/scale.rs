//! Experiment scale knobs, overridable from the environment so the same
//! binaries serve quick smoke runs and fuller reproductions:
//! `TSFM_PAIRS`, `TSFM_SEEDS`, `TSFM_EPOCHS`, `TSFM_PRETRAIN_TABLES`.

/// Workload sizes for the experiment binaries.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Labelled pairs per LakeBench-style task.
    pub pairs_per_task: usize,
    /// Random seeds averaged in Table II (paper: 5).
    pub seeds: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Pretraining corpus size (tables).
    pub pretrain_tables: usize,
    /// Pretraining epochs.
    pub pretrain_epochs: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            pairs_per_task: 90,
            seeds: 3,
            epochs: 10,
            pretrain_tables: 40,
            pretrain_epochs: 3,
        }
    }
}

impl Scale {
    /// Defaults overridden by `TSFM_*` environment variables.
    pub fn from_env() -> Self {
        let mut s = Scale::default();
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = get("TSFM_PAIRS") {
            s.pairs_per_task = v;
        }
        if let Some(v) = get("TSFM_SEEDS") {
            s.seeds = v;
        }
        if let Some(v) = get("TSFM_EPOCHS") {
            s.epochs = v;
        }
        if let Some(v) = get("TSFM_PRETRAIN_TABLES") {
            s.pretrain_tables = v;
        }
        s
    }
}
