//! Search experiment machinery: Tables V–VIII, Fig. 4, Fig. 8, and the
//! §IV-C3 order-invariance probe.

use crate::tasks::{experiment_model_cfg, experiment_sketch_cfg, metadata_vocab, sketch_tables};
use crate::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsfm_baselines::SentenceEncoder;
use tsfm_core::finetune::{finetune, CrossEncoder, FinetuneConfig};
use tsfm_core::{
    column_embeddings, concat_normalized, encode_table, single_sequence, SketchToggle,
    TabSketchFM,
};
use tsfm_lake::{PairTask, SearchBenchmark};
use tsfm_search::{
    ranked_table_ids, BruteForceIndex, ColumnHit, JosieIndex, LshForest, Metric,
};
use tsfm_sketch::{MinHasher, SketchConfig};
use tsfm_table::hash::hash_str;
use tsfm_table::Table;
use tsfm_tokenizer::Vocab;

/// Which (table, column) a corpus column vector belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnOwner {
    pub table: usize,
    pub col: usize,
}

/// Per-corpus column embeddings plus ownership, from any provider.
pub struct ColumnSpace {
    pub vecs: Vec<Vec<f32>>,
    pub owners: Vec<ColumnOwner>,
}

impl ColumnSpace {
    /// Index of a specific (table, col).
    pub fn position(&self, table: usize, col: usize) -> Option<usize> {
        self.owners.iter().position(|o| o.table == table && o.col == col)
    }

    /// Concatenate two spaces element-wise after z-normalizing each (the
    /// TabSketchFM-SBERT combination). Owner layouts must match.
    pub fn concat(&self, other: &ColumnSpace) -> ColumnSpace {
        assert_eq!(self.owners, other.owners, "column layouts must align");
        let vecs = self
            .vecs
            .iter()
            .zip(&other.vecs)
            .map(|(a, b)| concat_normalized(a, b))
            .collect();
        ColumnSpace { vecs, owners: self.owners.clone() }
    }

    /// Subtract the corpus mean and L2-normalize every vector.
    ///
    /// Small transformer encoders produce anisotropic hidden states — all
    /// embeddings share one dominant direction (Ethayarajh 2019), so raw
    /// cosine distances are noise. The paper's 118M-parameter model
    /// inherits usable geometry from large-scale pretraining; at our scale
    /// centering restores it explicitly (documented in DESIGN.md).
    pub fn centered(mut self) -> ColumnSpace {
        center_vectors(&mut self.vecs);
        self
    }
}

/// Mean-center and L2-normalize a set of embedding vectors in place.
pub fn center_vectors(vecs: &mut [Vec<f32>]) {
    if vecs.is_empty() {
        return;
    }
    let dim = vecs[0].len();
    let mut mean = vec![0.0f32; dim];
    for v in vecs.iter() {
        for (m, &x) in mean.iter_mut().zip(v) {
            *m += x;
        }
    }
    let n = vecs.len() as f32;
    for m in &mut mean {
        *m /= n;
    }
    for v in vecs.iter_mut() {
        let mut norm = 0.0f32;
        for (x, &m) in v.iter_mut().zip(&mean) {
            *x -= m;
            norm += *x * *x;
        }
        let norm = norm.sqrt().max(1e-6);
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Contextual column embeddings from a (fine-tuned) TabSketchFM.
pub fn tabsketchfm_columns(model: &TabSketchFM, tables: &[Table], vocab: &Vocab) -> ColumnSpace {
    let sketches = sketch_tables(tables, &experiment_sketch_cfg());
    let mut vecs = Vec::new();
    let mut owners = Vec::new();
    for (ti, sk) in sketches.iter().enumerate() {
        let enc = encode_table(sk, vocab, &model.cfg.input, model.cfg.toggle);
        let seq = single_sequence(&enc, &model.cfg.input);
        for (ci, v) in column_embeddings(model, &seq) {
            vecs.push(v);
            owners.push(ColumnOwner { table: ti, col: ci });
        }
    }
    ColumnSpace { vecs, owners }.centered()
}

/// SBERT-style column embeddings (top-100 unique values as a sentence).
pub fn sbert_columns(tables: &[Table], enc: &SentenceEncoder) -> ColumnSpace {
    let mut vecs = Vec::new();
    let mut owners = Vec::new();
    for (ti, t) in tables.iter().enumerate() {
        for (ci, c) in t.columns.iter().enumerate() {
            vecs.push(enc.encode_column(c, 100));
            owners.push(ColumnOwner { table: ti, col: ci });
        }
    }
    ColumnSpace { vecs, owners }
}

/// Column embeddings from any per-column function (Starmie, DeepJoin,
/// WarpGate, TaBERT-FT column texts, …).
pub fn columns_by<F: FnMut(&tsfm_table::Column) -> Vec<f32>>(
    tables: &[Table],
    mut f: F,
) -> ColumnSpace {
    let mut vecs = Vec::new();
    let mut owners = Vec::new();
    for (ti, t) in tables.iter().enumerate() {
        for (ci, c) in t.columns.iter().enumerate() {
            vecs.push(f(c));
            owners.push(ColumnOwner { table: ti, col: ci });
        }
    }
    ColumnSpace { vecs, owners }
}

/// Fig.-6 table search over a column space: for each query table, KNNSEARCH
/// each of its columns (`k·3` over-retrieval), then RANK1/RANK2.
pub fn fig6_search(space: &ColumnSpace, bench: &SearchBenchmark, k: usize) -> Vec<Vec<usize>> {
    let dim = space.vecs.first().map_or(0, Vec::len);
    let mut index = BruteForceIndex::new(dim, Metric::Cosine);
    for v in &space.vecs {
        index.add(v);
    }
    let mut results = Vec::with_capacity(bench.queries.len());
    for &q in &bench.queries {
        let mut per_col: Vec<Vec<ColumnHit>> = Vec::new();
        for (pos, owner) in space.owners.iter().enumerate() {
            if owner.table != q {
                continue;
            }
            let hits = index
                .search(&space.vecs[pos], k * 3)
                .into_iter()
                .map(|(id, d)| ColumnHit { table: space.owners[id].table, column: id, distance: d })
                .collect();
            per_col.push(hits);
        }
        let mut ids = ranked_table_ids(&per_col, Some(q));
        ids.truncate(k);
        results.push(ids);
    }
    results
}

/// Join search over a column space: rank tables by the distance of their
/// closest column to the query's *key* column.
pub fn join_search_embeddings(
    space: &ColumnSpace,
    bench: &SearchBenchmark,
    k: usize,
) -> Vec<Vec<usize>> {
    let keys = bench.key_column.as_ref().expect("join benchmark has key columns");
    let dim = space.vecs.first().map_or(0, Vec::len);
    let mut index = BruteForceIndex::new(dim, Metric::Cosine);
    for v in &space.vecs {
        index.add(v);
    }
    let mut results = Vec::with_capacity(bench.queries.len());
    for &q in &bench.queries {
        let pos = space.position(q, keys[q]).expect("query key column embedded");
        let hits: Vec<ColumnHit> = index
            .search(&space.vecs[pos], k * 3)
            .into_iter()
            .map(|(id, d)| ColumnHit { table: space.owners[id].table, column: id, distance: d })
            .collect();
        let mut ids = ranked_table_ids(&[hits], Some(q));
        ids.truncate(k);
        results.push(ids);
    }
    results
}

fn column_value_hashes(t: &Table, col: usize) -> Vec<u64> {
    t.columns[col].rendered_values().map(|v| hash_str(&v)).collect()
}

/// Josie-style exact-containment join search: every corpus column is an
/// indexed set; tables ranked by their best column's overlap.
pub fn join_search_josie(bench: &SearchBenchmark, k: usize) -> Vec<Vec<usize>> {
    let mut index = JosieIndex::new();
    let mut owners = Vec::new();
    for (ti, t) in bench.tables.iter().enumerate() {
        for ci in 0..t.num_cols() {
            index.add(column_value_hashes(t, ci));
            owners.push(ti);
        }
    }
    let keys = bench.key_column.as_ref().expect("join benchmark");
    bench
        .queries
        .iter()
        .map(|&q| {
            let hits = index.top_k_overlap(
                column_value_hashes(&bench.tables[q], keys[q]),
                k * 4,
            );
            let mut seen = std::collections::BTreeSet::new();
            let mut ids = Vec::new();
            for (cid, _) in hits {
                let t = owners[cid];
                if t != q && seen.insert(t) {
                    ids.push(t);
                    if ids.len() == k {
                        break;
                    }
                }
            }
            ids
        })
        .collect()
}

/// LSH-Forest approximate join search over column MinHash signatures.
pub fn join_search_lshforest(bench: &SearchBenchmark, k: usize) -> Vec<Vec<usize>> {
    let scfg = SketchConfig { minhash_k: 64, ..Default::default() };
    let hasher = MinHasher::new(scfg.minhash_k, scfg.seed);
    let mut forest = LshForest::new(8, 8, scfg.minhash_k, 77);
    let mut owners = Vec::new();
    let mut sig_of = Vec::new();
    for (ti, t) in bench.tables.iter().enumerate() {
        for ci in 0..t.num_cols() {
            let sig = hasher.signature_hashed(column_value_hashes(t, ci));
            sig_of.push((ti, ci, sig.clone()));
            forest.add(sig);
            owners.push(ti);
        }
    }
    let keys = bench.key_column.as_ref().expect("join benchmark");
    bench
        .queries
        .iter()
        .map(|&q| {
            let sig = hasher.signature_hashed(column_value_hashes(
                &bench.tables[q],
                keys[q],
            ));
            let hits = forest.search(&sig, k * 4);
            let mut seen = std::collections::BTreeSet::new();
            let mut ids = Vec::new();
            for (cid, _) in hits {
                let t = owners[cid];
                if t != q && seen.insert(t) {
                    ids.push(t);
                    if ids.len() == k {
                        break;
                    }
                }
            }
            ids
        })
        .collect()
}

/// Table-embedding search (TUTA-FT style): one vector per table, rank by
/// cosine distance ascending.
pub fn table_embedding_search(
    vecs: &[Vec<f32>],
    bench: &SearchBenchmark,
    k: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(vecs.len(), bench.tables.len());
    let dim = vecs.first().map_or(0, Vec::len);
    let mut index = BruteForceIndex::new(dim, Metric::Cosine);
    for v in vecs {
        index.add(v);
    }
    bench
        .queries
        .iter()
        .map(|&q| {
            index
                .search(&vecs[q], k + 1)
                .into_iter()
                .filter(|&(id, _)| id != q)
                .take(k)
                .map(|(id, _)| id)
                .collect()
        })
        .collect()
}

/// Brute-force table-scoring search (D3L / SANTOS / table-embedding
/// baselines): rank the corpus by `score(query, candidate)` descending.
pub fn score_search<F: FnMut(&Table, &Table) -> f64>(
    bench: &SearchBenchmark,
    k: usize,
    mut score: F,
) -> Vec<Vec<usize>> {
    bench
        .queries
        .iter()
        .map(|&q| {
            let mut scored: Vec<(usize, f64)> = (0..bench.tables.len())
                .filter(|&c| c != q)
                .map(|c| (c, score(&bench.tables[q], &bench.tables[c])))
                .collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0))
            });
            scored.into_iter().take(k).map(|(c, _)| c).collect()
        })
        .collect()
}

/// Pretrain (MLM over the task + corpus tables) then fine-tune a
/// TabSketchFM cross-encoder on `task`, returning the underlying model for
/// embedding extraction — the §IV-C protocol: search uses embeddings of
/// the pretrained-then-fine-tuned model.
pub fn finetuned_model_for_search(
    task: &PairTask,
    corpus: &[Table],
    vocab: &Vocab,
    scale: &Scale,
    toggle: SketchToggle,
    seed: u64,
) -> TabSketchFM {
    use crate::tasks::encode_split;
    use tsfm_core::{pretrain, PretrainConfig};
    let mcfg = experiment_model_cfg(vocab, toggle);
    let sketches = sketch_tables(&task.tables, &experiment_sketch_cfg());
    let train = encode_split(task, &task.splits.train, &sketches, vocab, &mcfg);
    let valid = encode_split(task, &task.splits.valid, &sketches, vocab, &mcfg);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ea4);
    let mut model = TabSketchFM::new(mcfg, &mut rng);
    let pretrain_tables: Vec<Table> = corpus
        .iter()
        .chain(task.tables.iter())
        .take(scale.pretrain_tables.max(40))
        .cloned()
        .collect();
    let pcfg = PretrainConfig {
        epochs: scale.pretrain_epochs,
        batch_size: 8,
        lr: 1e-3,
        augment_copies: 1,
        patience: scale.pretrain_epochs,
        seed,
        ..Default::default()
    };
    pretrain(&mut model, &pretrain_tables, vocab, &pcfg, 0.1);
    let mut ce = CrossEncoder::new(model, task.task, &mut rng);
    let ft = FinetuneConfig {
        epochs: scale.epochs,
        batch_size: 8,
        lr: 2e-3,
        patience: scale.epochs,
        seed,
    };
    finetune(&mut ce, &train, &valid, &ft);
    ce.model
}

/// Vocabulary covering a search benchmark plus the fine-tuning task tables.
pub fn search_vocab(bench: &SearchBenchmark, task: &PairTask) -> Vocab {
    let refs: Vec<&Table> = bench.tables.iter().chain(task.tables.iter()).collect();
    metadata_vocab(&refs)
}
