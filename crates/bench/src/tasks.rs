//! Fine-tuning experiment machinery: Tables II, III and IV.

use crate::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsfm_baselines::textmodel::{
    build_vocab, train_text_model, Serialization, TextModelConfig, TextPairModel,
};
use tsfm_core::finetune::{finetune, CrossEncoder, FinetuneConfig, Label, PairDataset, TaskKind};
use tsfm_core::{
    encode_table, pair_sequence, pretrain, ModelConfig, PretrainConfig, SketchToggle,
    TabSketchFM,
};
use tsfm_lake::{gen_pretrain_corpus, PairTask, World};
use tsfm_search::{multilabel_weighted_f1, r2_score, weighted_f1};
use tsfm_sketch::{MinHasher, SketchConfig, TableSketch};
use tsfm_table::Table;
use tsfm_tokenizer::{Vocab, VocabBuilder};

/// Systems compared in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Header-only cross-encoder ("Vanilla BERT").
    VanillaBert,
    /// Frozen encoder + trainable MLP, empty "query" view (TAPAS-like).
    Tapas,
    /// Frozen encoder + trainable MLP over rows (TABBIE-like).
    Tabbie,
    /// Structure-aware trainable encoder (TUTA-like).
    Tuta,
    /// Row-serialization trainable encoder (TaBERT-like).
    TaBert,
    /// The paper's model, with a sketch toggle for ablations.
    TabSketchFM(SketchToggle),
}

impl System {
    pub fn name(&self) -> &'static str {
        match self {
            System::VanillaBert => "Vanilla BERT",
            System::Tapas => "TAPAS",
            System::Tabbie => "TABBIE",
            System::Tuta => "TUTA",
            System::TaBert => "TaBERT",
            System::TabSketchFM(t) if *t == SketchToggle::ALL => "TabSketchFM",
            System::TabSketchFM(_) => "TabSketchFM(ablated)",
        }
    }
}

/// Vocabulary over table *metadata* (descriptions + headers + type names):
/// all TabSketchFM ever tokenizes.
pub fn metadata_vocab(tables: &[&Table]) -> Vocab {
    let mut vb = VocabBuilder::new();
    for t in tables {
        vb.add_text(&t.description);
        vb.add_text(&t.name);
        for c in &t.columns {
            vb.add_text(&c.name);
        }
    }
    vb.build(1, 8_000)
}

/// Sketch every table of a task once (shared hasher).
pub fn sketch_tables(tables: &[Table], cfg: &SketchConfig) -> Vec<TableSketch> {
    let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
    tables.iter().map(|t| TableSketch::build_with_hasher(t, &hasher, cfg.max_rows)).collect()
}

/// Encode a split of a pair task into model-ready sequences.
pub fn encode_split(
    task: &PairTask,
    idxs: &[usize],
    sketches: &[TableSketch],
    vocab: &Vocab,
    mcfg: &ModelConfig,
) -> PairDataset {
    let mut seqs = Vec::with_capacity(idxs.len());
    let mut labels = Vec::with_capacity(idxs.len());
    for &i in idxs {
        let (a, b, l) = &task.pairs[i];
        let ea = encode_table(&sketches[*a], vocab, &mcfg.input, mcfg.toggle);
        let eb = encode_table(&sketches[*b], vocab, &mcfg.input, mcfg.toggle);
        seqs.push(pair_sequence(&ea, &eb, &mcfg.input));
        labels.push(l.clone());
    }
    PairDataset { seqs, labels }
}

/// Score test-set predictions with the paper's metric for the task type.
pub fn score_predictions(preds: &[Vec<f32>], labels: &[Label], task: TaskKind) -> f64 {
    match task {
        TaskKind::Binary => {
            let p: Vec<usize> = preds.iter().map(|r| (r[1] > r[0]) as usize).collect();
            let g: Vec<usize> = labels
                .iter()
                .map(|l| match l {
                    Label::Binary(b) => *b as usize,
                    _ => unreachable!(),
                })
                .collect();
            weighted_f1(&p, &g)
        }
        TaskKind::Regression => {
            let p: Vec<f64> = preds.iter().map(|r| r[0] as f64).collect();
            let g: Vec<f64> = labels
                .iter()
                .map(|l| match l {
                    Label::Scalar(v) => *v as f64,
                    _ => unreachable!(),
                })
                .collect();
            r2_score(&p, &g)
        }
        TaskKind::MultiLabel(_) => {
            let p: Vec<Vec<bool>> =
                preds.iter().map(|r| r.iter().map(|&x| x > 0.0).collect()).collect();
            let g: Vec<Vec<bool>> = labels
                .iter()
                .map(|l| match l {
                    Label::MultiHot(v) => v.iter().map(|&x| x > 0.5).collect(),
                    _ => unreachable!(),
                })
                .collect();
            multilabel_weighted_f1(&p, &g)
        }
    }
}

/// TabSketchFM model configuration used by the experiments.
pub fn experiment_model_cfg(vocab: &Vocab, toggle: SketchToggle) -> ModelConfig {
    let mut cfg = ModelConfig::small(vocab.len());
    cfg.encoder.d_model = 48;
    cfg.encoder.heads = 4;
    cfg.encoder.d_ff = 96;
    cfg.encoder.layers = 2;
    cfg.minhash_k = 16;
    cfg.toggle = toggle;
    cfg
}

/// The sketch configuration matching [`experiment_model_cfg`].
pub fn experiment_sketch_cfg() -> SketchConfig {
    SketchConfig { minhash_k: 16, ..Default::default() }
}

/// Pretrain a TabSketchFM on a synthetic corpus and checkpoint it, so every
/// fine-tuning run starts from the same pretrained weights (Fig. 2a → 2b).
pub fn pretrain_checkpoint(
    world: &World,
    vocab: &Vocab,
    scale: &Scale,
    toggle: SketchToggle,
    seed: u64,
    path: &std::path::Path,
) {
    let corpus = gen_pretrain_corpus(world, scale.pretrain_tables, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = TabSketchFM::new(experiment_model_cfg(vocab, toggle), &mut rng);
    let pcfg = PretrainConfig {
        epochs: scale.pretrain_epochs,
        batch_size: 8,
        lr: 1e-3,
        augment_copies: 1,
        patience: scale.pretrain_epochs,
        seed,
        ..Default::default()
    };
    pretrain(&mut model, &corpus, vocab, &pcfg, 0.1);
    tsfm_nn::io::save_params(&model.store, path).expect("checkpoint write");
}

/// Fine-tune and score one system on one task with one seed; returns the
/// test metric (weighted F1 or R²).
pub fn run_system(
    system: System,
    task: &PairTask,
    vocab: &Vocab,
    scale: &Scale,
    seed: u64,
    pretrained: Option<&std::path::Path>,
) -> f64 {
    let ft = FinetuneConfig {
        epochs: scale.epochs,
        batch_size: 8,
        lr: 2e-3,
        patience: scale.epochs,
        seed,
    };
    match system {
        System::TabSketchFM(toggle) => {
            let mcfg = experiment_model_cfg(vocab, toggle);
            let sketches = sketch_tables(&task.tables, &experiment_sketch_cfg());
            let train = encode_split(task, &task.splits.train, &sketches, vocab, &mcfg);
            let valid = encode_split(task, &task.splits.valid, &sketches, vocab, &mcfg);
            let test = encode_split(task, &task.splits.test, &sketches, vocab, &mcfg);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xf17e);
            let mut model = TabSketchFM::new(mcfg, &mut rng);
            if let Some(p) = pretrained {
                tsfm_nn::io::load_params(&mut model.store, p).expect("checkpoint read");
            }
            let mut ce = CrossEncoder::new(model, task.task, &mut rng);
            finetune(&mut ce, &train, &valid, &ft);
            let preds = ce.predict(&test.seqs, 8);
            score_predictions(&preds, &test.labels, task.task)
        }
        _ => {
            let (serialization, frozen) = match system {
                System::VanillaBert => (Serialization::Headers, false),
                System::TaBert => (Serialization::Rows { max_rows: 5 }, false),
                System::Tuta => (Serialization::Struct, false),
                System::Tapas => (Serialization::Rows { max_rows: 2 }, true),
                System::Tabbie => (Serialization::Rows { max_rows: 5 }, true),
                System::TabSketchFM(_) => unreachable!(),
            };
            let refs: Vec<&Table> = task.tables.iter().collect();
            let bvocab = build_vocab(&refs, serialization, 8_000);
            let mut cfg = TextModelConfig::small();
            cfg.encoder.d_model = 48;
            cfg.encoder.heads = 4;
            cfg.encoder.d_ff = 96;
            cfg.encoder.layers = 2;
            cfg.frozen_encoder = frozen;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xba5e);
            let mut model = TextPairModel::new(
                system.name(),
                bvocab,
                cfg,
                serialization,
                task.task,
                &mut rng,
            );
            let pair_of = |i: usize| -> (&Table, &Table) {
                let (a, b, _) = &task.pairs[i];
                (&task.tables[*a], &task.tables[*b])
            };
            let label_of = |i: usize| task.pairs[i].2.clone();
            let train_pairs: Vec<(&Table, &Table)> =
                task.splits.train.iter().map(|&i| pair_of(i)).collect();
            let train_labels: Vec<Label> =
                task.splits.train.iter().map(|&i| label_of(i)).collect();
            let valid_pairs: Vec<(&Table, &Table)> =
                task.splits.valid.iter().map(|&i| pair_of(i)).collect();
            let valid_labels: Vec<Label> =
                task.splits.valid.iter().map(|&i| label_of(i)).collect();
            train_text_model(
                &mut model,
                (&train_pairs, &train_labels),
                (&valid_pairs, &valid_labels),
                &ft,
            );
            let test_pairs: Vec<(&Table, &Table)> =
                task.splits.test.iter().map(|&i| pair_of(i)).collect();
            let test_labels: Vec<Label> =
                task.splits.test.iter().map(|&i| label_of(i)).collect();
            let preds = model.predict(&test_pairs, 8);
            score_predictions(&preds, &test_labels, task.task)
        }
    }
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}
