//! The union-search experiment shared by Table VI (SANTOS-style) and
//! Table VII (TUS-style), including the Fig. 4b/4c curves.

use crate::searchexp::{
    columns_by, fig6_search, finetuned_model_for_search, sbert_columns, score_search,
    search_vocab, table_embedding_search, tabsketchfm_columns,
};
use crate::{print_curve, print_search_row, Scale};
use tsfm_baselines::column_encoders::ColumnEncoderConfig;
use tsfm_baselines::textmodel::{
    build_vocab, train_text_model, Serialization, TextModelConfig, TextPairModel,
};
use tsfm_baselines::{
    d3l_table_score, santos_table_score, ContrastiveColumnEncoder, SentenceEncoder,
};
use tsfm_core::finetune::Label;
use tsfm_core::SketchToggle;
use tsfm_lake::{gen_tus_santos, gen_union_search, UnionSearchConfig, World, WorldConfig};
use tsfm_table::Table;

/// Run the full union-search comparison; `tus` switches to the larger
/// TUS-style corpus and k-sweep.
pub fn union_search_experiment(tus: bool, scale: &Scale) {
        let world = World::generate(WorldConfig::default());
    let (name, cfg, k, ks): (&str, UnionSearchConfig, usize, Vec<usize>) = if tus {
        // Paper's TUS protocol: queries with ≥60 unionable tables, k to 60;
        // our clusters are 30-strong, so the sweep scales proportionally.
        (
            "TUS union search (Table VII / Fig. 4c)",
            UnionSearchConfig::tus_style(),
            30,
            vec![5, 10, 15, 20, 25, 30],
        )
    } else {
        (
            "SANTOS union search (Table VI / Fig. 4b)",
            UnionSearchConfig::santos_style(),
            10,
            vec![2, 4, 6, 8, 10, 12],
        )
    };
    let bench = gen_union_search(&world, name, &cfg);
    let task = gen_tus_santos(&world, scale.pairs_per_task, 0);
    let vocab = search_vocab(&bench, &task);

    println!(
        "{name} — {} tables, {} queries, gold cluster size {}",
        bench.tables.len(),
        bench.queries.len(),
        cfg.cluster_size - 1
    );
    println!("{:<20} {:>8} {:>6} {:>6}", "Baseline", "MeanF1%", &format!("P@{k}"), &format!("R@{k}"));
    let mut curves: Vec<(String, Vec<Vec<usize>>)> = Vec::new();
    let kmax = *ks.last().unwrap();

    // TaBERT-FT: fine-tuned on the binary-union task, column-text
    // embeddings + Fig-6 ranking.
    let refs: Vec<&Table> = task.tables.iter().chain(bench.tables.iter()).collect();
    let bvocab = build_vocab(&refs, Serialization::Rows { max_rows: 5 }, 8_000);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);
    let ft = tsfm_core::FinetuneConfig {
        epochs: scale.epochs.min(4),
        batch_size: 8,
        lr: 2e-3,
        patience: 10,
        seed: 0,
    };
    let pair_of = |i: usize| {
        let (a, b, _) = &task.pairs[i];
        (&task.tables[*a], &task.tables[*b])
    };
    let tp: Vec<(&Table, &Table)> = task.splits.train.iter().map(|&i| pair_of(i)).collect();
    let tl: Vec<Label> = task.splits.train.iter().map(|&i| task.pairs[i].2.clone()).collect();

    let mut tabert = TextPairModel::new(
        "TaBERT-FT",
        bvocab.clone(),
        TextModelConfig { encoder: tsfm_nn::EncoderConfig::small(), max_seq: 120, frozen_encoder: false },
        Serialization::Rows { max_rows: 5 },
        task.task,
        &mut rng,
    );
    train_text_model(&mut tabert, (&tp, &tl), (&[], &[]), &ft);
    let tabert_space = columns_by(&bench.tables, |c| {
        let mut text = c.name.clone();
        for v in c.rendered_values().take(30) {
            text.push(' ');
            text.push_str(&v);
        }
        tabert.embed_text(&text)
    });
    let r = fig6_search(&tabert_space, &bench, kmax);
    print_search_row("TaBERT-FT", &r, &bench.gold, k);
    curves.push(("TaBERT-FT".into(), r));

    // TUTA-FT: structural model, table embeddings only (as in the paper).
    let mut tuta = TextPairModel::new(
        "TUTA-FT",
        bvocab,
        TextModelConfig { encoder: tsfm_nn::EncoderConfig::small(), max_seq: 120, frozen_encoder: false },
        Serialization::Struct,
        task.task,
        &mut rng,
    );
    train_text_model(&mut tuta, (&tp, &tl), (&[], &[]), &ft);
    let table_vecs: Vec<Vec<f32>> =
        bench.tables.iter().map(|t| tuta.embed_text(&tuta.table_text(t))).collect();
    let r = table_embedding_search(&table_vecs, &bench, kmax);
    print_search_row("TUTA-FT", &r, &bench.gold, k);
    curves.push(("TUTA-FT".into(), r));

    // Starmie: contrastive column embeddings + Fig-6.
    let all_cols: Vec<&tsfm_table::Column> =
        bench.tables.iter().flat_map(|t| t.columns.iter()).collect();
    let mut starmie = ContrastiveColumnEncoder::new(
        SentenceEncoder::default(),
        ColumnEncoderConfig { epochs: 3, ..Default::default() },
    );
    starmie.train(&all_cols);
    let starmie_space = columns_by(&bench.tables, |c| starmie.embed(c));
    let r = fig6_search(&starmie_space, &bench, kmax);
    print_search_row("Starmie", &r, &bench.gold, k);
    curves.push(("Starmie".into(), r));

    // D3L and SANTOS scorers.
    let enc = SentenceEncoder::default();
    let r = score_search(&bench, kmax, |q, c| d3l_table_score(q, c, &enc));
    print_search_row("D3L", &r, &bench.gold, k);
    curves.push(("D3L".into(), r));
    let r = score_search(&bench, kmax, |q, c| santos_table_score(q, c, &enc));
    print_search_row("SANTOS", &r, &bench.gold, k);
    curves.push(("SANTOS".into(), r));

    // SBERT value embeddings + Fig-6.
    let sbert_space = sbert_columns(&bench.tables, &enc);
    let r = fig6_search(&sbert_space, &bench, kmax);
    print_search_row("SBERT", &r, &bench.gold, k);
    curves.push(("SBERT".into(), r));

    // TabSketchFM fine-tuned on the union task, column embeddings + Fig-6.
    let model = finetuned_model_for_search(&task, &bench.tables, &vocab, scale, SketchToggle::ALL, 0);
    let tsfm_space = tabsketchfm_columns(&model, &bench.tables, &vocab);
    let r = fig6_search(&tsfm_space, &bench, kmax);
    print_search_row("TabSketchFM", &r, &bench.gold, k);
    curves.push(("TabSketchFM".into(), r));

    let concat = tsfm_space.concat(&sbert_space);
    let r = fig6_search(&concat, &bench, kmax);
    print_search_row("TabSketchFM-SBERT", &r, &bench.gold, k);
    curves.push(("TabSketchFM-SBERT".into(), r));

    println!("\nF1@k curve, k = {ks:?}");
    for (n, retrieved) in &curves {
        print_curve(n, retrieved, &bench.gold, &ks);
    }
}
