//! Model and input-encoding configuration.

use tsfm_nn::EncoderConfig;

/// Which sketch streams feed the input embedding — the knob behind the
/// paper's Table III (only-one-sketch) and Table IV (remove-one-sketch)
/// ablations. Disabled streams contribute zero vectors, so the model
/// architecture (and parameter count) is unchanged across ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchToggle {
    /// Column-level MinHash sketches (cell values + words).
    pub minhash: bool,
    /// Column-level numerical sketches.
    pub numeric: bool,
    /// Table-level content snapshot (fed at metadata tokens).
    pub content: bool,
}

impl SketchToggle {
    pub const ALL: SketchToggle = SketchToggle { minhash: true, numeric: true, content: true };
    pub const ONLY_MINHASH: SketchToggle =
        SketchToggle { minhash: true, numeric: false, content: false };
    pub const ONLY_NUMERIC: SketchToggle =
        SketchToggle { minhash: false, numeric: true, content: false };
    pub const ONLY_CONTENT: SketchToggle =
        SketchToggle { minhash: false, numeric: false, content: true };
    pub const NO_MINHASH: SketchToggle =
        SketchToggle { minhash: false, numeric: true, content: true };
    pub const NO_NUMERIC: SketchToggle =
        SketchToggle { minhash: true, numeric: false, content: true };
    pub const NO_CONTENT: SketchToggle =
        SketchToggle { minhash: true, numeric: true, content: false };
}

/// Sequence-construction limits.
#[derive(Debug, Clone)]
pub struct InputConfig {
    /// Hard cap on tokens in one encoded sequence (pairs share it).
    pub max_seq: usize,
    /// Tokens kept per column name.
    pub max_tokens_per_col: usize,
    /// Tokens kept from the table description.
    pub max_desc_tokens: usize,
    /// Columns kept per table.
    pub max_cols: usize,
    /// Token-position embedding vocabulary (positions clamp to the last).
    pub max_token_pos: usize,
}

impl Default for InputConfig {
    fn default() -> Self {
        Self {
            max_seq: 160,
            max_tokens_per_col: 4,
            max_desc_tokens: 12,
            max_cols: 16,
            max_token_pos: 8,
        }
    }
}

/// Full TabSketchFM configuration.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    pub encoder: EncoderConfig,
    pub input: InputConfig,
    /// MinHash signature width `k`; the MinHash projection consumes `2k`
    /// features (`[cell ‖ word]`).
    pub minhash_k: usize,
    pub vocab_size: usize,
    pub toggle: SketchToggle,
    /// Dropout applied to the summed input embedding.
    pub embed_dropout: f32,
}

impl ModelConfig {
    /// Laptop-scale experiment configuration (see DESIGN.md substitutions).
    pub fn small(vocab_size: usize) -> Self {
        Self {
            encoder: EncoderConfig::small(),
            input: InputConfig::default(),
            minhash_k: 32,
            vocab_size,
            toggle: SketchToggle::ALL,
            embed_dropout: 0.1,
        }
    }

    /// Unit-test configuration.
    pub fn tiny(vocab_size: usize) -> Self {
        Self {
            encoder: EncoderConfig::tiny(),
            input: InputConfig {
                max_seq: 64,
                max_tokens_per_col: 3,
                max_desc_tokens: 6,
                max_cols: 8,
                max_token_pos: 6,
            },
            minhash_k: 8,
            vocab_size,
            toggle: SketchToggle::ALL,
            embed_dropout: 0.0,
        }
    }

    pub fn with_toggle(mut self, toggle: SketchToggle) -> Self {
        self.toggle = toggle;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The toggles are consts; asserting their fields is the whole point.
    #[allow(clippy::assertions_on_constants)]
    fn toggles() {
        assert!(SketchToggle::ALL.minhash && SketchToggle::ALL.numeric && SketchToggle::ALL.content);
        assert!(!SketchToggle::ONLY_MINHASH.numeric);
        assert!(!SketchToggle::NO_MINHASH.minhash && SketchToggle::NO_MINHASH.numeric);
    }

    #[test]
    fn configs_consistent() {
        let c = ModelConfig::small(100);
        assert_eq!(c.vocab_size, 100);
        assert!(c.encoder.d_model % c.encoder.heads == 0);
        let t = ModelConfig::tiny(50).with_toggle(SketchToggle::ONLY_NUMERIC);
        assert_eq!(t.toggle, SketchToggle::ONLY_NUMERIC);
    }
}
