//! Embedding extraction for search (paper §III-E, §IV-C).
//!
//! Table embeddings are the pooler output of a single-table forward pass;
//! column embeddings are the mean of the final hidden states over each
//! column's name tokens (contextualized by attention over the whole
//! table). `concat_normalized` implements the TabSketchFM-SBERT variant:
//! z-normalize each embedding family, then concatenate.

use crate::input::Sequence;
use crate::model::TabSketchFM;
use tsfm_nn::Tape;

/// Table-level embeddings (pooler output), one per sequence.
pub fn table_embeddings(
    model: &TabSketchFM,
    seqs: &[Sequence],
    batch_size: usize,
) -> Vec<Vec<f32>> {
    let d = model.d_model();
    let mut out = Vec::with_capacity(seqs.len());
    for chunk in seqs.chunks(batch_size.max(1)) {
        let mut tape = Tape::new(false, 0);
        let fwd = model.forward(&mut tape, chunk);
        let pooled = tape.value(fwd.pooled);
        for row in pooled.data().chunks(d) {
            out.push(row.to_vec());
        }
    }
    out
}

/// Contextual column embeddings for one sequence: `(column index, vec)` in
/// the order the columns were encoded.
///
/// The vector is the concatenation of the column tokens' mean **input
/// embedding** (which carries the MinHash/numerical sketch projections
/// directly) and their mean **final hidden state** (attention context).
/// The paper's 118M-parameter model distributes sketch information through
/// all layers during its 2-day pretraining; at our scale the input layer
/// must be surfaced explicitly or the sketch signal is drowned by token
/// identity (see DESIGN.md).
pub fn column_embeddings(model: &TabSketchFM, seq: &Sequence) -> Vec<(usize, Vec<f32>)> {
    let d = model.d_model();
    let mut tape = Tape::new(false, 0);
    let fwd = model.forward(&mut tape, std::slice::from_ref(seq));
    let hidden = tape.value(fwd.hidden).clone(); // [1, T, D]
    let embed = tape.value(fwd.input_embed).clone(); // [1, T, D]
    let mut out = Vec::with_capacity(seq.col_ranges.len());
    for (_seg, ci, range) in &seq.col_ranges {
        let mut v = vec![0.0f32; 2 * d];
        let n = range.len().max(1) as f32;
        for t in range.clone() {
            for (acc, &x) in v[..d].iter_mut().zip(&embed.data()[t * d..(t + 1) * d]) {
                *acc += x;
            }
            for (acc, &x) in v[d..].iter_mut().zip(&hidden.data()[t * d..(t + 1) * d]) {
                *acc += x;
            }
        }
        for acc in &mut v {
            *acc /= n;
        }
        out.push((*ci, v));
    }
    out
}

/// Z-normalize `v` in place (zero mean, unit variance across components),
/// the normalization the paper applies before concatenating TabSketchFM and
/// SBERT embeddings "so the means and variances of the two vectors were in
/// the same scale".
pub fn z_normalize(v: &mut [f32]) {
    let n = v.len().max(1) as f32;
    let mean = v.iter().sum::<f32>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let std = var.sqrt().max(1e-6);
    for x in v {
        *x = (*x - mean) / std;
    }
}

/// Concatenate two embedding families after z-normalizing each
/// (TabSketchFM-SBERT).
pub fn concat_normalized(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut va = a.to_vec();
    let mut vb = b.to_vec();
    z_normalize(&mut va);
    z_normalize(&mut vb);
    va.extend(vb);
    va
}

/// Cosine similarity between two vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine dims");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, SketchToggle};
    use crate::input::{encode_table, single_sequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsfm_sketch::{SketchConfig, TableSketch};
    use tsfm_table::{Column, Table, Value};
    use tsfm_tokenizer::VocabBuilder;

    fn setup() -> (TabSketchFM, Sequence) {
        let mut vb = VocabBuilder::new();
        vb.add_text("people name age data");
        let vocab = vb.build(1, 100);
        let cfg = ModelConfig::tiny(vocab.len());
        let mut t = Table::new("t", "people data");
        t.push_column(Column::new("name", vec![Value::Str("ann".into())]));
        t.push_column(Column::new("age", vec![Value::Int(4)]));
        let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };
        let enc = encode_table(
            &TableSketch::build(&t, &scfg),
            &vocab,
            &cfg.input,
            SketchToggle::ALL,
        );
        let seq = single_sequence(&enc, &cfg.input);
        let mut rng = StdRng::seed_from_u64(0);
        (TabSketchFM::new(cfg, &mut rng), seq)
    }

    #[test]
    fn table_embedding_dims_and_batching() {
        let (model, seq) = setup();
        let es = table_embeddings(&model, &[seq.clone(), seq.clone(), seq], 2);
        assert_eq!(es.len(), 3);
        assert_eq!(es[0].len(), model.d_model());
        // Batch size must not change results.
        for (a, b) in es[0].iter().zip(&es[2]) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn column_embeddings_one_per_column() {
        let (model, seq) = setup();
        let cols = column_embeddings(&model, &seq);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0, 0);
        assert_eq!(cols[1].0, 1);
        assert_eq!(cols[0].1.len(), 2 * model.d_model(), "input ‖ hidden");
        // Different columns get different embeddings.
        let diff: f32 =
            cols[0].1.iter().zip(&cols[1].1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn z_normalize_moments() {
        let mut v = vec![10.0, 20.0, 30.0, 40.0];
        z_normalize(&mut v);
        let mean: f32 = v.iter().sum::<f32>() / 4.0;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn concat_normalized_width() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![5.0, 6.0];
        let c = concat_normalized(&a, &b);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn cosine_properties() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert_eq!(cosine(&a, &a), 1.0);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &[0.0, 0.0]), 0.0, "zero vector safe");
        let c = vec![-1.0, 0.0];
        assert_eq!(cosine(&a, &c), -1.0);
    }
}
