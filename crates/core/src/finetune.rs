//! Cross-encoder fine-tuning (paper §III-D, Fig. 2b).
//!
//! A pair of tables is concatenated into one sequence; the BERT pooler
//! output passes through dropout and a linear layer of width `N`:
//! binary classification (`N=2`, cross-entropy), regression (`N=1`, MSE),
//! or multi-label classification (`N=classes`, BCE-with-logits) — the
//! three task types in LakeBench.

use crate::input::Sequence;
use crate::model::TabSketchFM;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tsfm_nn::{AdamW, LinearSchedule, Linear, Tape, Tensor, Var};

/// Task type of a fine-tuning dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    Binary,
    Regression,
    MultiLabel(usize),
}

impl TaskKind {
    pub fn output_dim(self) -> usize {
        match self {
            TaskKind::Binary => 2,
            TaskKind::Regression => 1,
            TaskKind::MultiLabel(n) => n,
        }
    }
}

/// Ground-truth label for one table pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Label {
    Binary(bool),
    Scalar(f32),
    MultiHot(Vec<f32>),
}

/// A labelled pair dataset (already encoded into pair sequences).
pub struct PairDataset {
    pub seqs: Vec<Sequence>,
    pub labels: Vec<Label>,
}

impl PairDataset {
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }
}

/// A TabSketchFM cross-encoder: shared encoder plus a task head. The head's
/// parameters are registered in the model's own store so one optimizer
/// updates everything.
pub struct CrossEncoder {
    pub model: TabSketchFM,
    pub task: TaskKind,
    head: Linear,
    dropout: f32,
}

impl CrossEncoder {
    pub fn new<R: Rng>(mut model: TabSketchFM, task: TaskKind, rng: &mut R) -> Self {
        let d = model.d_model();
        let head = Linear::new_xavier(&mut model.store, "cls_head", d, task.output_dim(), rng);
        CrossEncoder { model, task, head, dropout: 0.1 }
    }

    /// Logits `[B, N]` for a batch of pair sequences.
    pub fn forward(&self, tape: &mut Tape, seqs: &[Sequence]) -> Var {
        let out = self.model.forward(tape, seqs);
        let pooled = tape.dropout(out.pooled, self.dropout);
        self.head.forward(tape, &self.model.store, pooled)
    }

    /// Task loss for a batch.
    pub fn loss(&self, tape: &mut Tape, logits: Var, labels: &[Label]) -> Var {
        task_loss(tape, logits, labels, self.task)
    }

    /// Predicted raw outputs (logits / regression values), batched.
    pub fn predict(&self, seqs: &[Sequence], batch_size: usize) -> Vec<Vec<f32>> {
        let n_out = self.task.output_dim();
        let mut preds = Vec::with_capacity(seqs.len());
        for chunk in seqs.chunks(batch_size) {
            let mut tape = Tape::new(false, 0);
            let logits = self.forward(&mut tape, chunk);
            let v = tape.value(logits);
            for row in v.data().chunks(n_out) {
                preds.push(row.to_vec());
            }
        }
        preds
    }
}

/// The task-appropriate loss (shared by TabSketchFM's cross-encoder and
/// the baseline models): cross-entropy for binary, MSE for regression,
/// BCE-with-logits for multi-label.
pub fn task_loss(tape: &mut Tape, logits: Var, labels: &[Label], task: TaskKind) -> Var {
    match task {
        TaskKind::Binary => {
            let t: Vec<i64> = labels
                .iter()
                .map(|l| match l {
                    Label::Binary(b) => *b as i64,
                    other => panic!("binary task got {other:?}"),
                })
                .collect();
            tape.cross_entropy_logits(logits, t)
        }
        TaskKind::Regression => {
            let t: Vec<f32> = labels
                .iter()
                .map(|l| match l {
                    Label::Scalar(v) => *v,
                    other => panic!("regression task got {other:?}"),
                })
                .collect();
            let n = t.len();
            let target = Tensor::from_vec(vec![n, 1], t);
            tape.mse_loss(logits, target)
        }
        TaskKind::MultiLabel(classes) => {
            let mut t = Vec::with_capacity(labels.len() * classes);
            for l in labels {
                match l {
                    Label::MultiHot(v) => {
                        assert_eq!(v.len(), classes, "multi-hot width");
                        t.extend_from_slice(v);
                    }
                    other => panic!("multi-label task got {other:?}"),
                }
            }
            let target = Tensor::from_vec(vec![labels.len(), classes], t);
            tape.bce_with_logits(logits, target)
        }
    }
}

/// Fine-tuning hyper-parameters.
#[derive(Debug, Clone)]
pub struct FinetuneConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Early-stopping patience in epochs (paper uses 5).
    pub patience: usize,
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self { epochs: 8, batch_size: 8, lr: 3e-4, patience: 5, seed: 0 }
    }
}

/// Training trace of one fine-tuning run.
#[derive(Debug, Clone)]
pub struct FinetuneReport {
    pub train_losses: Vec<f32>,
    pub valid_losses: Vec<f32>,
    pub best_valid: f32,
    pub stopped_early: bool,
}

/// Fine-tune a cross-encoder on train/valid splits.
pub fn finetune(
    ce: &mut CrossEncoder,
    train: &PairDataset,
    valid: &PairDataset,
    cfg: &FinetuneConfig,
) -> FinetuneReport {
    assert_eq!(train.seqs.len(), train.labels.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let steps_per_epoch = train.len().div_ceil(cfg.batch_size).max(1);
    let total = (steps_per_epoch * cfg.epochs) as u64;
    let sched = LinearSchedule { warmup: total / 10, total };
    let mut opt = AdamW::new(cfg.lr);

    let mut report = FinetuneReport {
        train_losses: Vec::new(),
        valid_losses: Vec::new(),
        best_valid: f32::INFINITY,
        stopped_early: false,
    };
    let mut bad = 0usize;
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut step = 0u64;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let seqs: Vec<Sequence> = chunk.iter().map(|&i| train.seqs[i].clone()).collect();
            let labels: Vec<Label> = chunk.iter().map(|&i| train.labels[i].clone()).collect();
            let mut tape = Tape::new(true, cfg.seed ^ (step << 1));
            let logits = ce.forward(&mut tape, &seqs);
            let loss = ce.loss(&mut tape, logits, &labels);
            sum += tape.value(loss).item() as f64;
            batches += 1;
            let grads = tape.backward(loss);
            ce.model.store.absorb_grads(&tape, &grads);
            drop(tape);
            ce.model.store.clip_grad_norm(1.0);
            opt.step(&mut ce.model.store, sched.scale(step));
            ce.model.store.zero_grads();
            step += 1;
        }
        report.train_losses.push((sum / batches.max(1) as f64) as f32);

        let vloss = if valid.is_empty() {
            *report.train_losses.last().expect("pushed")
        } else {
            evaluate_loss(ce, valid, cfg.batch_size)
        };
        report.valid_losses.push(vloss);
        if vloss < report.best_valid - 1e-4 {
            report.best_valid = vloss;
            bad = 0;
        } else {
            bad += 1;
            if bad >= cfg.patience {
                report.stopped_early = true;
                break;
            }
        }
    }
    report
}

/// Mean task loss on a split (eval mode).
pub fn evaluate_loss(ce: &CrossEncoder, data: &PairDataset, batch_size: usize) -> f32 {
    let mut sum = 0.0f64;
    let mut batches = 0usize;
    let n = data.len();
    for start in (0..n).step_by(batch_size) {
        let end = (start + batch_size).min(n);
        let seqs = &data.seqs[start..end];
        let labels = &data.labels[start..end];
        let mut tape = Tape::new(false, 0);
        let logits = ce.forward(&mut tape, seqs);
        let loss = ce.loss(&mut tape, logits, labels);
        sum += tape.value(loss).item() as f64;
        batches += 1;
    }
    (sum / batches.max(1) as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, SketchToggle};
    use crate::input::{encode_table, pair_sequence};
    use tsfm_sketch::{SketchConfig, TableSketch};
    use tsfm_table::{Column, Table, Value};
    use tsfm_tokenizer::VocabBuilder;

    /// Tiny synthetic join task: pairs that share a key column's values are
    /// positive; sketches make this learnable without any cell text.
    fn fixture() -> (PairDataset, PairDataset, CrossEncoder) {
        let mut vb = VocabBuilder::new();
        vb.add_text("key data values table numbers");
        let vocab = vb.build(1, 100);
        let cfg = ModelConfig::tiny(vocab.len());
        let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };

        let mk_table = |id: &str, vals: Vec<&str>| {
            let mut t = Table::new(id, "table");
            t.push_column(Column::new(
                "key",
                vals.into_iter().map(|v| Value::Str(v.into())).collect(),
            ));
            t
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut seqs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            let positive = i % 2 == 0;
            let base: Vec<String> = (0..8).map(|j| format!("v{i}x{j}")).collect();
            let other: Vec<String> = if positive {
                base.clone()
            } else {
                (0..8).map(|j| format!("w{i}y{j}")).collect()
            };
            let ta = mk_table("a", base.iter().map(String::as_str).collect());
            let tb = mk_table("b", other.iter().map(String::as_str).collect());
            let ea = encode_table(
                &TableSketch::build(&ta, &scfg),
                &vocab,
                &cfg.input,
                SketchToggle::ALL,
            );
            let eb = encode_table(
                &TableSketch::build(&tb, &scfg),
                &vocab,
                &cfg.input,
                SketchToggle::ALL,
            );
            seqs.push(pair_sequence(&ea, &eb, &cfg.input));
            labels.push(Label::Binary(positive));
        }
        let valid = PairDataset {
            seqs: seqs.split_off(20),
            labels: labels.split_off(20),
        };
        let train = PairDataset { seqs, labels };
        let model = TabSketchFM::new(cfg, &mut rng);
        let ce = CrossEncoder::new(model, TaskKind::Binary, &mut rng);
        (train, valid, ce)
    }

    #[test]
    fn learns_value_overlap_from_sketches() {
        let (train, valid, mut ce) = fixture();
        let cfg = FinetuneConfig { epochs: 40, batch_size: 4, lr: 3e-3, patience: 40, seed: 1 };
        let report = finetune(&mut ce, &train, &valid, &cfg);
        let first = report.train_losses[0];
        let last = *report.train_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");

        // Accuracy on train should beat chance clearly.
        let preds = ce.predict(&train.seqs, 4);
        let mut correct = 0;
        for (p, l) in preds.iter().zip(&train.labels) {
            let yhat = (p[1] > p[0]) as i64;
            let y = match l {
                Label::Binary(b) => *b as i64,
                _ => unreachable!(),
            };
            if yhat == y {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / train.len() as f64 > 0.7,
            "train accuracy too low: {correct}/{}",
            train.len()
        );
    }

    #[test]
    fn regression_and_multilabel_losses_run() {
        let (train, _valid, ce) = fixture();
        // Rebuild as regression head on same sequences.
        let mut rng = StdRng::seed_from_u64(5);
        let vocab_size = ce.model.cfg.vocab_size;
        let model = TabSketchFM::new(ModelConfig::tiny(vocab_size), &mut rng);
        let reg = CrossEncoder::new(model, TaskKind::Regression, &mut rng);
        let mut tape = Tape::new(true, 0);
        let logits = reg.forward(&mut tape, &train.seqs[..4]);
        let labels: Vec<Label> = (0..4).map(|i| Label::Scalar(i as f32 / 4.0)).collect();
        let loss = reg.loss(&mut tape, logits, &labels);
        assert!(tape.value(loss).item().is_finite());

        let model = TabSketchFM::new(ModelConfig::tiny(vocab_size), &mut rng);
        let ml = CrossEncoder::new(model, TaskKind::MultiLabel(3), &mut rng);
        let mut tape = Tape::new(true, 0);
        let logits = ml.forward(&mut tape, &train.seqs[..2]);
        let labels = vec![
            Label::MultiHot(vec![1.0, 0.0, 1.0]),
            Label::MultiHot(vec![0.0, 0.0, 0.0]),
        ];
        let loss = ml.loss(&mut tape, logits, &labels);
        assert!(tape.value(loss).item().is_finite());
    }

    #[test]
    #[should_panic(expected = "binary task got")]
    fn wrong_label_kind_panics() {
        let (train, _valid, ce) = fixture();
        let mut tape = Tape::new(true, 0);
        let logits = ce.forward(&mut tape, &train.seqs[..1]);
        let _ = ce.loss(&mut tape, logits, &[Label::Scalar(0.5)]);
    }
}
