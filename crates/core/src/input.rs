//! Sketch-to-sequence encoding (paper §III-B, Fig. 1).
//!
//! The token stream for one table is
//! `desc₁ … desc_d [SEP] col₁tok₁ … [SEP] col₂tok₁ … [SEP] …`
//! and every token carries five aligned side channels:
//!
//! * **token position** — position *within its column name* (description
//!   tokens count within the description);
//! * **column position** — 0 for metadata tokens, 1..C for columns (the
//!   `[SEP]` closing a column belongs to that column);
//! * **column type** — 0 for metadata, otherwise string/int/float/date
//!   (ids 1–4, Fig. 1);
//! * **MinHash features** — `2k` floats: the content snapshot for metadata
//!   tokens, `[cell ‖ word]` for string columns, `[cell ‖ 0]` otherwise;
//! * **numerical-sketch features** — 16 floats (zeros for metadata).
//!
//! Sequence builders then assemble single-table (`[CLS] T [SEP]…`) or
//! cross-encoder pair (`[CLS] A … B …`, segments 0/1) inputs.

use crate::config::{InputConfig, SketchToggle};
use tsfm_sketch::numeric::NUMERIC_SKETCH_DIM;
use tsfm_sketch::TableSketch;
use tsfm_tokenizer::{Vocab, CLS, SEP};

/// One encoded table segment (no `[CLS]`; ends with a `[SEP]`).
#[derive(Debug, Clone)]
pub struct EncodedTable {
    pub ids: Vec<u32>,
    pub token_pos: Vec<u32>,
    pub col_pos: Vec<u32>,
    pub col_type: Vec<u32>,
    /// `ids.len() * 2k` MinHash features, row-major per token.
    pub minhash: Vec<f32>,
    /// `ids.len() * NUMERIC_SKETCH_DIM` features, row-major per token.
    pub numeric: Vec<f32>,
    /// Per encoded column: (column index in the sketch, token span
    /// `[start, end)` covering its name tokens, excluding the `[SEP]`).
    pub col_ranges: Vec<(usize, std::ops::Range<usize>)>,
    pub minhash_k: usize,
}

impl EncodedTable {
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Encode one table's sketch into a token segment.
pub fn encode_table(
    sketch: &TableSketch,
    vocab: &Vocab,
    cfg: &InputConfig,
    toggle: SketchToggle,
) -> EncodedTable {
    let k = sketch.content_snapshot.k();
    let mh_width = 2 * k;
    let mut enc = EncodedTable {
        ids: Vec::new(),
        token_pos: Vec::new(),
        col_pos: Vec::new(),
        col_type: Vec::new(),
        minhash: Vec::new(),
        numeric: Vec::new(),
        col_ranges: Vec::new(),
        minhash_k: k,
    };

    let content_feats: Vec<f32> = if toggle.content {
        sketch.content_features()
    } else {
        vec![0.0; mh_width]
    };
    let zero_numeric = [0.0f32; NUMERIC_SKETCH_DIM];

    // Description (metadata) tokens: column position 0 per Fig. 1 fn. 6.
    let desc_text = if sketch.description.is_empty() {
        &sketch.table_name
    } else {
        &sketch.description
    };
    let mut desc_ids = vocab.encode_text(desc_text);
    desc_ids.truncate(cfg.max_desc_tokens);
    for (pos, id) in desc_ids.iter().enumerate() {
        push_token(
            &mut enc,
            *id,
            pos.min(cfg.max_token_pos - 1) as u32,
            0,
            0,
            &content_feats,
            &zero_numeric,
        );
    }
    // [SEP] closing the metadata block.
    push_token(&mut enc, SEP, 0, 0, 0, &content_feats, &zero_numeric);

    for (ci, col) in sketch.columns.iter().take(cfg.max_cols).enumerate() {
        let col_pos = (ci + 1).min(cfg.max_cols) as u32;
        let ty = col.ty.embedding_id() as u32;
        let mh: Vec<f32> = if toggle.minhash {
            col.minhash_features()
        } else {
            vec![0.0; mh_width]
        };
        let nu: [f32; NUMERIC_SKETCH_DIM] = if toggle.numeric {
            col.numeric.to_f32_features()
        } else {
            zero_numeric
        };

        let mut name_ids = vocab.encode_text(&col.name);
        if name_ids.is_empty() {
            name_ids.push(vocab.unk());
        }
        name_ids.truncate(cfg.max_tokens_per_col);

        let start = enc.ids.len();
        for (pos, id) in name_ids.iter().enumerate() {
            push_token(
                &mut enc,
                *id,
                pos.min(cfg.max_token_pos - 1) as u32,
                col_pos,
                ty,
                &mh,
                &nu,
            );
        }
        let end = enc.ids.len();
        enc.col_ranges.push((ci, start..end));
        // The [SEP] closing a column carries that column's side channels,
        // so sketches reach the model even if the name is fully masked.
        push_token(&mut enc, SEP, 0, col_pos, ty, &mh, &nu);
    }
    enc
}

fn push_token(
    enc: &mut EncodedTable,
    id: u32,
    token_pos: u32,
    col_pos: u32,
    col_type: u32,
    mh: &[f32],
    nu: &[f32],
) {
    enc.ids.push(id);
    enc.token_pos.push(token_pos);
    enc.col_pos.push(col_pos);
    enc.col_type.push(col_type);
    enc.minhash.extend_from_slice(mh);
    enc.numeric.extend_from_slice(nu);
}

/// A fully assembled model input sequence (single table or pair).
#[derive(Debug, Clone)]
pub struct Sequence {
    pub ids: Vec<u32>,
    pub token_pos: Vec<u32>,
    pub col_pos: Vec<u32>,
    pub col_type: Vec<u32>,
    pub segment: Vec<u32>,
    pub minhash: Vec<f32>,
    pub numeric: Vec<f32>,
    pub minhash_k: usize,
    /// Column token spans, shifted to sequence coordinates:
    /// (segment, column index, token range).
    pub col_ranges: Vec<(u32, usize, std::ops::Range<usize>)>,
}

impl Sequence {
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn with_capacity(n: usize, k: usize) -> Self {
        Sequence {
            ids: Vec::with_capacity(n),
            token_pos: Vec::with_capacity(n),
            col_pos: Vec::with_capacity(n),
            col_type: Vec::with_capacity(n),
            segment: Vec::with_capacity(n),
            minhash: Vec::with_capacity(n * 2 * k),
            numeric: Vec::with_capacity(n * NUMERIC_SKETCH_DIM),
            minhash_k: k,
            col_ranges: Vec::new(),
        }
    }

    fn push_cls(&mut self, feats: &[f32]) {
        self.ids.push(CLS);
        self.token_pos.push(0);
        self.col_pos.push(0);
        self.col_type.push(0);
        self.segment.push(0);
        self.minhash.extend_from_slice(feats);
        self.numeric.extend(std::iter::repeat(0.0).take(NUMERIC_SKETCH_DIM));
    }

    /// Append an encoded table as one segment, truncating at `budget`
    /// tokens. Returns how many tokens were appended.
    fn append_segment(&mut self, enc: &EncodedTable, segment: u32, budget: usize) -> usize {
        let n = enc.len().min(budget);
        let offset = self.ids.len();
        self.ids.extend_from_slice(&enc.ids[..n]);
        self.token_pos.extend_from_slice(&enc.token_pos[..n]);
        self.col_pos.extend_from_slice(&enc.col_pos[..n]);
        self.col_type.extend_from_slice(&enc.col_type[..n]);
        self.segment.extend(std::iter::repeat(segment).take(n));
        let mh_w = 2 * enc.minhash_k;
        self.minhash.extend_from_slice(&enc.minhash[..n * mh_w]);
        self.numeric.extend_from_slice(&enc.numeric[..n * NUMERIC_SKETCH_DIM]);
        for (ci, range) in &enc.col_ranges {
            if range.end <= n {
                self.col_ranges
                    .push((segment, *ci, range.start + offset..range.end + offset));
            }
        }
        n
    }
}

/// `[CLS] table-segment` for embedding extraction and MLM pretraining.
/// The `[CLS]` token carries the content-snapshot features (it is a
/// metadata token).
pub fn single_sequence(enc: &EncodedTable, cfg: &InputConfig) -> Sequence {
    let mut seq = Sequence::with_capacity(enc.len() + 1, enc.minhash_k);
    let mh_w = 2 * enc.minhash_k;
    seq.push_cls(&enc.minhash[..mh_w.min(enc.minhash.len())]);
    seq.append_segment(enc, 0, cfg.max_seq - 1);
    seq
}

/// `[CLS] A-segment B-segment` with segment ids 0/1 — the cross-encoder
/// input of Fig. 2b. The budget is split evenly; leftover space from a
/// short A is given to B.
pub fn pair_sequence(a: &EncodedTable, b: &EncodedTable, cfg: &InputConfig) -> Sequence {
    let budget = cfg.max_seq - 1;
    let half = budget / 2;
    let a_take = a.len().min(half.max(budget.saturating_sub(b.len())));
    let mut seq = Sequence::with_capacity(cfg.max_seq, a.minhash_k);
    let mh_w = 2 * a.minhash_k;
    seq.push_cls(&a.minhash[..mh_w.min(a.minhash.len())]);
    let used = seq.append_segment(a, 0, a_take);
    seq.append_segment(b, 1, budget - used);
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_sketch::SketchConfig;
    use tsfm_table::{Column, Table, Value};
    use tsfm_tokenizer::VocabBuilder;

    fn fixture() -> (TableSketch, Vocab) {
        let mut t = Table::new("res", "Residential Properties")
            .with_description("residential properties");
        t.push_column(Column::new(
            "Reference Area",
            vec![Value::Str("Austria Vienna".into()), Value::Str("Austria Graz".into())],
        ));
        t.push_column(Column::new("Age", vec![Value::Int(10), Value::Int(55)]));
        let mut vb = VocabBuilder::new();
        vb.add_text("residential properties reference area age austria vienna graz");
        let vocab = vb.build(1, 1000);
        let sketch = TableSketch::build(&t, &SketchConfig { minhash_k: 8, ..Default::default() });
        (sketch, vocab)
    }

    #[test]
    fn layout_matches_fig1() {
        let (sketch, vocab) = fixture();
        let cfg = InputConfig::default();
        let enc = encode_table(&sketch, &vocab, &cfg, SketchToggle::ALL);

        // desc(2) SEP | reference area SEP | age SEP
        let toks: Vec<&str> = enc.ids.iter().map(|&i| vocab.token_of(i)).collect();
        assert_eq!(
            toks,
            vec!["residential", "properties", "[SEP]", "reference", "area", "[SEP]", "age", "[SEP]"]
        );
        // Token positions restart per column: "area" is position 1.
        assert_eq!(enc.token_pos[4], 1);
        // Column positions: metadata 0, first col 1, second col 2.
        assert_eq!(enc.col_pos[0], 0);
        assert_eq!(enc.col_pos[3], 1);
        assert_eq!(enc.col_pos[6], 2);
        // Column types: string=1 for col1, int=2 for col2, 0 for metadata.
        assert_eq!(enc.col_type[0], 0);
        assert_eq!(enc.col_type[3], 1);
        assert_eq!(enc.col_type[6], 2);
        // Column ranges cover name tokens only.
        assert_eq!(enc.col_ranges[0], (0, 3..5));
        assert_eq!(enc.col_ranges[1], (1, 6..7));
    }

    #[test]
    fn feature_channels_align() {
        let (sketch, vocab) = fixture();
        let cfg = InputConfig::default();
        let enc = encode_table(&sketch, &vocab, &cfg, SketchToggle::ALL);
        let mh_w = 2 * enc.minhash_k;
        assert_eq!(enc.minhash.len(), enc.len() * mh_w);
        assert_eq!(enc.numeric.len(), enc.len() * NUMERIC_SKETCH_DIM);
        // Metadata tokens carry the content snapshot (word half zero).
        let meta = &enc.minhash[..mh_w];
        assert_eq!(&meta[8..], &[0.0; 8], "content snapshot zero-pads word half");
        // The string column's word half is non-trivial.
        let col1 = &enc.minhash[3 * mh_w..4 * mh_w];
        assert!(col1[8..].iter().any(|&f| f != 0.0));
        // Metadata numeric features are zeros; Age's are not.
        assert!(enc.numeric[..NUMERIC_SKETCH_DIM].iter().all(|&f| f == 0.0));
        let age = &enc.numeric[6 * NUMERIC_SKETCH_DIM..7 * NUMERIC_SKETCH_DIM];
        assert!(age.iter().any(|&f| f != 0.0));
    }

    #[test]
    fn toggles_zero_streams() {
        let (sketch, vocab) = fixture();
        let cfg = InputConfig::default();
        let no_mh = encode_table(&sketch, &vocab, &cfg, SketchToggle::NO_MINHASH);
        let mh_w = 2 * no_mh.minhash_k;
        // Column tokens have zero minhash but metadata keeps content.
        assert!(no_mh.minhash[3 * mh_w..4 * mh_w].iter().all(|&f| f == 0.0));
        assert!(no_mh.minhash[..mh_w].iter().any(|&f| f != 0.0));

        let only_num = encode_table(&sketch, &vocab, &cfg, SketchToggle::ONLY_NUMERIC);
        assert!(only_num.minhash.iter().all(|&f| f == 0.0));
        assert!(only_num.numeric.iter().any(|&f| f != 0.0));
    }

    #[test]
    fn single_sequence_prepends_cls() {
        let (sketch, vocab) = fixture();
        let cfg = InputConfig::default();
        let enc = encode_table(&sketch, &vocab, &cfg, SketchToggle::ALL);
        let seq = single_sequence(&enc, &cfg);
        assert_eq!(seq.ids[0], CLS);
        assert_eq!(seq.len(), enc.len() + 1);
        assert_eq!(seq.col_ranges[0].2, 4..6, "ranges shifted by CLS");
        assert!(seq.segment.iter().all(|&s| s == 0));
    }

    #[test]
    fn pair_sequence_segments_and_truncation() {
        let (sketch, vocab) = fixture();
        let cfg = InputConfig::default();
        let enc = encode_table(&sketch, &vocab, &cfg, SketchToggle::ALL);
        let pair = pair_sequence(&enc, &enc, &cfg);
        assert_eq!(pair.ids[0], CLS);
        assert_eq!(pair.len(), 2 * enc.len() + 1);
        assert_eq!(pair.segment[1], 0);
        assert_eq!(*pair.segment.last().unwrap(), 1);
        // Column ranges exist for both segments.
        assert!(pair.col_ranges.iter().any(|(s, _, _)| *s == 0));
        assert!(pair.col_ranges.iter().any(|(s, _, _)| *s == 1));

        // Tight budget: both segments truncated, never exceeding max_seq.
        let tight = InputConfig { max_seq: 9, ..cfg };
        let p2 = pair_sequence(&enc, &enc, &tight);
        assert!(p2.len() <= 9);
        assert!(p2.segment.contains(&1), "B still represented");
    }

    #[test]
    fn empty_table_still_encodes() {
        let t = Table::new("e", "empty");
        let sketch = TableSketch::build(&t, &SketchConfig { minhash_k: 8, ..Default::default() });
        let mut vb = VocabBuilder::new();
        vb.add_text("empty");
        let vocab = vb.build(1, 10);
        let cfg = InputConfig::default();
        let enc = encode_table(&sketch, &vocab, &cfg, SketchToggle::ALL);
        assert!(!enc.is_empty(), "at least the metadata [SEP]");
        let seq = single_sequence(&enc, &cfg);
        assert_eq!(seq.ids[0], CLS);
    }
}
