//! TabSketchFM — the paper's primary contribution.
//!
//! Pipeline: a [`tsfm_sketch::TableSketch`] is encoded into a token
//! sequence with five aligned side channels ([`input`]), embedded by
//! summing six embedding streams and run through a BERT-style encoder
//! ([`model`]), pretrained with whole-column MLM ([`pretrain`]),
//! fine-tuned as a cross-encoder for union/join/subset tasks
//! ([`finetune`]), and finally used to extract table/column embeddings for
//! search ([`embed`]).

#![forbid(unsafe_code)]

pub mod config;
pub mod embed;
pub mod finetune;
pub mod input;
pub mod model;
pub mod pretrain;

pub use config::{InputConfig, ModelConfig, SketchToggle};
pub use embed::{column_embeddings, concat_normalized, cosine, table_embeddings, z_normalize};
pub use finetune::{
    finetune, task_loss, CrossEncoder, FinetuneConfig, FinetuneReport, Label, PairDataset,
    TaskKind,
};
pub use input::{encode_table, pair_sequence, single_sequence, EncodedTable, Sequence};
pub use model::{ModelOutput, TabSketchFM};
pub use pretrain::{
    augment_tables, mlm_examples, pretrain, MlmExample, PretrainConfig, PretrainReport,
};
