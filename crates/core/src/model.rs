//! The TabSketchFM encoder (paper §III-B, Fig. 1 right panel).
//!
//! The input embedding is the *sum of six streams*: token embeddings,
//! token-position-within-column embeddings, column-position embeddings,
//! column-type embeddings, segment embeddings (pair inputs), and linear
//! projections of the MinHash and numerical sketch vectors. The sum is
//! layer-normalized, dropped out, and fed to a BERT-style bidirectional
//! encoder.

use crate::config::ModelConfig;
use crate::input::Sequence;
use rand::Rng;
use tsfm_nn::layers::attn_bias_from_lengths;
use tsfm_nn::{
    Embedding, LayerNorm, Linear, ParamStore, Pooler, Tape, Tensor, TransformerEncoder, Var,
};
use tsfm_sketch::numeric::NUMERIC_SKETCH_DIM;
use tsfm_tokenizer::PAD;

/// Outputs of one forward pass over a batch of sequences.
pub struct ModelOutput {
    /// Final hidden states `[B, T, D]`.
    pub hidden: Var,
    /// Summed, layer-normalized input embeddings `[B, T, D]` (the layer
    /// that directly carries the sketch projections).
    pub input_embed: Var,
    /// Pooler output (tanh-transformed `[CLS]`) `[B, D]`.
    pub pooled: Var,
    /// Valid lengths per batch row.
    pub lengths: Vec<usize>,
    /// Padded sequence length `T`.
    pub t: usize,
}

/// TabSketchFM: embeddings + encoder + pooler + MLM head, owning its
/// parameter store.
pub struct TabSketchFM {
    pub cfg: ModelConfig,
    pub store: ParamStore,
    token_emb: Embedding,
    tokpos_emb: Embedding,
    colpos_emb: Embedding,
    coltype_emb: Embedding,
    segment_emb: Embedding,
    minhash_proj: Linear,
    numeric_proj: Linear,
    emb_ln: LayerNorm,
    encoder: TransformerEncoder,
    pooler: Pooler,
    mlm_head: Linear,
}

impl TabSketchFM {
    pub fn new<R: Rng>(cfg: ModelConfig, rng: &mut R) -> Self {
        let mut store = ParamStore::new();
        let d = cfg.encoder.d_model;
        let token_emb = Embedding::new(&mut store, "emb.token", cfg.vocab_size, d, rng);
        let tokpos_emb =
            Embedding::new(&mut store, "emb.token_pos", cfg.input.max_token_pos, d, rng);
        let colpos_emb =
            Embedding::new(&mut store, "emb.col_pos", cfg.input.max_cols + 1, d, rng);
        // 0 = metadata, 1..=4 column types.
        let coltype_emb = Embedding::new(&mut store, "emb.col_type", 5, d, rng);
        let segment_emb = Embedding::new(&mut store, "emb.segment", 2, d, rng);
        // Xavier scale so the sketch projections' output variance is
        // comparable to the token embeddings' — with BERT's 0.02 init the
        // sketch streams would be ~1/10 of the input signal and the model
        // could not exploit them at this training scale.
        let minhash_proj =
            Linear::new_xavier(&mut store, "emb.minhash_proj", 2 * cfg.minhash_k, d, rng);
        let numeric_proj =
            Linear::new_xavier(&mut store, "emb.numeric_proj", NUMERIC_SKETCH_DIM, d, rng);
        let emb_ln = LayerNorm::new(&mut store, "emb.ln", d);
        let encoder = TransformerEncoder::new(&mut store, "encoder", cfg.encoder.clone(), rng);
        let pooler = Pooler::new(&mut store, "pooler", d, rng);
        let mlm_head = Linear::new(&mut store, "mlm_head", d, cfg.vocab_size, rng);
        TabSketchFM {
            cfg,
            store,
            token_emb,
            tokpos_emb,
            colpos_emb,
            coltype_emb,
            segment_emb,
            minhash_proj,
            numeric_proj,
            emb_ln,
            encoder,
            pooler,
            mlm_head,
        }
    }

    pub fn d_model(&self) -> usize {
        self.cfg.encoder.d_model
    }

    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Forward a batch of [`Sequence`]s (padded to the longest).
    pub fn forward(&self, tape: &mut Tape, seqs: &[Sequence]) -> ModelOutput {
        assert!(!seqs.is_empty(), "empty batch");
        let b = seqs.len();
        let t = seqs.iter().map(Sequence::len).max().expect("non-empty");
        let mh_w = 2 * self.cfg.minhash_k;
        let lengths: Vec<usize> = seqs.iter().map(Sequence::len).collect();

        let mut ids = vec![PAD; b * t];
        let mut tokpos = vec![0u32; b * t];
        let mut colpos = vec![0u32; b * t];
        let mut coltype = vec![0u32; b * t];
        let mut segment = vec![0u32; b * t];
        let mut minhash = vec![0f32; b * t * mh_w];
        let mut numeric = vec![0f32; b * t * NUMERIC_SKETCH_DIM];
        for (bi, s) in seqs.iter().enumerate() {
            assert_eq!(s.minhash_k, self.cfg.minhash_k, "sequence sketched with wrong k");
            let n = s.len();
            ids[bi * t..bi * t + n].copy_from_slice(&s.ids);
            tokpos[bi * t..bi * t + n].copy_from_slice(&s.token_pos);
            colpos[bi * t..bi * t + n].copy_from_slice(&s.col_pos);
            coltype[bi * t..bi * t + n].copy_from_slice(&s.col_type);
            segment[bi * t..bi * t + n].copy_from_slice(&s.segment);
            minhash[(bi * t) * mh_w..(bi * t + n) * mh_w].copy_from_slice(&s.minhash);
            numeric[(bi * t) * NUMERIC_SKETCH_DIM..(bi * t + n) * NUMERIC_SKETCH_DIM]
                .copy_from_slice(&s.numeric);
        }

        let st = &self.store;
        let e_tok = self.token_emb.forward(tape, st, ids);
        let e_tp = self.tokpos_emb.forward(tape, st, tokpos);
        let e_cp = self.colpos_emb.forward(tape, st, colpos);
        let e_ct = self.coltype_emb.forward(tape, st, coltype);
        let e_sg = self.segment_emb.forward(tape, st, segment);
        let mh_in = tape.constant(Tensor::from_vec(vec![b * t, mh_w], minhash));
        let e_mh = self.minhash_proj.forward(tape, st, mh_in);
        let nu_in = tape.constant(Tensor::from_vec(vec![b * t, NUMERIC_SKETCH_DIM], numeric));
        let e_nu = self.numeric_proj.forward(tape, st, nu_in);

        let mut x = tape.add(e_tok, e_tp);
        x = tape.add(x, e_cp);
        x = tape.add(x, e_ct);
        x = tape.add(x, e_sg);
        x = tape.add(x, e_mh);
        x = tape.add(x, e_nu);
        let x = self.emb_ln.forward(tape, st, x);
        let x = tape.dropout(x, self.cfg.embed_dropout);
        let x3 = tape.reshape(x, vec![b, t, self.d_model()]);

        let bias = attn_bias_from_lengths(&lengths, t);
        let hidden = self.encoder.forward(tape, st, x3, &bias);
        let pooled = self.pooler.forward(tape, st, hidden);
        ModelOutput { hidden, input_embed: x3, pooled, lengths, t }
    }

    /// MLM logits `[B*T, vocab]` from hidden states.
    pub fn mlm_logits(&self, tape: &mut Tape, out: &ModelOutput, batch: usize) -> Var {
        let flat = tape.reshape(out.hidden, vec![batch * out.t, self.d_model()]);
        self.mlm_head.forward(tape, &self.store, flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SketchToggle;
    use crate::input::{encode_table, pair_sequence, single_sequence};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsfm_sketch::{SketchConfig, TableSketch};
    use tsfm_table::{Column, Table, Value};
    use tsfm_tokenizer::{Vocab, VocabBuilder};

    fn fixture() -> (Vec<Sequence>, Vocab, ModelConfig) {
        let mut vb = VocabBuilder::new();
        vb.add_text("people city age name population area country data about");
        let vocab = vb.build(1, 1000);
        let cfg = ModelConfig::tiny(vocab.len());

        let mk = |id: &str, cols: Vec<Column>| {
            let mut t = Table::new(id, format!("data about {id}"));
            for c in cols {
                t.push_column(c);
            }
            t
        };
        let t1 = mk(
            "people",
            vec![
                Column::new("name", vec![Value::Str("ann".into()), Value::Str("bob".into())]),
                Column::new("age", vec![Value::Int(30), Value::Int(40)]),
            ],
        );
        let t2 = mk(
            "city",
            vec![
                Column::new("city", vec![Value::Str("vienna".into())]),
                Column::new("population", vec![Value::Int(1_900_000)]),
            ],
        );
        let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };
        let e1 = encode_table(&TableSketch::build(&t1, &scfg), &vocab, &cfg.input, SketchToggle::ALL);
        let e2 = encode_table(&TableSketch::build(&t2, &scfg), &vocab, &cfg.input, SketchToggle::ALL);
        let seqs = vec![
            single_sequence(&e1, &cfg.input),
            single_sequence(&e2, &cfg.input),
            pair_sequence(&e1, &e2, &cfg.input),
        ];
        (seqs, vocab, cfg)
    }

    #[test]
    fn forward_shapes() {
        let (seqs, _vocab, cfg) = fixture();
        let mut rng = StdRng::seed_from_u64(0);
        let model = TabSketchFM::new(cfg, &mut rng);
        let mut tape = Tape::new(false, 0);
        let out = model.forward(&mut tape, &seqs);
        let t = seqs.iter().map(Sequence::len).max().unwrap();
        assert_eq!(tape.value(out.hidden).shape(), &[3, t, model.d_model()]);
        assert_eq!(tape.value(out.pooled).shape(), &[3, model.d_model()]);
        let logits = model.mlm_logits(&mut tape, &out, 3);
        assert_eq!(tape.value(logits).shape(), &[3 * t, model.cfg.vocab_size]);
    }

    #[test]
    fn padding_rows_do_not_change_shorter_sequences() {
        // Embedding of a sequence must be identical whether it is padded a
        // little (batched with an equal-length peer) or a lot.
        let (seqs, _vocab, cfg) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        let model = TabSketchFM::new(cfg, &mut rng);

        let solo = {
            let mut tape = Tape::new(false, 0);
            let out = model.forward(&mut tape, &seqs[..1]);
            tape.value(out.pooled).data().to_vec()
        };
        let batched = {
            let mut tape = Tape::new(false, 0);
            let out = model.forward(&mut tape, &seqs);
            tape.value(out.pooled).data()[..model.d_model()].to_vec()
        };
        for (a, b) in solo.iter().zip(&batched) {
            assert!((a - b).abs() < 1e-4, "padding leaked into valid tokens");
        }
    }

    #[test]
    fn deterministic_in_eval_mode() {
        let (seqs, _vocab, cfg) = fixture();
        let mut rng = StdRng::seed_from_u64(2);
        let model = TabSketchFM::new(cfg, &mut rng);
        let run = || {
            let mut tape = Tape::new(false, 99);
            let out = model.forward(&mut tape, &seqs);
            tape.value(out.pooled).clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parameter_count_plausible() {
        let (_seqs, vocab, cfg) = fixture();
        let mut rng = StdRng::seed_from_u64(3);
        let model = TabSketchFM::new(cfg.clone(), &mut rng);
        let d = cfg.encoder.d_model;
        // At minimum: token embedding + MLM head.
        assert!(model.num_parameters() > 2 * vocab.len() * d);
    }

    #[test]
    fn sketch_inputs_change_output() {
        // Same tokens, different sketches ⇒ different embeddings (the
        // sketches actually reach the model).
        let (_seqs, vocab, cfg) = fixture();
        let mut rng = StdRng::seed_from_u64(4);
        let model = TabSketchFM::new(cfg.clone(), &mut rng);

        let mk = |vals: Vec<i64>| {
            let mut t = Table::new("x", "data");
            t.push_column(Column::new("age", vals.into_iter().map(Value::Int).collect()));
            let scfg = SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() };
            let enc = encode_table(
                &TableSketch::build(&t, &scfg),
                &vocab,
                &cfg.input,
                SketchToggle::ALL,
            );
            single_sequence(&enc, &cfg.input)
        };
        let a = mk(vec![1, 2, 3]);
        let b = mk(vec![1000, 2000, 3000]);
        assert_eq!(a.ids, b.ids, "identical token streams");
        let embed = |s: &Sequence| {
            let mut tape = Tape::new(false, 0);
            let out = model.forward(&mut tape, std::slice::from_ref(s));
            tape.value(out.pooled).data().to_vec()
        };
        let (ea, eb) = (embed(&a), embed(&b));
        let diff: f32 = ea.iter().zip(&eb).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-3, "sketches must influence the embedding");
    }
}
