//! MLM pretraining with whole-column masking (paper §III-C, Fig. 3).
//!
//! For each table we create up to five examples, one per masked column:
//! every token of the chosen column name becomes `[MASK]` (whole-word
//! masking's tabular analogue), and description tokens are additionally
//! masked i.i.d. with the MLM probability. Tables with ≤5 columns mask
//! each column once; larger tables sample five columns so no table is
//! over-represented. Data augmentation shuffles column order (§III-C).

use crate::config::ModelConfig;
use crate::input::{encode_table, single_sequence, Sequence};
use crate::model::TabSketchFM;
use rand::seq::SliceRandom;
use rand::Rng;
use tsfm_nn::ops::IGNORE_INDEX;
use tsfm_nn::{AdamW, LinearSchedule, Tape};
use tsfm_sketch::{MinHasher, TableSketch};
use tsfm_table::Table;
use tsfm_tokenizer::{Vocab, CLS, MASK, SEP};

/// One MLM training example: a masked sequence plus per-token labels
/// (`IGNORE_INDEX` where no prediction is required).
#[derive(Debug, Clone)]
pub struct MlmExample {
    pub seq: Sequence,
    pub labels: Vec<i64>,
}

/// Pretraining hyper-parameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub mlm_prob: f64,
    /// Early-stopping patience in epochs (paper uses 5).
    pub patience: usize,
    pub seed: u64,
    /// Column-shuffled copies per table (paper creates 3 variants).
    pub augment_copies: usize,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 8,
            lr: 3e-4,
            mlm_prob: 0.15,
            patience: 5,
            seed: 0,
            augment_copies: 2,
        }
    }
}

/// Column-order augmentation: the original plus `copies` shuffled variants
/// (each gets a fresh id suffix so sketches are rebuilt, including the
/// changed content snapshot).
pub fn augment_tables<R: Rng>(tables: &[Table], copies: usize, rng: &mut R) -> Vec<Table> {
    let mut out = Vec::with_capacity(tables.len() * (copies + 1));
    for t in tables {
        out.push(t.clone());
        for c in 0..copies {
            out.push(t.shuffled_columns(rng, format!("{}#shuf{}", t.id, c)));
        }
    }
    out
}

/// Generate the Fig.-3 masking examples for one encoded table.
pub fn mlm_examples<R: Rng>(
    sketch: &TableSketch,
    vocab: &Vocab,
    model_cfg: &ModelConfig,
    mlm_prob: f64,
    rng: &mut R,
) -> Vec<MlmExample> {
    let enc = encode_table(sketch, vocab, &model_cfg.input, model_cfg.toggle);
    let base = single_sequence(&enc, &model_cfg.input);

    // Columns that survived truncation.
    let col_spans: Vec<std::ops::Range<usize>> =
        base.col_ranges.iter().map(|(_, _, r)| r.clone()).collect();
    if col_spans.is_empty() {
        return Vec::new();
    }
    let mut chosen: Vec<usize> = (0..col_spans.len()).collect();
    if col_spans.len() > 5 {
        chosen.shuffle(rng);
        chosen.truncate(5);
        chosen.sort_unstable();
    }

    let mut out = Vec::with_capacity(chosen.len());
    for &col in &chosen {
        let mut seq = base.clone();
        let mut labels = vec![IGNORE_INDEX; seq.len()];
        for i in col_spans[col].clone() {
            labels[i] = seq.ids[i] as i64;
            seq.ids[i] = MASK;
        }
        // Description tokens: everything before the first [SEP] except CLS.
        // (Index loop: the body mutates `seq.ids` while reading it.)
        #[allow(clippy::needless_range_loop)]
        for i in 0..seq.len() {
            if seq.ids[i] == SEP {
                break;
            }
            if seq.ids[i] == CLS {
                continue;
            }
            if rng.gen_bool(mlm_prob) {
                labels[i] = seq.ids[i] as i64;
                seq.ids[i] = MASK;
            }
        }
        out.push(MlmExample { seq, labels });
    }
    out
}

/// Result of a pretraining run.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    pub train_losses: Vec<f32>,
    pub valid_losses: Vec<f32>,
    pub best_valid: f32,
    pub stopped_early: bool,
    pub examples: usize,
}

/// Pretrain `model` on `tables` with MLM; `valid_frac` of examples are
/// held out for early stopping.
pub fn pretrain(
    model: &mut TabSketchFM,
    tables: &[Table],
    vocab: &Vocab,
    cfg: &PretrainConfig,
    valid_frac: f64,
) -> PretrainReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let augmented = augment_tables(tables, cfg.augment_copies, &mut rng);
    let hasher = MinHasher::new(model.cfg.minhash_k, tsfm_sketch::SketchConfig::default().seed);
    let mut examples: Vec<MlmExample> = Vec::new();
    for t in &augmented {
        let sketch = TableSketch::build_with_hasher(t, &hasher, 10_000);
        examples.extend(mlm_examples(&sketch, vocab, &model.cfg, cfg.mlm_prob, &mut rng));
    }
    examples.shuffle(&mut rng);
    let n_valid = ((examples.len() as f64 * valid_frac) as usize).min(examples.len() / 2);
    let (valid, train) = examples.split_at(n_valid);

    let steps_per_epoch = train.len().div_ceil(cfg.batch_size).max(1);
    let total = (steps_per_epoch * cfg.epochs) as u64;
    let sched = LinearSchedule { warmup: total / 10, total };
    let mut opt = AdamW::new(cfg.lr);

    let mut report = PretrainReport {
        train_losses: Vec::new(),
        valid_losses: Vec::new(),
        best_valid: f32::INFINITY,
        stopped_early: false,
        examples: examples.len(),
    };
    let mut bad_epochs = 0usize;
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut step: u64 = 0;

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let batch: Vec<Sequence> = chunk.iter().map(|&i| train[i].seq.clone()).collect();
            let mut tape = Tape::new(true, cfg.seed ^ step);
            let out = model.forward(&mut tape, &batch);
            let logits = model.mlm_logits(&mut tape, &out, batch.len());
            let labels = padded_labels(chunk.iter().map(|&i| &train[i].labels), out.t);
            let loss = tape.cross_entropy_logits(logits, labels);
            epoch_loss += tape.value(loss).item() as f64;
            batches += 1;
            let grads = tape.backward(loss);
            model.store.absorb_grads(&tape, &grads);
            drop(tape);
            model.store.clip_grad_norm(1.0);
            opt.step(&mut model.store, sched.scale(step));
            model.store.zero_grads();
            step += 1;
        }
        report.train_losses.push((epoch_loss / batches.max(1) as f64) as f32);

        let vloss = if valid.is_empty() {
            *report.train_losses.last().expect("pushed")
        } else {
            evaluate_mlm(model, valid, cfg.batch_size)
        };
        report.valid_losses.push(vloss);
        if vloss < report.best_valid - 1e-4 {
            report.best_valid = vloss;
            bad_epochs = 0;
        } else {
            bad_epochs += 1;
            if bad_epochs >= cfg.patience {
                report.stopped_early = true;
                let _ = epoch;
                break;
            }
        }
    }
    report
}

/// Mean MLM loss over a split (eval mode).
pub fn evaluate_mlm(model: &TabSketchFM, examples: &[MlmExample], batch_size: usize) -> f32 {
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for chunk in examples.chunks(batch_size) {
        let batch: Vec<Sequence> = chunk.iter().map(|e| e.seq.clone()).collect();
        let mut tape = Tape::new(false, 0);
        let out = model.forward(&mut tape, &batch);
        let logits = model.mlm_logits(&mut tape, &out, batch.len());
        let labels = padded_labels(chunk.iter().map(|e| &e.labels), out.t);
        let loss = tape.cross_entropy_logits(logits, labels);
        total += tape.value(loss).item() as f64;
        batches += 1;
    }
    (total / batches.max(1) as f64) as f32
}

fn padded_labels<'a, I: Iterator<Item = &'a Vec<i64>>>(rows: I, t: usize) -> Vec<i64> {
    let mut out = Vec::new();
    for r in rows {
        out.extend_from_slice(r);
        out.extend(std::iter::repeat(IGNORE_INDEX).take(t - r.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsfm_sketch::SketchConfig;
    use tsfm_table::{Column, Value};
    use tsfm_tokenizer::VocabBuilder;

    fn fixture_table(ncols: usize) -> Table {
        let mut t = Table::new("t", "test table about cities");
        for i in 0..ncols {
            t.push_column(Column::new(
                format!("column{i} name"),
                vec![Value::Int(i as i64), Value::Int(i as i64 + 1)],
            ));
        }
        t
    }

    fn fixture_vocab() -> Vocab {
        let mut vb = VocabBuilder::new();
        vb.add_text("test table about cities name");
        for i in 0..12 {
            vb.add_text(&format!("column{i}"));
        }
        vb.build(1, 1000)
    }

    #[test]
    fn small_tables_mask_each_column() {
        let vocab = fixture_vocab();
        let cfg = ModelConfig::tiny(vocab.len());
        let t = fixture_table(3);
        let sketch = TableSketch::build(&t, &SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(0);
        let ex = mlm_examples(&sketch, &vocab, &cfg, 0.15, &mut rng);
        assert_eq!(ex.len(), 3, "one example per column");
        for e in &ex {
            let masked = e.seq.ids.iter().filter(|&&i| i == MASK).count();
            assert!(masked >= 1);
            let labeled = e.labels.iter().filter(|&&l| l != IGNORE_INDEX).count();
            assert_eq!(
                masked, labeled,
                "every [MASK] has a label and vice versa"
            );
        }
    }

    #[test]
    fn large_tables_sample_five() {
        let vocab = fixture_vocab();
        let mut cfg = ModelConfig::tiny(vocab.len());
        cfg.input.max_cols = 12;
        let t = fixture_table(9);
        let sketch = TableSketch::build(&t, &SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(1);
        let ex = mlm_examples(&sketch, &vocab, &cfg, 0.15, &mut rng);
        assert_eq!(ex.len(), 5, "paper caps at 5 masked columns");
    }

    #[test]
    fn whole_column_masked() {
        let vocab = fixture_vocab();
        let cfg = ModelConfig::tiny(vocab.len());
        let t = fixture_table(2); // each column name is "columnI name" = 2 tokens
        let sketch = TableSketch::build(&t, &SketchConfig { minhash_k: cfg.minhash_k, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(2);
        let ex = mlm_examples(&sketch, &vocab, &cfg, 0.0, &mut rng);
        // With mlm_prob 0, masks come only from whole-column masking: both
        // tokens of exactly one column per example.
        for e in &ex {
            let masked = e.seq.ids.iter().filter(|&&i| i == MASK).count();
            assert_eq!(masked, 2, "all tokens of the column masked together");
        }
    }

    #[test]
    fn augmentation_multiplies_tables() {
        let mut rng = StdRng::seed_from_u64(3);
        let tables = vec![fixture_table(3), fixture_table(4)];
        let aug = augment_tables(&tables, 2, &mut rng);
        assert_eq!(aug.len(), 6);
        assert!(aug[1].id.contains("#shuf"));
        assert_eq!(aug[1].num_cols(), 3);
    }

    #[test]
    fn pretraining_reduces_loss() {
        let vocab = fixture_vocab();
        let cfg = ModelConfig::tiny(vocab.len());
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = TabSketchFM::new(cfg, &mut rng);
        let tables: Vec<Table> = (0..6).map(|_| fixture_table(3)).collect();
        let pcfg = PretrainConfig {
            epochs: 4,
            batch_size: 4,
            lr: 1e-3,
            augment_copies: 1,
            patience: 10,
            ..Default::default()
        };
        let report = pretrain(&mut model, &tables, &vocab, &pcfg, 0.2);
        assert!(report.examples > 0);
        let first = report.train_losses[0];
        let last = *report.train_losses.last().unwrap();
        assert!(
            last < first,
            "MLM loss should fall: {first} -> {last} ({:?})",
            report.train_losses
        );
    }
}
