//! Synthetic analogues of the eight LakeBench fine-tuning datasets
//! (paper §III-D, Table I): three union tasks, four join tasks, one
//! subset task, spanning binary classification, regression and
//! multi-label classification.

use crate::world::{overlapping_subsets, sample_indices, AnnotatedTable, DomainKind, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tsfm_core::finetune::{Label, TaskKind};
use tsfm_table::{Table, Value};

/// Train/valid/test indices into a pair list.
#[derive(Debug, Clone, Default)]
pub struct Splits {
    pub train: Vec<usize>,
    pub valid: Vec<usize>,
    pub test: Vec<usize>,
}

/// One synthetic LakeBench task: tables, labelled pairs, splits.
pub struct PairTask {
    pub name: String,
    pub task: TaskKind,
    pub tables: Vec<Table>,
    pub pairs: Vec<(usize, usize, Label)>,
    pub splits: Splits,
}

impl PairTask {
    pub fn pair_refs(&self, idxs: &[usize]) -> (Vec<(&Table, &Table)>, Vec<Label>) {
        let mut refs = Vec::with_capacity(idxs.len());
        let mut labels = Vec::with_capacity(idxs.len());
        for &i in idxs {
            let (a, b, l) = &self.pairs[i];
            refs.push((&self.tables[*a], &self.tables[*b]));
            labels.push(l.clone());
        }
        (refs, labels)
    }

    pub fn avg_rows(&self) -> f64 {
        self.tables.iter().map(|t| t.num_rows() as f64).sum::<f64>()
            / self.tables.len().max(1) as f64
    }

    pub fn avg_cols(&self) -> f64 {
        self.tables.iter().map(|t| t.num_cols() as f64).sum::<f64>()
            / self.tables.len().max(1) as f64
    }
}

fn make_splits<R: Rng>(n: usize, rng: &mut R) -> Splits {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = (n as f64 * 0.15).ceil() as usize;
    let n_valid = (n as f64 * 0.15).ceil() as usize;
    let test = idx.split_off(n - n_test);
    let valid = idx.split_off(n - n_test - n_valid);
    Splits { train: idx, valid, test }
}

/// Generic headers used by the Wiki-style tasks whose benchmark tables have
/// uninformative column names.
const GENERIC_HEADERS: [&str; 4] = ["name", "value", "code", "item"];

fn generic_headers(t: &mut Table) {
    for (i, c) in t.columns.iter_mut().enumerate() {
        c.name = GENERIC_HEADERS[i % GENERIC_HEADERS.len()].to_string();
    }
}

/// Easy binary union (TUS-SANTOS style): positives share domains *and*
/// lexically related headers, negatives come from a different topic — the
/// paper notes this task is solvable from headers alone.
pub fn gen_tus_santos(world: &World, n_pairs: usize, seed: u64) -> PairTask {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7501);
    let mut tables = Vec::new();
    let mut pairs = Vec::new();
    for i in 0..n_pairs {
        let positive = i % 2 == 0;
        let topic = rng.gen_range(0..world.cfg.topics);
        let mut ds = world.domains_of_topic(topic);
        ds.shuffle(&mut rng);
        let n_cols = rng.gen_range(2..=4.min(ds.len()));
        let rows = rng.gen_range(20..60);
        let a = world.make_table(format!("ts{i}a"), topic, &ds[..n_cols], rows, &mut rng);
        let b = if positive {
            let mut shuffled = ds[..n_cols].to_vec();
            shuffled.shuffle(&mut rng);
            world.make_table(format!("ts{i}b"), topic, &shuffled, rows, &mut rng)
        } else {
            let topic_b = (topic + 1 + rng.gen_range(0..world.cfg.topics - 1)) % world.cfg.topics;
            let mut ds_b = world.domains_of_topic(topic_b);
            ds_b.shuffle(&mut rng);
            let n_b = rng.gen_range(2..=4.min(ds_b.len()));
            world.make_table(format!("ts{i}b"), topic_b, &ds_b[..n_b], rows, &mut rng)
        };
        let ai = tables.len();
        tables.push(a.table);
        tables.push(b.table);
        pairs.push((ai, ai + 1, Label::Binary(positive)));
    }
    let splits = make_splits(pairs.len(), &mut rng);
    PairTask { name: "TUS-SANTOS".into(), task: TaskKind::Binary, tables, pairs, splits }
}

/// Hard binary union (Wiki Union style): headers are generic, positives
/// share entity domains with almost no value overlap (the Fig.-5
/// municipalities case), negatives may share homograph values. Value-aware
/// models have the advantage here.
pub fn gen_wiki_union(world: &World, n_pairs: usize, seed: u64) -> PairTask {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x817a);
    let ents = world.entity_domains();
    let mut tables = Vec::new();
    let mut pairs = Vec::new();
    for i in 0..n_pairs {
        let positive = i % 2 == 0;
        let rows = rng.gen_range(15..40);
        let d_a = ents[rng.gen_range(0..ents.len())];
        let topic_a = world.domains[d_a].topic;
        let len = match &world.domains[d_a].kind {
            DomainKind::Entity { values } => values.len(),
            _ => unreachable!(),
        };
        // Disjoint partitions of the same domain (positive) or a different
        // domain (negative).
        let (sub_a, sub_b, _, _) = overlapping_subsets(len, rows, rows, 0.05, &mut rng);
        let mk = |world: &World, id: String, topic: usize, d: usize, sub: &[u32], rng: &mut StdRng| {
            let mut t = Table::new(id.clone(), id)
                .with_description(world.description(topic, rng));
            let (col, _) = world.make_column(d, "name", rows, Some(sub), rng);
            t.push_column(col);
            // one numeric attribute column
            let nums = world.numeric_domains();
            let dn = nums[rng.gen_range(0..nums.len())];
            let (col2, _) = world.make_column(dn, "value", rows, None, rng);
            t.push_column(col2);
            t
        };
        let ta = mk(world, format!("wu{i}a"), topic_a, d_a, &sub_a, &mut rng);
        let tb = if positive {
            mk(world, format!("wu{i}b"), topic_a, d_a, &sub_b, &mut rng)
        } else {
            let d_b = loop {
                let d = ents[rng.gen_range(0..ents.len())];
                if d != d_a {
                    break d;
                }
            };
            let topic_b = world.domains[d_b].topic;
            let len_b = match &world.domains[d_b].kind {
                DomainKind::Entity { values } => values.len(),
                _ => unreachable!(),
            };
            let sub = sample_indices(len_b, rows, &mut rng);
            mk(world, format!("wu{i}b"), topic_b, d_b, &sub, &mut rng)
        };
        let (mut ta, mut tb) = (ta, tb);
        generic_headers(&mut ta);
        generic_headers(&mut tb);
        let ai = tables.len();
        tables.push(ta);
        tables.push(tb);
        pairs.push((ai, ai + 1, Label::Binary(positive)));
    }
    let splits = make_splits(pairs.len(), &mut rng);
    PairTask { name: "Wiki Union".into(), task: TaskKind::Binary, tables, pairs, splits }
}

/// Union-count regression (ECB Union style): the label is the number of
/// unionable (shared-domain) columns between the pair.
pub fn gen_ecb_union(world: &World, n_pairs: usize, seed: u64) -> PairTask {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xecb0);
    let mut tables = Vec::new();
    let mut pairs = Vec::new();
    let max_cols = 6usize;
    for i in 0..n_pairs {
        let topic = rng.gen_range(0..world.cfg.topics);
        let mut ds = world.domains_of_topic(topic);
        ds.shuffle(&mut rng);
        let n_cols = max_cols.min(ds.len());
        let shared = rng.gen_range(0..=n_cols);
        let rows = rng.gen_range(30..80);
        let a = world.make_table(format!("eu{i}a"), topic, &ds[..n_cols], rows, &mut rng);
        // B keeps `shared` of A's domains and replaces the rest with other
        // domains (other topics to avoid accidental sharing).
        let mut b_domains: Vec<usize> = ds[..shared].to_vec();
        let other_topic = (topic + 1) % world.cfg.topics;
        let mut others = world.domains_of_topic(other_topic);
        others.shuffle(&mut rng);
        b_domains.extend(others.into_iter().take(n_cols - shared));
        b_domains.shuffle(&mut rng);
        let b = world.make_table(format!("eu{i}b"), topic, &b_domains, rows, &mut rng);
        let ai = tables.len();
        tables.push(a.table);
        tables.push(b.table);
        pairs.push((ai, ai + 1, Label::Scalar(shared as f32)));
    }
    let splits = make_splits(pairs.len(), &mut rng);
    PairTask { name: "ECB Union".into(), task: TaskKind::Regression, tables, pairs, splits }
}

fn key_pair_table(
    world: &World,
    id: String,
    d: usize,
    sub: &[u32],
    rows: usize,
    extra_cols: usize,
    rng: &mut StdRng,
) -> AnnotatedTable {
    let topic = world.domains[d].topic;
    let mut t = Table::new(id.clone(), id).with_description(world.description(topic, rng));
    let mut annotations = Vec::new();
    let header = world.domains[d].header(rng);
    let (col, ann) = world.make_column(d, &header, rows, Some(sub), rng);
    t.push_column(col);
    annotations.push(ann);
    let mut ds = world.domains_of_topic(topic);
    ds.retain(|&x| x != d);
    ds.shuffle(rng);
    for &dx in ds.iter().take(extra_cols) {
        let h = world.domains[dx].header(rng);
        let (c, a) = world.make_column(dx, &h, rows, None, rng);
        t.push_column(c);
        annotations.push(a);
    }
    // The key column's position carries no semantics: shuffle so models
    // fine-tuned on these pairs do not overfit to "key is first" (the
    // search benchmarks randomize key position too).
    let mut order: Vec<usize> = (0..t.num_cols()).collect();
    order.shuffle(rng);
    let t = t.project(&order, t.id.clone());
    let annotations = order.into_iter().map(|i| annotations[i].clone()).collect();
    AnnotatedTable { table: t, annotations }
}

fn gen_overlap_regression(
    world: &World,
    name: &str,
    n_pairs: usize,
    seed: u64,
    containment: bool,
) -> PairTask {
    let mut rng = StdRng::seed_from_u64(seed ^ if containment { 0xc0de } else { 0x3acc });
    let ents = world.entity_domains();
    let mut tables = Vec::new();
    let mut pairs = Vec::new();
    for i in 0..n_pairs {
        let d = ents[rng.gen_range(0..ents.len())];
        let len = match &world.domains[d].kind {
            DomainKind::Entity { values } => values.len(),
            _ => unreachable!(),
        };
        let n_a = rng.gen_range(15..40);
        let n_b = rng.gen_range(15..40);
        let target = rng.gen_range(0.0..1.0f64);
        let (sa, sb, j, c) = overlapping_subsets(len, n_a, n_b, target, &mut rng);
        let a = key_pair_table(world, format!("ov{i}a"), d, &sa, n_a, 1, &mut rng);
        let b = key_pair_table(world, format!("ov{i}b"), d, &sb, n_b, 1, &mut rng);
        let ai = tables.len();
        tables.push(a.table);
        tables.push(b.table);
        let label = if containment { c as f32 } else { j as f32 };
        pairs.push((ai, ai + 1, Label::Scalar(label)));
    }
    let splits = make_splits(pairs.len(), &mut rng);
    PairTask { name: name.into(), task: TaskKind::Regression, tables, pairs, splits }
}

/// Jaccard regression between key columns (Wiki Jaccard style).
pub fn gen_wiki_jaccard(world: &World, n_pairs: usize, seed: u64) -> PairTask {
    gen_overlap_regression(world, "Wiki Jaccard", n_pairs, seed, false)
}

/// Containment regression: |A∩B| / |B| (Wiki Containment style).
pub fn gen_wiki_containment(world: &World, n_pairs: usize, seed: u64) -> PairTask {
    gen_overlap_regression(world, "Wiki Containment", n_pairs, seed, true)
}

/// Binary joinability (Spider-OpenData style). Negatives include the
/// paper's traps: numeric columns with overlapping *ranges* but different
/// semantics, and homograph value collisions.
pub fn gen_spider_join(world: &World, n_pairs: usize, seed: u64) -> PairTask {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5b1d);
    let ents = world.entity_domains();
    let mut tables = Vec::new();
    let mut pairs = Vec::new();
    for i in 0..n_pairs {
        let positive = i % 2 == 0;
        let d_a = ents[rng.gen_range(0..ents.len())];
        let len = match &world.domains[d_a].kind {
            DomainKind::Entity { values } => values.len(),
            _ => unreachable!(),
        };
        let n_a = rng.gen_range(20..50);
        let n_b = rng.gen_range(20..50);
        let extra = rng.gen_range(1..4);
        let (a, b) = if positive {
            let (sa, sb, _, _) = overlapping_subsets(len, n_a, n_b, 0.6, &mut rng);
            (
                key_pair_table(world, format!("sj{i}a"), d_a, &sa, n_a, extra, &mut rng),
                key_pair_table(world, format!("sj{i}b"), d_a, &sb, n_b, extra, &mut rng),
            )
        } else {
            // Different entity domain (may share homographs only).
            let d_b = loop {
                let d = ents[rng.gen_range(0..ents.len())];
                if d != d_a {
                    break d;
                }
            };
            let len_b = match &world.domains[d_b].kind {
                DomainKind::Entity { values } => values.len(),
                _ => unreachable!(),
            };
            let sa = sample_indices(len, n_a, &mut rng);
            let sb = sample_indices(len_b, n_b, &mut rng);
            (
                key_pair_table(world, format!("sj{i}a"), d_a, &sa, n_a, extra, &mut rng),
                key_pair_table(world, format!("sj{i}b"), d_b, &sb, n_b, extra, &mut rng),
            )
        };
        let ai = tables.len();
        tables.push(a.table);
        tables.push(b.table);
        pairs.push((ai, ai + 1, Label::Binary(positive)));
    }
    let splits = make_splits(pairs.len(), &mut rng);
    PairTask { name: "Spider-OpenData".into(), task: TaskKind::Binary, tables, pairs, splits }
}

/// Multi-label join-column prediction (ECB Join style): which of A's first
/// `classes` columns join with B.
pub fn gen_ecb_join(world: &World, n_pairs: usize, classes: usize, seed: u64) -> PairTask {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xecb1);
    let mut tables = Vec::new();
    let mut pairs = Vec::new();
    for i in 0..n_pairs {
        let topic = rng.gen_range(0..world.cfg.topics);
        let mut ds = world.domains_of_topic(topic);
        ds.shuffle(&mut rng);
        let n_cols = classes.min(ds.len());
        let rows = rng.gen_range(30..70);
        let a = world.make_table(format!("ej{i}a"), topic, &ds[..n_cols], rows, &mut rng);
        // B includes a random subset of A's domains ⇒ those columns join.
        let n_shared = rng.gen_range(1..=n_cols);
        let mut shared_idx: Vec<usize> = (0..n_cols).collect();
        shared_idx.shuffle(&mut rng);
        shared_idx.truncate(n_shared);
        let mut b_domains: Vec<usize> = shared_idx.iter().map(|&ci| ds[ci]).collect();
        let other = world.domains_of_topic((topic + 1) % world.cfg.topics);
        b_domains.extend(other.into_iter().take(2));
        b_domains.shuffle(&mut rng);
        let b = world.make_table(format!("ej{i}b"), topic, &b_domains, rows, &mut rng);
        let mut hot = vec![0.0f32; classes];
        for &ci in &shared_idx {
            hot[ci] = 1.0;
        }
        let ai = tables.len();
        tables.push(a.table);
        tables.push(b.table);
        pairs.push((ai, ai + 1, Label::MultiHot(hot)));
    }
    let splits = make_splits(pairs.len(), &mut rng);
    PairTask {
        name: "ECB Join".into(),
        task: TaskKind::MultiLabel(classes),
        tables,
        pairs,
        splits,
    }
}

/// Binary subset detection (CKAN Subset style): positives are genuine
/// row(+column) samples; negatives share the *exact* headers and schema
/// but draw fresh values with shifted numeric ranges — so header-only
/// models are at chance, as the paper reports, while sketches succeed.
/// Schemas are numeric-heavy (the paper's subset benchmark is ~69%
/// non-string).
pub fn gen_ckan_subset(world: &World, n_pairs: usize, seed: u64) -> PairTask {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a2);
    let nums = world.numeric_domains();
    let ents = world.entity_domains();
    let mut tables = Vec::new();
    let mut pairs = Vec::new();
    for i in 0..n_pairs {
        let positive = i % 2 == 0;
        let rows = rng.gen_range(60..160);
        let n_num = rng.gen_range(3..6).min(nums.len());
        let topic = rng.gen_range(0..world.cfg.topics);
        // Distinct domains so headers never collide (duplicate headers
        // would make the subset relation ambiguous).
        let mut num_pool = nums.clone();
        num_pool.shuffle(&mut rng);
        let mut domains = vec![ents[rng.gen_range(0..ents.len())]];
        domains.extend(num_pool.into_iter().take(n_num));
        let a = world.make_table(format!("cs{i}a"), topic, &domains, rows, &mut rng);
        let b = if positive {
            // Row sample 25–75%, sometimes also a column subset.
            let frac = [0.25, 0.5, 0.75][rng.gen_range(0..3)];
            let keep_rows = sample_indices(rows, (rows as f64 * frac) as usize, &mut rng)
                .into_iter()
                .map(|x| x as usize)
                .collect::<Vec<_>>();
            let mut t = a.table.take_rows(&keep_rows, format!("cs{i}b"));
            if rng.gen_bool(0.5) {
                let n_keep = rng.gen_range(2..=t.num_cols());
                let keep_cols: Vec<usize> = sample_indices(t.num_cols(), n_keep, &mut rng)
                    .into_iter()
                    .map(|x| x as usize)
                    .collect();
                t = t.project(&keep_cols, format!("cs{i}b"));
            }
            t
        } else {
            // Same headers/domains, fresh values, shifted numeric ranges.
            let fresh = world.make_table(format!("cs{i}b"), topic, &domains, rows, &mut rng);
            let mut t = fresh.table;
            for (ci, col) in t.columns.iter_mut().enumerate() {
                col.name = a.table.columns[ci].name.clone(); // headers identical
                for v in &mut col.values {
                    match v {
                        Value::Int(x) => *x = (*x as f64 * 1.4 + 37.0) as i64,
                        Value::Float(x) => *x = *x * 1.4 + 37.0,
                        _ => {}
                    }
                }
            }
            t
        };
        // Positive B must also share headers exactly (it does by cloning);
        // keep A's header text on B's surviving columns.
        let ai = tables.len();
        tables.push(a.table);
        tables.push(b);
        pairs.push((ai, ai + 1, Label::Binary(positive)));
    }
    let splits = make_splits(pairs.len(), &mut rng);
    PairTask { name: "CKAN Subset".into(), task: TaskKind::Binary, tables, pairs, splits }
}

/// A de-duplicated pretraining corpus of random tables (the paper's
/// CKAN/Socrata stand-in).
pub fn gen_pretrain_corpus(world: &World, n_tables: usize, seed: u64) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x93e7);
    (0..n_tables)
        .map(|i| {
            world
                .random_table(format!("pre{i}"), rng.gen_range(20..80), &mut rng)
                .table
        })
        .collect()
}

/// All eight tasks with one call (sizes tuned for CPU experiments).
pub fn gen_all_tasks(world: &World, pairs_per_task: usize, seed: u64) -> Vec<PairTask> {
    vec![
        gen_tus_santos(world, pairs_per_task, seed),
        gen_wiki_union(world, pairs_per_task, seed),
        gen_ecb_union(world, pairs_per_task, seed),
        gen_wiki_jaccard(world, pairs_per_task, seed),
        gen_wiki_containment(world, pairs_per_task, seed),
        gen_spider_join(world, pairs_per_task, seed),
        gen_ecb_join(world, pairs_per_task, 6, seed),
        gen_ckan_subset(world, pairs_per_task, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::default())
    }

    #[test]
    fn splits_partition_pairs() {
        let w = world();
        let t = gen_tus_santos(&w, 40, 1);
        let total = t.splits.train.len() + t.splits.valid.len() + t.splits.test.len();
        assert_eq!(total, t.pairs.len());
        let mut all: Vec<usize> = t
            .splits
            .train
            .iter()
            .chain(&t.splits.valid)
            .chain(&t.splits.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), t.pairs.len(), "no index duplicated");
        assert!(!t.splits.valid.is_empty());
        assert!(!t.splits.test.is_empty());
    }

    #[test]
    fn tus_santos_headers_informative() {
        let w = world();
        let t = gen_tus_santos(&w, 20, 2);
        // Positive pairs share at least one header word (possibly via
        // synonyms from the same topic pool); negatives mostly don't.
        let mut pos_share = 0;
        let mut pos_total = 0;
        for (a, b, l) in &t.pairs {
            if let Label::Binary(true) = l {
                pos_total += 1;
                let ha: std::collections::BTreeSet<&str> = t.tables[*a]
                    .columns
                    .iter()
                    .flat_map(|c| c.name.split(' '))
                    .collect();
                let hb: std::collections::BTreeSet<&str> = t.tables[*b]
                    .columns
                    .iter()
                    .flat_map(|c| c.name.split(' '))
                    .collect();
                if ha.intersection(&hb).count() > 0 {
                    pos_share += 1;
                }
            }
        }
        assert!(pos_share * 10 >= pos_total * 8, "{pos_share}/{pos_total}");
    }

    #[test]
    fn wiki_union_headers_uninformative() {
        let w = world();
        let t = gen_wiki_union(&w, 10, 3);
        for table in &t.tables {
            for c in &table.columns {
                assert!(GENERIC_HEADERS.contains(&c.name.as_str()));
            }
        }
    }

    #[test]
    fn ecb_union_labels_are_counts() {
        let w = world();
        let t = gen_ecb_union(&w, 30, 4);
        assert_eq!(t.task, TaskKind::Regression);
        let mut seen = std::collections::BTreeSet::new();
        for (_, _, l) in &t.pairs {
            match l {
                Label::Scalar(v) => {
                    assert!((0.0..=6.0).contains(v));
                    assert_eq!(v.fract(), 0.0);
                    seen.insert(*v as i64);
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(seen.len() > 2, "label variety: {seen:?}");
    }

    #[test]
    fn jaccard_labels_match_construction() {
        let w = world();
        let t = gen_wiki_jaccard(&w, 30, 5);
        let mut lo = 0;
        let mut hi = 0;
        for (_, _, l) in &t.pairs {
            match l {
                Label::Scalar(v) => {
                    assert!((0.0..=1.0).contains(v));
                    if *v < 0.3 {
                        lo += 1;
                    }
                    if *v > 0.6 {
                        hi += 1;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(lo > 0 && hi > 0, "labels span the range: lo={lo} hi={hi}");
    }

    #[test]
    fn spider_join_positive_pairs_share_values() {
        let w = world();
        let t = gen_spider_join(&w, 20, 6);
        for (a, b, l) in &t.pairs {
            // Key columns are at arbitrary positions; take the best
            // overlap across *key-like* (high-cardinality string) column
            // pairs — low-cardinality categoricals legitimately share
            // values without being joinable.
            let mut best = 0usize;
            let keyish = |c: &tsfm_table::Column| {
                c.ty == tsfm_table::ColType::Str
                    && c.rendered_values().collect::<std::collections::BTreeSet<_>>().len()
                        >= 15
            };
            for ca in t.tables[*a].columns.iter().filter(|c| keyish(c)) {
                let va: std::collections::BTreeSet<String> =
                    ca.rendered_values().collect();
                for cb in t.tables[*b].columns.iter().filter(|c| keyish(c)) {
                    let vb: std::collections::BTreeSet<String> =
                        cb.rendered_values().collect();
                    best = best.max(va.intersection(&vb).count());
                }
            }
            match l {
                Label::Binary(true) => {
                    assert!(best > 5, "positive join pair must overlap, got {best}")
                }
                Label::Binary(false) => {
                    assert!(best <= 3, "negative pair overlaps too much: {best}")
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn ecb_join_multihot_consistent() {
        let w = world();
        let t = gen_ecb_join(&w, 20, 6, 7);
        assert_eq!(t.task, TaskKind::MultiLabel(6));
        for (_, _, l) in &t.pairs {
            match l {
                Label::MultiHot(v) => {
                    assert_eq!(v.len(), 6);
                    assert!(v.contains(&1.0), "at least one join column");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn ckan_subset_properties() {
        let w = world();
        let t = gen_ckan_subset(&w, 20, 8);
        for (a, b, l) in &t.pairs {
            let ta = &t.tables[*a];
            let tb = &t.tables[*b];
            // Headers of B always appear in A (exact-header property).
            for cb in &tb.columns {
                assert!(
                    ta.columns.iter().any(|ca| ca.name == cb.name),
                    "negative/positive share header text"
                );
            }
            if let Label::Binary(true) = l {
                assert!(tb.num_rows() < ta.num_rows(), "row subset");
                // Every row string of B appears in A.
                let rows_a: std::collections::BTreeSet<String> = (0..ta.num_rows())
                    .map(|r| {
                        tb.columns
                            .iter()
                            .map(|cb| {
                                let ci = ta
                                    .columns
                                    .iter()
                                    .position(|ca| ca.name == cb.name)
                                    .unwrap();
                                ta.cell(r, ci).render()
                            })
                            .collect::<Vec<_>>()
                            .join("|")
                    })
                    .collect();
                for r in 0..tb.num_rows() {
                    let row = tb.row_string(r);
                    assert!(rows_a.contains(&row), "subset row {row:?} missing in A");
                }
            }
        }
    }

    #[test]
    fn pretrain_corpus_varied() {
        let w = world();
        let corpus = gen_pretrain_corpus(&w, 30, 9);
        assert_eq!(corpus.len(), 30);
        let distinct: std::collections::BTreeSet<String> = corpus
            .iter()
            .map(|t| {
                t.columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert!(distinct.len() > 10, "schemas vary");
    }

    #[test]
    fn all_tasks_generate() {
        let w = world();
        let tasks = gen_all_tasks(&w, 8, 10);
        assert_eq!(tasks.len(), 8);
        let names: Vec<&str> = tasks.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"Wiki Union"));
        assert!(names.contains(&"CKAN Subset"));
        for t in &tasks {
            assert!(!t.pairs.is_empty());
            assert!(t.avg_rows() > 0.0);
            assert!(t.avg_cols() >= 2.0);
        }
    }
}
