//! Synthetic data-lake generation.
//!
//! The paper's corpora (197k CKAN/Socrata tables, the LakeBench task
//! datasets, and the TUS/SANTOS/Wiki-Join/Eurostat search benchmarks) are
//! proprietary-scale downloads; this crate generates seeded synthetic
//! equivalents whose *relations* (domain identity, value overlap,
//! row/column subsetting, hard negatives) are controlled exactly — see
//! DESIGN.md's substitution table.

#![forbid(unsafe_code)]

pub mod lakebench;
pub mod searchbench;
pub mod world;

pub use lakebench::{
    gen_all_tasks, gen_ckan_subset, gen_ecb_join, gen_ecb_union, gen_pretrain_corpus,
    gen_spider_join, gen_tus_santos, gen_wiki_containment, gen_wiki_jaccard, gen_wiki_union,
    PairTask, Splits,
};
pub use searchbench::{
    eurostat_variant, gen_eurostat_subset, gen_join_search, gen_union_search, JoinSearchConfig,
    SearchBenchmark, UnionSearchConfig, EUROSTAT_VARIANTS,
};
pub use world::{
    overlapping_subsets, pseudo_word, sample_indices, AnnotatedTable, ColumnAnnotation, Domain,
    DomainKind, World, WorldConfig,
};
