//! Search benchmarks (paper §IV-C): Wiki-Join-style join search,
//! SANTOS/TUS-style union search, and the Eurostat subset-search corpus
//! built with the Fig.-7 eleven-variant recipe.

use crate::world::{overlapping_subsets, sample_indices, DomainKind, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tsfm_table::Table;

/// A table-search benchmark: corpus, queries, and gold relevant sets.
pub struct SearchBenchmark {
    pub name: String,
    pub tables: Vec<Table>,
    /// Indices into `tables` used as queries.
    pub queries: Vec<usize>,
    /// Per query: relevant corpus indices (never contains the query).
    pub gold: Vec<BTreeSet<usize>>,
    /// For join search: the key column of each table (queries are marked
    /// with a query column, §IV-C1).
    pub key_column: Option<Vec<usize>>,
}

impl SearchBenchmark {
    pub fn avg_rows(&self) -> f64 {
        self.tables.iter().map(|t| t.num_rows() as f64).sum::<f64>()
            / self.tables.len().max(1) as f64
    }

    pub fn avg_cols(&self) -> f64 {
        self.tables.iter().map(|t| t.num_cols() as f64).sum::<f64>()
            / self.tables.len().max(1) as f64
    }
}

/// Configuration for the join-search corpus.
#[derive(Debug, Clone)]
pub struct JoinSearchConfig {
    /// Joinable groups (per entity domain core).
    pub groups: usize,
    /// Tables per group sampling the shared core (gold-joinable).
    pub tables_per_group: usize,
    /// Same-domain tables with low overlap (same semantics, J < 0.5 ⇒ not
    /// gold under the paper's 0.5 threshold).
    pub low_overlap_per_group: usize,
    /// Unrelated distractor tables.
    pub distractors: usize,
    pub seed: u64,
}

impl Default for JoinSearchConfig {
    fn default() -> Self {
        Self {
            groups: 8,
            tables_per_group: 11,
            low_overlap_per_group: 4,
            distractors: 40,
            seed: 11,
        }
    }
}

/// Wiki-Join-style search: ground truth marks pairs of *sensibly* joinable
/// key columns — same entity annotation and annotation-set Jaccard > 0.5
/// (§IV-C1). Homograph distractors overlap in surface values but not in
/// entity annotation (Fig. 5's Aleppo case).
pub fn gen_join_search(world: &World, cfg: &JoinSearchConfig) -> SearchBenchmark {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ents = world.entity_domains();
    let mut tables = Vec::new();
    let mut key_column = Vec::new();
    let mut entity_sets: Vec<BTreeSet<u32>> = Vec::new();
    let mut domains: Vec<usize> = Vec::new();

    let make = |world: &World,
                    d: usize,
                    sub: &[u32],
                    rng: &mut StdRng,
                    tables: &mut Vec<Table>,
                    key_column: &mut Vec<usize>,
                    entity_sets: &mut Vec<BTreeSet<u32>>,
                    domains_v: &mut Vec<usize>| {
        let topic = world.domains[d].topic;
        let rows = sub.len();
        let id = format!("js{}", tables.len());
        let mut t =
            Table::new(id.clone(), id).with_description(world.description(topic, rng));
        let header = world.domains[d].header(rng);
        let (col, ann) = world.make_column(d, &header, rows, Some(sub), rng);
        // Key column goes at a random position among 1-2 attribute columns.
        let nums = world.numeric_domains();
        let dn = nums[rng.gen_range(0..nums.len())];
        let (col2, _) = world.make_column(dn, &world.domains[dn].header(rng), rows, None, rng);
        let key_first: bool = rng.gen_bool(0.5);
        if key_first {
            t.push_column(col);
            t.push_column(col2);
            key_column.push(0);
        } else {
            t.push_column(col2);
            t.push_column(col);
            key_column.push(1);
        }
        entity_sets.push(ann.entities);
        domains_v.push(d);
        tables.push(t);
    };

    for g in 0..cfg.groups {
        let d = ents[g % ents.len()];
        let len = match &world.domains[d].kind {
            DomainKind::Entity { values } => values.len(),
            _ => unreachable!(),
        };
        // Group core: members sample ~80% of a 44-entity core ⇒ pairwise
        // J ≈ 0.65 (graded: occasionally near the 0.5 gold threshold, so
        // approximate-overlap systems pay for estimation error).
        let core = sample_indices(len, 44.min(len), &mut rng);
        for _ in 0..cfg.tables_per_group {
            let mut s = core.clone();
            s.shuffle(&mut rng);
            s.truncate((core.len() as f64 * 0.8) as usize);
            make(
                world, d, &s, &mut rng, &mut tables, &mut key_column, &mut entity_sets,
                &mut domains,
            );
        }
        // Same-domain tables just below the threshold: J vs members ≈ 0.3.
        for _ in 0..cfg.low_overlap_per_group {
            let (_, s, _, _) = overlapping_subsets(len, core.len(), 40.min(len), 0.3, &mut rng);
            make(
                world, d, &s, &mut rng, &mut tables, &mut key_column, &mut entity_sets,
                &mut domains,
            );
        }
    }
    for _ in 0..cfg.distractors {
        let d = ents[rng.gen_range(0..ents.len())];
        let len = match &world.domains[d].kind {
            DomainKind::Entity { values } => values.len(),
            _ => unreachable!(),
        };
        let s = sample_indices(len, 30.min(len), &mut rng);
        make(
            world, d, &s, &mut rng, &mut tables, &mut key_column, &mut entity_sets,
            &mut domains,
        );
    }

    // Gold: same-domain, annotation-Jaccard > 0.5.
    let n = tables.len();
    let mut queries = Vec::new();
    let mut gold = Vec::new();
    for q in 0..n {
        let mut rel = BTreeSet::new();
        for c in 0..n {
            if c == q || domains[c] != domains[q] {
                continue;
            }
            let inter = entity_sets[q].intersection(&entity_sets[c]).count();
            let union = entity_sets[q].len() + entity_sets[c].len() - inter;
            if union > 0 && inter as f64 / union as f64 > 0.5 {
                rel.insert(c);
            }
        }
        if !rel.is_empty() {
            queries.push(q);
            gold.push(rel);
        }
    }
    SearchBenchmark {
        name: "Wiki Join".into(),
        tables,
        queries,
        gold,
        key_column: Some(key_column),
    }
}

/// Configuration for union-search corpora.
#[derive(Debug, Clone)]
pub struct UnionSearchConfig {
    pub clusters: usize,
    /// Unionable tables per cluster (SANTOS-small ≈ 10, TUS ≈ 30+).
    pub cluster_size: usize,
    pub distractors: usize,
    pub seed: u64,
}

impl UnionSearchConfig {
    pub fn santos_style() -> Self {
        Self { clusters: 8, cluster_size: 10, distractors: 30, seed: 21 }
    }

    pub fn tus_style() -> Self {
        Self { clusters: 5, cluster_size: 30, distractors: 30, seed: 22 }
    }
}

/// SANTOS/TUS-style union search: clusters of unionable tables (same
/// domain family; synonym headers, column projections ≥2, shuffled order,
/// fresh value partitions). Gold for a query is its cluster's other
/// members.
pub fn gen_union_search(world: &World, name: &str, cfg: &UnionSearchConfig) -> SearchBenchmark {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tables = Vec::new();
    let mut cluster_of: Vec<Option<usize>> = Vec::new();
    for cl in 0..cfg.clusters {
        let topic = cl % world.cfg.topics;
        let mut ds = world.domains_of_topic(topic);
        ds.shuffle(&mut rng);
        let family: Vec<usize> = ds.into_iter().take(4).collect();
        for m in 0..cfg.cluster_size {
            // Random projection of ≥2 family domains, shuffled.
            let mut proj = family.clone();
            proj.shuffle(&mut rng);
            let keep = rng.gen_range(2..=proj.len());
            proj.truncate(keep);
            let rows = rng.gen_range(20..50);
            let at = world.make_table(format!("us{cl}m{m}"), topic, &proj, rows, &mut rng);
            tables.push(at.table);
            cluster_of.push(Some(cl));
        }
    }
    for i in 0..cfg.distractors {
        let at = world.random_table(format!("usd{i}"), rng.gen_range(20..50), &mut rng);
        tables.push(at.table);
        cluster_of.push(None);
    }

    let mut queries = Vec::new();
    let mut gold = Vec::new();
    for (i, cl) in cluster_of.iter().enumerate() {
        if let Some(c) = cl {
            let rel: BTreeSet<usize> = cluster_of
                .iter()
                .enumerate()
                .filter(|(j, o)| *j != i && **o == Some(*c))
                .map(|(j, _)| j)
                .collect();
            queries.push(i);
            gold.push(rel);
        }
    }
    SearchBenchmark { name: name.into(), tables, queries, gold, key_column: None }
}

/// The Fig.-7 Eurostat recipe: 11 variants per query file.
/// `(row_frac, col_frac, shuffle_rows, shuffle_cols)`.
pub const EUROSTAT_VARIANTS: [(f64, f64, bool, bool); 11] = [
    (0.25, 0.25, false, false),
    (0.50, 0.50, false, false),
    (0.75, 0.75, false, false),
    (1.00, 0.25, false, false),
    (1.00, 0.50, false, false),
    (1.00, 0.75, false, false),
    (0.25, 1.00, false, false),
    (0.50, 1.00, false, false),
    (0.75, 1.00, false, false),
    (1.00, 1.00, false, true),  // shuffle columns
    (1.00, 1.00, true, false),  // shuffle rows
];

/// Build one subset variant of a table.
pub fn eurostat_variant<R: Rng>(
    base: &Table,
    variant: (f64, f64, bool, bool),
    new_id: String,
    rng: &mut R,
) -> Table {
    let (rf, cf, shuf_rows, shuf_cols) = variant;
    let mut t = base.clone();
    t.id = new_id.clone();
    if cf < 1.0 {
        let keep = ((t.num_cols() as f64 * cf).round() as usize).max(1);
        let mut cols: Vec<usize> = sample_indices(t.num_cols(), keep, rng)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        cols.sort_unstable();
        t = t.project(&cols, new_id.clone());
    }
    if rf < 1.0 {
        let keep = ((t.num_rows() as f64 * rf).round() as usize).max(1);
        let mut rows: Vec<usize> = sample_indices(t.num_rows(), keep, rng)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        rows.sort_unstable();
        t = t.take_rows(&rows, new_id.clone());
    }
    if shuf_rows {
        t = t.shuffled_rows(rng, new_id.clone());
    }
    if shuf_cols {
        t = t.shuffled_columns(rng, new_id);
    }
    t
}

/// Eurostat-style subset search corpus: every query table plus its 11
/// variants; gold for a query is exactly its variants.
pub fn gen_eurostat_subset(world: &World, n_queries: usize, seed: u64) -> SearchBenchmark {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe505);
    let nums = world.numeric_domains();
    let ents = world.entity_domains();
    let dates: Vec<usize> = world
        .domains
        .iter()
        .filter(|d| matches!(d.kind, DomainKind::Date { .. }))
        .map(|d| d.id)
        .collect();
    let mut tables = Vec::new();
    let mut queries = Vec::new();
    let mut gold = Vec::new();
    for q in 0..n_queries {
        // Eurostat-ish schema: heavy on numerics and dates (Table I:
        // 64.6% string is for values incl. codes; we keep ~1/3 strings).
        let topic = rng.gen_range(0..world.cfg.topics);
        let mut domains = vec![ents[rng.gen_range(0..ents.len())]];
        for _ in 0..4 {
            domains.push(nums[rng.gen_range(0..nums.len())]);
        }
        if !dates.is_empty() {
            domains.push(dates[rng.gen_range(0..dates.len())]);
        }
        let rows = rng.gen_range(60..120);
        let base = world.make_table(format!("es{q}"), topic, &domains, rows, &mut rng);
        let qi = tables.len();
        tables.push(base.table);
        let mut rel = BTreeSet::new();
        for (vi, v) in EUROSTAT_VARIANTS.iter().enumerate() {
            let id = format!("es{q}v{vi}");
            let vt = eurostat_variant(&tables[qi], *v, id, &mut rng);
            rel.insert(tables.len());
            tables.push(vt);
        }
        queries.push(qi);
        gold.push(rel);
    }
    SearchBenchmark { name: "Eurostat Subset".into(), tables, queries, gold, key_column: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::default())
    }

    #[test]
    fn join_search_gold_by_annotation() {
        let w = world();
        let b = gen_join_search(&w, &JoinSearchConfig::default());
        assert!(!b.queries.is_empty());
        assert_eq!(b.queries.len(), b.gold.len());
        let keys = b.key_column.as_ref().unwrap();
        assert_eq!(keys.len(), b.tables.len());
        for (qi, rel) in b.queries.iter().zip(&b.gold) {
            assert!(!rel.contains(qi), "query never its own gold");
            assert!(!rel.is_empty());
        }
        // Group members are mutually gold: first group's tables overlap.
        let cfg = JoinSearchConfig::default();
        let g0: Vec<usize> = (0..cfg.tables_per_group).collect();
        for &i in &g0 {
            if let Some(pos) = b.queries.iter().position(|&q| q == i) {
                for &j in &g0 {
                    if i != j {
                        assert!(b.gold[pos].contains(&j), "{i} should match {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn join_search_low_overlap_excluded() {
        let w = world();
        let cfg = JoinSearchConfig::default();
        let b = gen_join_search(&w, &cfg);
        // Low-overlap tables (indices right after each group's members)
        // must not be gold for group members.
        let first_low = cfg.tables_per_group; // first group's low-overlap start
        if let Some(pos) = b.queries.iter().position(|&q| q == 0) {
            for lo in first_low..first_low + cfg.low_overlap_per_group {
                assert!(
                    !b.gold[pos].contains(&lo),
                    "low-overlap table {lo} must fail the 0.5 threshold"
                );
            }
        }
    }

    #[test]
    fn union_search_clusters() {
        let w = world();
        let cfg = UnionSearchConfig::santos_style();
        let b = gen_union_search(&w, "SANTOS", &cfg);
        assert_eq!(b.queries.len(), cfg.clusters * cfg.cluster_size);
        for rel in &b.gold {
            assert_eq!(rel.len(), cfg.cluster_size - 1);
        }
        assert_eq!(b.tables.len(), cfg.clusters * cfg.cluster_size + cfg.distractors);
    }

    #[test]
    fn eurostat_variant_recipe() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(3);
        let base = w.random_table("b", 40, &mut rng).table;
        let quarter = eurostat_variant(&base, (0.25, 1.0, false, false), "v".into(), &mut rng);
        assert_eq!(quarter.num_rows(), 10);
        assert_eq!(quarter.num_cols(), base.num_cols());
        let cols = eurostat_variant(&base, (1.0, 0.5, false, false), "v".into(), &mut rng);
        assert_eq!(cols.num_rows(), 40);
        assert_eq!(cols.num_cols(), (base.num_cols() as f64 * 0.5).round() as usize);
        let shuf = eurostat_variant(&base, (1.0, 1.0, true, false), "v".into(), &mut rng);
        assert_eq!(shuf.num_rows(), base.num_rows());
    }

    #[test]
    fn eurostat_benchmark_shape() {
        let w = world();
        let b = gen_eurostat_subset(&w, 4, 5);
        assert_eq!(b.queries.len(), 4);
        assert_eq!(b.tables.len(), 4 * 12, "query + 11 variants each");
        for rel in &b.gold {
            assert_eq!(rel.len(), 11);
        }
    }

    #[test]
    fn eurostat_variants_are_true_subsets() {
        let w = world();
        let b = gen_eurostat_subset(&w, 2, 6);
        for (q, rel) in b.queries.iter().zip(&b.gold) {
            let base = &b.tables[*q];
            for &v in rel {
                let vt = &b.tables[v];
                assert!(vt.num_rows() <= base.num_rows());
                assert!(vt.num_cols() <= base.num_cols());
                for c in &vt.columns {
                    assert!(
                        base.columns.iter().any(|bc| bc.name == c.name),
                        "variant col {} missing from base",
                        c.name
                    );
                }
            }
        }
    }
}
