//! The synthetic world: topics, semantic domains, and table generation.
//!
//! The paper's datasets are defined by *relations between tables* (shared
//! semantic domains, value overlap, row/column subsetting). This module
//! generates a world in which those relations are controlled exactly:
//!
//! * **topics** own pools of pseudo-words; domain names, synonyms, table
//!   descriptions and string values draw from their topic's pool, so
//!   lexical similarity correlates with semantic relatedness (the property
//!   SBERT exploits in the paper);
//! * **domains** are typed value spaces (entity keys, categoricals,
//!   numerics, dates). Columns annotated with the same domain are
//!   semantically unionable/joinable; numeric domains from different
//!   topics may still overlap in *range* (the paper's "people's Age vs
//!   students' marks" trap);
//! * **homographs** inject identical surface strings into entity domains
//!   of different topics (the paper's "Aleppo the meteorite vs Aleppo the
//!   city" trap, Fig. 5).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use tsfm_table::{Column, Table, Value};

/// Kind of values a domain produces.
#[derive(Debug, Clone)]
pub enum DomainKind {
    /// High-cardinality string keys (joinable). `values[i]` is entity `i`.
    Entity { values: Vec<String> },
    /// Low-cardinality strings sampled with repetition.
    Categorical { values: Vec<String> },
    /// Numbers, uniform over `[lo, hi]`; integers if `integer`.
    Numeric { lo: f64, hi: f64, integer: bool },
    /// Unix timestamps, uniform over `[start, end]`.
    Date { start: i64, end: i64 },
}

impl DomainKind {
    pub fn is_string(&self) -> bool {
        matches!(self, DomainKind::Entity { .. } | DomainKind::Categorical { .. })
    }
}

/// A semantic domain: a named, typed value space.
#[derive(Debug, Clone)]
pub struct Domain {
    pub id: usize,
    pub topic: usize,
    /// Canonical column header.
    pub name: String,
    /// Alternative headers used by unionable partners.
    pub synonyms: Vec<String>,
    pub kind: DomainKind,
}

impl Domain {
    /// Pick a header: canonical or one of the synonyms.
    pub fn header<R: Rng>(&self, rng: &mut R) -> String {
        let i = rng.gen_range(0..=self.synonyms.len());
        if i == 0 {
            self.name.clone()
        } else {
            self.synonyms[i - 1].clone()
        }
    }
}

/// Ground-truth annotation of one generated column.
#[derive(Debug, Clone)]
pub struct ColumnAnnotation {
    pub domain: usize,
    /// For entity domains: which entity ids this column contains.
    pub entities: BTreeSet<u32>,
}

/// A generated table plus its ground truth.
#[derive(Debug, Clone)]
pub struct AnnotatedTable {
    pub table: Table,
    pub annotations: Vec<ColumnAnnotation>,
}

/// World-generation parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub topics: usize,
    pub domains_per_topic: usize,
    pub words_per_topic: usize,
    pub entities_per_domain: usize,
    /// Surface strings shared between entity domains of different topics.
    pub homographs: usize,
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            topics: 6,
            domains_per_topic: 6,
            words_per_topic: 24,
            entities_per_domain: 120,
            homographs: 8,
            seed: 7,
        }
    }
}

/// The generated world.
pub struct World {
    pub cfg: WorldConfig,
    pub topic_words: Vec<Vec<String>>,
    pub domains: Vec<Domain>,
}

const SYLLABLES: [&str; 24] = [
    "ba", "do", "ri", "ka", "lu", "me", "no", "pa", "se", "ti", "vo", "zu", "fa", "ge", "hi",
    "jo", "ku", "la", "mi", "ne", "or", "pu", "ra", "ste",
];

/// A pronounceable pseudo-word from 2–3 syllables.
pub fn pseudo_word<R: Rng>(rng: &mut R) -> String {
    let n = rng.gen_range(2..=3);
    let mut w = String::new();
    for _ in 0..n {
        w.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    w
}

impl World {
    pub fn generate(cfg: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Topic word pools (globally deduplicated so topics stay distinct).
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut topic_words: Vec<Vec<String>> = Vec::with_capacity(cfg.topics);
        for _ in 0..cfg.topics {
            let mut pool = Vec::with_capacity(cfg.words_per_topic);
            while pool.len() < cfg.words_per_topic {
                let w = pseudo_word(&mut rng);
                if seen.insert(w.clone()) {
                    pool.push(w);
                }
            }
            topic_words.push(pool);
        }

        // Homograph strings shared across entity domains.
        let homographs: Vec<String> =
            (0..cfg.homographs).map(|i| format!("{}{}", pseudo_word(&mut rng), i)).collect();

        let mut domains = Vec::new();
        let mut used_entities: BTreeSet<String> = BTreeSet::new();
        for (topic, pool) in topic_words.iter().enumerate().take(cfg.topics) {
            for d in 0..cfg.domains_per_topic {
                let id = domains.len();
                let base = pool[d % pool.len()].clone();
                // Rotate through kinds so every topic gets a mix:
                // entity, categorical, numeric(int), numeric(float), date, entity…
                let kind = match d % 5 {
                    0 | 4 => {
                        // Entity strings must be globally unique so that the
                        // *only* surface strings shared across entity domains
                        // are the deliberately planted homographs below.
                        let mut values: Vec<String> = Vec::with_capacity(cfg.entities_per_domain);
                        for i in 0..cfg.entities_per_domain {
                            // Bounded retries: tiny word pools can exhaust the
                            // "w1 w2" space, so fall back to a domain-id tag
                            // that is unique by construction.
                            let mut v = None;
                            for _ in 0..64 {
                                let w1 = &pool[rng.gen_range(0..pool.len())];
                                let w2 = &pool[rng.gen_range(0..pool.len())];
                                let cand = format!("{w1} {w2} {i:03}");
                                if used_entities.insert(cand.clone()) {
                                    v = Some(cand);
                                    break;
                                }
                            }
                            values.push(v.unwrap_or_else(|| {
                                let cand = format!("{base} d{id} {i:03}");
                                used_entities.insert(cand.clone());
                                cand
                            }));
                        }
                        // Plant homographs into every entity domain.
                        for (hi, h) in homographs.iter().enumerate() {
                            let slot = (hi * 7 + id) % values.len();
                            values[slot] = h.clone();
                        }
                        DomainKind::Entity { values }
                    }
                    1 => {
                        let n = rng.gen_range(5..12);
                        let values = (0..n)
                            .map(|_| pool[rng.gen_range(0..pool.len())].clone())
                            .collect::<BTreeSet<_>>()
                            .into_iter()
                            .collect();
                        DomainKind::Categorical { values }
                    }
                    2 => {
                        let lo = rng.gen_range(0..50) as f64;
                        let hi = lo + rng.gen_range(20..200) as f64;
                        DomainKind::Numeric { lo, hi, integer: true }
                    }
                    3 => {
                        let lo = rng.gen_range(-10.0..10.0);
                        let hi = lo + rng.gen_range(1.0..100.0);
                        DomainKind::Numeric { lo, hi, integer: false }
                    }
                    _ => unreachable!(),
                };
                let suffix = match &kind {
                    DomainKind::Entity { .. } => "name",
                    DomainKind::Categorical { .. } => "type",
                    DomainKind::Numeric { integer: true, .. } => "count",
                    DomainKind::Numeric { .. } => "rate",
                    DomainKind::Date { .. } => "date",
                };
                // `d % 5 == 4` is a date slot for some topics instead:
                let (kind, suffix) = if d % 5 == 4 && topic % 2 == 0 {
                    (
                        DomainKind::Date {
                            start: 946_684_800,            // 2000-01-01
                            end: 946_684_800 + 86_400 * 9_000,
                        },
                        "date",
                    )
                } else {
                    (kind, suffix)
                };
                let name = format!("{base} {suffix}");
                let synonyms = (0..2)
                    .map(|_| {
                        format!("{} {suffix}", pool[rng.gen_range(0..pool.len())])
                    })
                    .filter(|s| *s != name)
                    .collect();
                domains.push(Domain { id, topic, name, synonyms, kind });
            }
        }
        World { cfg, topic_words, domains }
    }

    pub fn domains_of_topic(&self, topic: usize) -> Vec<usize> {
        self.domains.iter().filter(|d| d.topic == topic).map(|d| d.id).collect()
    }

    pub fn entity_domains(&self) -> Vec<usize> {
        self.domains
            .iter()
            .filter(|d| matches!(d.kind, DomainKind::Entity { .. }))
            .map(|d| d.id)
            .collect()
    }

    pub fn numeric_domains(&self) -> Vec<usize> {
        self.domains
            .iter()
            .filter(|d| matches!(d.kind, DomainKind::Numeric { .. }))
            .map(|d| d.id)
            .collect()
    }

    /// Generate a table description from a topic's word pool.
    pub fn description<R: Rng>(&self, topic: usize, rng: &mut R) -> String {
        let pool = &self.topic_words[topic];
        let n = rng.gen_range(2..5);
        let words: Vec<&str> =
            (0..n).map(|_| pool[rng.gen_range(0..pool.len())].as_str()).collect();
        format!("data about {}", words.join(" "))
    }

    /// Generate one column of `rows` values for `domain`. For entity
    /// domains, `entity_subset` (indices into the domain's value list)
    /// fixes exactly which entities appear.
    pub fn make_column<R: Rng>(
        &self,
        domain_id: usize,
        header: &str,
        rows: usize,
        entity_subset: Option<&[u32]>,
        rng: &mut R,
    ) -> (Column, ColumnAnnotation) {
        let domain = &self.domains[domain_id];
        let mut entities = BTreeSet::new();
        let values: Vec<Value> = match &domain.kind {
            DomainKind::Entity { values } => {
                let ids: Vec<u32> = match entity_subset {
                    Some(s) => s.to_vec(),
                    None => sample_indices(values.len(), rows.min(values.len()), rng),
                };
                entities.extend(ids.iter().copied());
                (0..rows)
                    .map(|i| {
                        let id = ids[i % ids.len()];
                        Value::Str(values[id as usize].clone())
                    })
                    .collect()
            }
            DomainKind::Categorical { values } => (0..rows)
                .map(|_| Value::Str(values[rng.gen_range(0..values.len())].clone()))
                .collect(),
            DomainKind::Numeric { lo, hi, integer } => (0..rows)
                .map(|_| {
                    let v = rng.gen_range(*lo..=*hi);
                    if *integer {
                        Value::Int(v.round() as i64)
                    } else {
                        Value::Float((v * 100.0).round() / 100.0)
                    }
                })
                .collect(),
            DomainKind::Date { start, end } => (0..rows)
                .map(|_| Value::Date(rng.gen_range(*start..=*end) / 86_400 * 86_400))
                .collect(),
        };
        (
            Column::new(header, values),
            ColumnAnnotation { domain: domain_id, entities },
        )
    }

    /// Generate a table over `domain_ids` (headers sampled canonically or
    /// from synonyms; entity columns get fresh random subsets).
    pub fn make_table<R: Rng>(
        &self,
        id: impl Into<String>,
        topic: usize,
        domain_ids: &[usize],
        rows: usize,
        rng: &mut R,
    ) -> AnnotatedTable {
        let id = id.into();
        let mut table = Table::new(id.clone(), id).with_description(self.description(topic, rng));
        let mut annotations = Vec::with_capacity(domain_ids.len());
        for &d in domain_ids {
            let header = self.domains[d].header(rng);
            let (col, ann) = self.make_column(d, &header, rows, None, rng);
            table.push_column(col);
            annotations.push(ann);
        }
        AnnotatedTable { table, annotations }
    }

    /// A random table: random topic, 2–6 domains of that topic.
    pub fn random_table<R: Rng>(&self, id: impl Into<String>, rows: usize, rng: &mut R) -> AnnotatedTable {
        let topic = rng.gen_range(0..self.cfg.topics);
        let mut ds = self.domains_of_topic(topic);
        ds.shuffle(rng);
        let n = rng.gen_range(2..=ds.len().min(6));
        ds.truncate(n);
        self.make_table(id, topic, &ds, rows, rng)
    }
}

/// Sample `n` distinct indices from `0..len`.
pub fn sample_indices<R: Rng>(len: usize, n: usize, rng: &mut R) -> Vec<u32> {
    let mut all: Vec<u32> = (0..len as u32).collect();
    all.shuffle(rng);
    all.truncate(n.min(len));
    all
}

/// Sample two entity-id sets with a target Jaccard similarity.
/// Returns `(a_ids, b_ids, exact_jaccard, exact_containment_of_b_in_a)`.
pub fn overlapping_subsets<R: Rng>(
    len: usize,
    n_a: usize,
    n_b: usize,
    jaccard: f64,
    rng: &mut R,
) -> (Vec<u32>, Vec<u32>, f64, f64) {
    let n_a = n_a.min(len);
    let n_b = n_b.min(len);
    // J = s / (n_a + n_b - s) ⇒ s = J (n_a + n_b) / (1 + J)
    let mut s = ((jaccard * (n_a + n_b) as f64) / (1.0 + jaccard)).round() as usize;
    s = s.min(n_a).min(n_b);
    // Ensure the union fits in the domain.
    let union = n_a + n_b - s;
    let s = if union > len { n_a + n_b - len } else { s };
    let pool = sample_indices(len, n_a + n_b - s, rng);
    let a: Vec<u32> = pool[..n_a].to_vec();
    let mut b: Vec<u32> = pool[..s].to_vec(); // shared prefix
    b.extend_from_slice(&pool[n_a..n_a + (n_b - s)]);
    let exact_j = s as f64 / (n_a + n_b - s) as f64;
    let exact_c = s as f64 / n_b as f64;
    (a, b, exact_j, exact_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::default())
    }

    #[test]
    fn world_shape() {
        let w = world();
        assert_eq!(w.domains.len(), w.cfg.topics * w.cfg.domains_per_topic);
        assert!(!w.entity_domains().is_empty());
        assert!(!w.numeric_domains().is_empty());
        for d in &w.domains {
            assert!(!d.name.is_empty());
        }
    }

    #[test]
    fn deterministic() {
        let a = World::generate(WorldConfig::default());
        let b = World::generate(WorldConfig::default());
        assert_eq!(a.domains.len(), b.domains.len());
        for (x, y) in a.domains.iter().zip(&b.domains) {
            assert_eq!(x.name, y.name);
        }
        let c = World::generate(WorldConfig { seed: 99, ..Default::default() });
        let diff = a.domains.iter().zip(&c.domains).filter(|(x, y)| x.name != y.name).count();
        assert!(diff > 0, "different seeds give different worlds");
    }

    #[test]
    fn homographs_shared_across_entity_domains() {
        let w = world();
        let ents = w.entity_domains();
        assert!(ents.len() >= 2);
        let vals = |d: usize| -> BTreeSet<String> {
            match &w.domains[d].kind {
                DomainKind::Entity { values } => values.iter().cloned().collect(),
                _ => unreachable!(),
            }
        };
        let inter: Vec<String> =
            vals(ents[0]).intersection(&vals(ents[1])).cloned().collect();
        assert!(
            !inter.is_empty(),
            "entity domains must share homograph surface strings"
        );
        assert!(inter.len() <= w.cfg.homographs);
    }

    #[test]
    fn make_table_annotations_align() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(1);
        let ds = w.domains_of_topic(0);
        let at = w.make_table("t0", 0, &ds[..3], 40, &mut rng);
        assert_eq!(at.table.num_cols(), 3);
        assert_eq!(at.annotations.len(), 3);
        assert_eq!(at.table.num_rows(), 40);
        for (ci, ann) in at.annotations.iter().enumerate() {
            assert_eq!(ann.domain, ds[ci]);
        }
    }

    #[test]
    fn entity_columns_honor_subset() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let d = w.entity_domains()[0];
        let subset: Vec<u32> = vec![1, 5, 9];
        let (col, ann) = w.make_column(d, "h", 30, Some(&subset), &mut rng);
        assert_eq!(ann.entities, subset.iter().copied().collect());
        // All values come from the subset.
        let allowed: BTreeSet<String> = match &w.domains[d].kind {
            DomainKind::Entity { values } => {
                subset.iter().map(|&i| values[i as usize].clone()).collect()
            }
            _ => unreachable!(),
        };
        for v in col.rendered_values() {
            assert!(allowed.contains(&v));
        }
    }

    #[test]
    fn overlapping_subsets_hit_target() {
        let mut rng = StdRng::seed_from_u64(3);
        for target in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let (a, b, j, c) = overlapping_subsets(200, 40, 40, target, &mut rng);
            assert_eq!(a.len(), 40);
            assert_eq!(b.len(), 40);
            assert!((j - target).abs() < 0.06, "target {target} got {j}");
            assert!((0.0..=1.0).contains(&c));
            // No duplicates within a set.
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            assert_eq!(sa.len(), a.len());
        }
    }

    #[test]
    fn typed_domains_produce_typed_columns() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(4);
        for d in &w.domains {
            let (col, _) = w.make_column(d.id, "h", 20, None, &mut rng);
            use tsfm_table::ColType;
            match &d.kind {
                DomainKind::Entity { .. } | DomainKind::Categorical { .. } => {
                    assert_eq!(col.ty, ColType::Str, "{}", d.name)
                }
                DomainKind::Numeric { integer: true, .. } => {
                    assert_eq!(col.ty, ColType::Int, "{}", d.name)
                }
                DomainKind::Numeric { .. } => assert_eq!(col.ty, ColType::Float, "{}", d.name),
                DomainKind::Date { .. } => assert_eq!(col.ty, ColType::Date, "{}", d.name),
            }
        }
    }

    #[test]
    fn random_tables_vary() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(5);
        let a = w.random_table("a", 20, &mut rng);
        let b = w.random_table("b", 20, &mut rng);
        assert!(a.table.num_cols() >= 2);
        let names_a: Vec<&str> = a.table.columns.iter().map(|c| c.name.as_str()).collect();
        let names_b: Vec<&str> = b.table.columns.iter().map(|c| c.name.as_str()).collect();
        assert_ne!(names_a, names_b);
    }
}
