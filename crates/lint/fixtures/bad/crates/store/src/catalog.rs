pub const MANIFEST_MAGIC: &[u8; 8] = b"TSFMAAA1";
pub const SHARD_MAGIC: &[u8; 8] = b"TSFMAAA3";

use std::fs::{self, File};
use std::path::Path;

// Raw write primitives in store library code: both bypass the durable
// commit protocol and must fire `durable-write-required`.
pub fn write_manifest(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    fs::write(path, bytes)
}

pub fn create_segment(path: &Path) -> std::io::Result<File> {
    File::create(path)
}
