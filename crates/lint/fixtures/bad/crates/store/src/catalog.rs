pub const MANIFEST_MAGIC: &[u8; 8] = b"TSFMAAA1";
