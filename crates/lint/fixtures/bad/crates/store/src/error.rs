#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    Corrupt { format: &'static str, detail: String },
    InvalidRequest(String),
    Internal(String),
}
