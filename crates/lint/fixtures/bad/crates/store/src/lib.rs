// Seeded-violation corpus: every line below marked BAD must produce a
// finding. The integration tests assert each one by rule name and line.

pub mod catalog;
pub mod error;
pub mod ser;
pub mod wire;

pub fn read_len(bytes: &[u8]) -> usize {
    let head: [u8; 4] = bytes[..4].try_into().unwrap(); // BAD: no-unwrap-in-lib
    u32::from_le_bytes(head) as usize
}

pub fn must_parse(s: &str) -> i64 {
    s.parse().expect("caller checked") // BAD: no-unwrap-in-lib
}

pub fn giving_up() {
    panic!("unrecoverable"); // BAD: no-unwrap-in-lib
}

pub fn fire_and_forget() {
    std::thread::spawn(|| {}); // BAD: no-spawn-outside-pool
}

pub fn raw_read(p: *const u8) -> u8 {
    unsafe { *p } // BAD: unsafe-needs-safety-comment
}

pub fn quietly_suppressed(s: &str) -> i64 {
    // tsfm_lint: allow(no-unwrap-in-lib)
    s.parse().unwrap() // BAD: bare allow does not suppress
}

pub fn misspelled_rule(s: &str) -> i64 {
    // tsfm_lint: allow(no-unwraps-in-lib, "typo in the rule name")
    s.parse().unwrap() // BAD: unknown rule, so the unwrap still fires too
}
