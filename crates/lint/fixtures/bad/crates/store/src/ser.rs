// BAD: format-magic-once — a second module defining TSFM magics for the
// same crate (catalog.rs ties on definition count and comes first
// lexicographically, so it is canonical and both of these are flagged).
pub const SEGMENT_MAGIC: &[u8; 8] = b"TSFMAAA2";
pub const ARENA_MAGIC: &[u8; 8] = b"TSFMAAA4";
