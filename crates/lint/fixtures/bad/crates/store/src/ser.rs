// BAD: format-magic-once — a second module defining a TSFM magic for the
// same crate (catalog.rs came first lexicographically, so this one is
// flagged).
pub const SEGMENT_MAGIC: &[u8; 8] = b"TSFMAAA2";
