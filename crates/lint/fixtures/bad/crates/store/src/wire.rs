use crate::error::StoreError;

// BAD: wire-error-taxonomy-coverage — InvalidRequest and Internal never
// reach the wire.
pub fn error_json(err: &StoreError) -> String {
    match err {
        StoreError::Io(e) => format!("{{\"kind\":\"io\",\"detail\":\"{e}\"}}"),
        StoreError::Corrupt { format, detail } => {
            format!("{{\"kind\":\"corrupt\",\"format\":\"{format}\",\"detail\":\"{detail}\"}}")
        }
        _ => String::from("{\"kind\":\"unknown\"}"),
    }
}
