//! The one module allowed to hold raw write primitives: everything here
//! implements the tmp + fsync + rename commit protocol the rest of the
//! store is required to call.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

pub fn commit_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_lands() {
        let dir = std::env::temp_dir().join("lint_clean_durable");
        fs::create_dir_all(&dir).expect("mkdir");
        let target = dir.join("out.bin");
        // Test scope: raw fs::write here must not fire either.
        fs::write(dir.join("scratch.bin"), b"scratch").expect("scratch");
        commit_file(&target, b"payload").expect("commit");
    }
}
