// False-positive corpus: every construct here LOOKS like a violation to
// a naive grep but must produce zero findings. The integration tests
// assert the whole tree lints clean under --deny-all.

pub mod error;
pub mod serve;
pub mod ser;
pub mod wire;

/// Doc comments may discuss `.unwrap()` and `panic!` freely; so can
/// `std::thread::spawn` — prose is not code.
pub fn tokens_in_literals() -> Vec<&'static str> {
    vec![
        ".unwrap()",
        "please don't .expect(\"anything\") here",
        r#"raw: panic!("boom") and x.unwrap() stay literal"#,
        r##"nested raw with "quotes": y.expect("msg")"##,
        "std::thread::spawn(|| {})",
        "unsafe { *p }",
    ]
}

pub fn char_literals_are_not_strings() -> (char, char) {
    // The '"' char must not open a string that would swallow the rest of
    // the file and hide real code from the rules.
    ('"', '\'')
}

pub fn documented_unsafe(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` points into a live, initialized
    // buffer (checked by the bounds guard one frame up).
    unsafe { *p }
}

pub fn justified_site(s: &str) -> i64 {
    // tsfm_lint: allow(no-unwrap-in-lib, "input is a compile-time constant validated by the build script")
    s.parse().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: i64 = "42".parse().unwrap();
        assert_eq!(v, 42);
        let t = std::thread::spawn(|| 1);
        assert_eq!(t.join().unwrap(), 1);
    }
}
