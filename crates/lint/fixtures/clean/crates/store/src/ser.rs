// All of this crate's magics live here — the single format-magic module.
pub const SEGMENT_MAGIC: &[u8; 8] = b"TSFMBBB1";
pub const INDEX_MAGIC: &[u8; 8] = b"TSFMBBB2";
pub const SHARD_MAGIC: &[u8; 8] = b"TSFMBBB3";
pub const ARENA_MAGIC: &[u8; 8] = b"TSFMBBB4";

pub fn describe(err_format: &str) -> String {
    // A str-literal format *name* in an error message is not a second
    // magic definition.
    format!("corrupt {err_format} (expected TSFMBBB1)")
}
