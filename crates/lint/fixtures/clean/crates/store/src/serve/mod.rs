pub mod pool;
