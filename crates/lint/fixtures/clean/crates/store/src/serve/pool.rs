// The one module allowed to create threads: the bounded worker pool.
pub fn spawn_worker() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
