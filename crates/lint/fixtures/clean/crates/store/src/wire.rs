use crate::error::StoreError;

// Every StoreError variant has a serialization arm: taxonomy covered.
pub fn error_json(err: &StoreError) -> String {
    match err {
        StoreError::Io(e) => format!("{{\"kind\":\"io\",\"detail\":\"{e}\"}}"),
        StoreError::Corrupt { format, detail } => {
            format!("{{\"kind\":\"corrupt\",\"format\":\"{format}\",\"detail\":\"{detail}\"}}")
        }
        StoreError::Internal(detail) => {
            format!("{{\"kind\":\"internal\",\"detail\":\"{detail}\"}}")
        }
    }
}
