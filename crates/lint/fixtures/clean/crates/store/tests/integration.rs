// Files under tests/ are whole-file test scope: unwrap freely.
#[test]
fn tests_dir_is_exempt() {
    let v: i64 = "7".parse().unwrap();
    assert_eq!(v, 7);
}
