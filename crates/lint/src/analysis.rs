//! Per-file analysis model: the lexed views, line table, test-scope
//! ranges, and parsed suppression comments that every rule consumes.

use crate::lexer;

/// One `// tsfm_lint: allow(rule, "justification")` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// `None` for a bare `allow(rule)` — itself a lint error.
    pub justification: Option<String>,
}

/// Everything rules need to know about one source file.
pub struct FileAnalysis {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub src: String,
    /// Source with non-code bytes blanked (same length, same newlines).
    pub code: String,
    /// Source with non-literal bytes blanked.
    pub literals: String,
    /// Source with non-comment bytes blanked.
    pub comments: String,
    /// Byte offset of each line start (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items or
    /// `mod tests { … }` blocks.
    pub test_ranges: Vec<(usize, usize)>,
    /// Whole file is test/bench scope (under a `tests/` or `benches/`
    /// directory component).
    pub whole_file_test: bool,
    pub allows: Vec<Allow>,
}

impl FileAnalysis {
    pub fn new(rel: &str, src: String) -> FileAnalysis {
        let mask = lexer::lex(&src);
        let code = lexer::code_view(&src, &mask);
        let literals = lexer::literal_view(&src, &mask);
        let comments = lexer::comment_view(&src, &mask);
        let line_starts = line_starts(&src);
        let test_ranges = test_ranges(&code);
        let whole_file_test = rel
            .split('/')
            .any(|part| part == "tests" || part == "benches")
            || rel.ends_with("/tests.rs");
        let allows = parse_allows(&comments, &line_starts);
        FileAnalysis {
            rel: rel.to_string(),
            src,
            code,
            literals,
            comments,
            line_starts,
            test_ranges,
            whole_file_test,
            allows,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, byte: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= byte)
    }

    /// Whether a byte offset sits in test scope.
    pub fn in_test(&self, byte: usize) -> bool {
        self.whole_file_test || self.test_ranges.iter().any(|&(s, e)| byte >= s && byte < e)
    }

    /// All non-test-scope occurrences of `needle` in the code view. With
    /// `word_start`, the byte before the match must not be an identifier
    /// byte (so `panic!` does not fire inside `should_panic`).
    pub fn code_hits(&self, needle: &str, word_start: bool) -> Vec<usize> {
        let mut out = Vec::new();
        let mut from = 0usize;
        while let Some(off) = self.code[from..].find(needle) {
            let at = from + off;
            from = at + 1;
            if word_start && at > 0 && is_ident_byte(self.code.as_bytes()[at - 1]) {
                continue;
            }
            if self.in_test(at) {
                continue;
            }
            out.push(at);
        }
        out
    }

    /// The comment text (if any) on the given 1-based line.
    fn comment_on_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self.line_starts.get(line).copied().unwrap_or(self.comments.len());
        &self.comments[start..end]
    }

    /// Whether any of the `n` lines ending at `line` (inclusive) carries a
    /// comment containing `needle` (used for `SAFETY:` lookbehind).
    pub fn comment_nearby(&self, line: usize, needle: &str, n: usize) -> bool {
        let lo = line.saturating_sub(n).max(1);
        (lo..=line).any(|l| self.comment_on_line(l).contains(needle))
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_starts(src: &str) -> Vec<usize> {
    let mut out = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            out.push(i + 1);
        }
    }
    out
}

/// Find the byte ranges of test-scoped items in the code view:
/// `#[cfg(test)]`/`#[test]`-attributed items and `mod tests`/`mod test`
/// blocks. Each range runs from the marker to the closing brace of the
/// item body (or its terminating `;`).
fn test_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(off) = code[from..].find(marker) {
            let at = from + off;
            from = at + 1;
            if let Some(end) = item_end(code.as_bytes(), at + marker.len()) {
                out.push((at, end));
            }
        }
    }
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(off) = code[from..].find("mod ") {
        let at = from + off;
        from = at + 1;
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue; // e.g. `pub_mod `
        }
        let rest = &code[at + 4..];
        let name_len = rest.bytes().take_while(|&b| is_ident_byte(b)).count();
        let name = &rest[..name_len];
        if name != "tests" && name != "test" {
            continue;
        }
        if let Some(end) = item_end(bytes, at + 4 + name_len) {
            out.push((at, end));
        }
    }
    out
}

/// From just past an attribute or `mod` name, skip further attributes and
/// signature tokens to the item's body `{ … }` and return the offset one
/// past its closing brace (or one past a terminating `;`).
fn item_end(code: &[u8], mut i: usize) -> Option<usize> {
    let n = code.len();
    let mut paren_depth = 0i32;
    while i < n {
        match code[i] {
            b'(' | b'[' => paren_depth += 1,
            b')' | b']' => paren_depth -= 1,
            b';' if paren_depth <= 0 => return Some(i + 1),
            b'{' if paren_depth <= 0 => {
                let mut depth = 1i32;
                i += 1;
                while i < n && depth > 0 {
                    match code[i] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse `tsfm_lint: allow(rule)` / `allow(rule, "justification")`
/// directives out of the comment view.
fn parse_allows(comments: &str, line_starts: &[usize]) -> Vec<Allow> {
    const TAG: &str = "tsfm_lint:";
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = comments[from..].find(TAG) {
        let at = from + off;
        from = at + TAG.len();
        let line = line_starts.partition_point(|&s| s <= at);
        // Suppressions live in plain `//` comments. A doc comment
        // (`///`, `//!`, `/**`, `/*!`) mentioning the syntax is
        // documentation, not a directive.
        let line_start = line_starts[line - 1];
        let lead = comments[line_start..at].trim_start();
        if lead.starts_with("///")
            || lead.starts_with("//!")
            || lead.starts_with("/**")
            || lead.starts_with("/*!")
        {
            continue;
        }
        let rest = comments[at + TAG.len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            continue; // unknown directive; the rule for this lives in rules.rs
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let inner = &body[..close];
        let (rule, justification) = match inner.find(',') {
            None => (inner.trim().to_string(), None),
            Some(comma) => {
                let rule = inner[..comma].trim().to_string();
                let j = inner[comma + 1..].trim();
                let j = j.strip_prefix('"').and_then(|j| j.strip_suffix('"')).map(str::trim);
                (rule, j.filter(|j| !j.is_empty()).map(str::to_string))
            }
        };
        out.push(Allow { rule, line, justification });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scope_covers_cfg_test_and_mod_tests() {
        let src = "fn a() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}\n";
        let fa = FileAnalysis::new("crates/store/src/x.rs", src.to_string());
        let hits = fa.code_hits(".unwrap(", false);
        assert_eq!(hits.len(), 1, "only the non-test unwrap fires");
        assert_eq!(fa.line_of(hits[0]), 1);
    }

    #[test]
    fn plain_mod_tests_is_test_scope() {
        let src = "mod tests { fn b() { y.unwrap(); } }\nfn a() { x.unwrap(); }\n";
        let fa = FileAnalysis::new("crates/store/src/x.rs", src.to_string());
        let hits = fa.code_hits(".unwrap(", false);
        assert_eq!(hits.len(), 1);
        assert_eq!(fa.line_of(hits[0]), 2);
    }

    #[test]
    fn test_attr_scopes_single_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn b() { c.unwrap(); }\n";
        let fa = FileAnalysis::new("crates/store/src/x.rs", src.to_string());
        let hits = fa.code_hits(".unwrap(", false);
        assert_eq!(hits.len(), 1);
        assert_eq!(fa.line_of(hits[0]), 3);
    }

    #[test]
    fn tests_dir_is_whole_file_scope() {
        let fa = FileAnalysis::new("crates/store/tests/x.rs", "fn a() { x.unwrap(); }".into());
        assert!(fa.code_hits(".unwrap(", false).is_empty());
    }

    #[test]
    fn tokens_inside_strings_do_not_hit() {
        let src = "let s = \".unwrap()\"; let r = r#\"panic!(\"x\")\"#;\n";
        let fa = FileAnalysis::new("crates/store/src/x.rs", src.to_string());
        assert!(fa.code_hits(".unwrap(", false).is_empty());
        assert!(fa.code_hits("panic!", true).is_empty());
    }

    #[test]
    fn allows_parse_with_and_without_justification() {
        let src = "// tsfm_lint: allow(no-unwrap-in-lib, \"held lock, poison impossible\")\n\
                   x.lock().unwrap();\n\
                   // tsfm_lint: allow(no-spawn-outside-pool)\n";
        let fa = FileAnalysis::new("crates/store/src/x.rs", src.to_string());
        assert_eq!(fa.allows.len(), 2);
        assert_eq!(fa.allows[0].rule, "no-unwrap-in-lib");
        assert_eq!(fa.allows[0].line, 1);
        assert_eq!(fa.allows[0].justification.as_deref(), Some("held lock, poison impossible"));
        assert_eq!(fa.allows[1].rule, "no-spawn-outside-pool");
        assert_eq!(fa.allows[1].justification, None);
    }

    #[test]
    fn word_start_guards_macro_names() {
        let src = "#[should_panic] fn x() {}\nfn y() { panic!(\"boom\") }\n";
        let fa = FileAnalysis::new("crates/store/src/x.rs", src.to_string());
        let hits = fa.code_hits("panic!", true);
        assert_eq!(hits.len(), 1);
        assert_eq!(fa.line_of(hits[0]), 2);
    }
}
