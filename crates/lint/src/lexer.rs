//! A mini-lexer for Rust source: classifies every byte as code, comment,
//! or literal so rules fire on code and never on a token that merely
//! appears inside a string, a raw string, a char literal, or a comment.
//!
//! This is not a full Rust lexer — it only needs to answer "is this byte
//! part of a comment/literal?" and to keep enough structure (newlines,
//! byte offsets) for line attribution and brace matching. It handles:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//! * string literals with escapes, byte strings (`b"…"`), C strings
//!   (`c"…"`)
//! * raw strings with any number of hashes (`r"…"`, `r#"…"#`, `br#"…"#`,
//!   `cr#"…"#`) — and raw *identifiers* (`r#match`), which are code
//! * char and byte-char literals (`'a'`, `'\u{1F980}'`, `b'\n'`) versus
//!   lifetimes (`'a`, `'static`, `'_`), disambiguated by lookahead

/// Per-byte classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mask {
    /// Plain code: keywords, idents, operators, whitespace.
    Code,
    /// Inside a line or block comment (delimiters included).
    Comment,
    /// Inside a string/char literal (prefix and quotes included).
    Literal,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Classify every byte of `src`. Unterminated constructs (possible in
/// lint *fixtures*, not in code that compiles) extend to end of input
/// rather than erroring: the lexer must never give up on a file.
pub fn lex(src: &str) -> Vec<Mask> {
    let b = src.as_bytes();
    let n = b.len();
    let mut mask = vec![Mask::Code; n];
    let mut i = 0usize;
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                mask[start..i].fill(Mask::Comment);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                mask[start..i].fill(Mask::Comment);
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i);
                mask[start..i].fill(Mask::Literal);
            }
            b'\'' => {
                if let Some(end) = char_literal_end(b, i) {
                    mask[i..end].fill(Mask::Literal);
                    i = end;
                } else {
                    i += 1; // a lifetime: the quote is code
                }
            }
            c @ (b'r' | b'b' | b'c') if i == 0 || !is_ident_byte(b[i - 1]) => {
                if let Some((start_quote, hashes)) = literal_prefix(b, i, c) {
                    let start = i;
                    i = if hashes > 0 || b[start_quote] == b'"' {
                        if b[start_quote] == b'"' && hashes == 0 {
                            skip_string(b, start_quote)
                        } else {
                            skip_raw_string(b, start_quote, hashes)
                        }
                    } else {
                        // b'…': byte-char literal
                        char_literal_end(b, start_quote).unwrap_or(start_quote + 1)
                    };
                    mask[start..i].fill(Mask::Literal);
                } else {
                    // An ordinary identifier starting with r/b/c, or a raw
                    // identifier like r#match: consume the ident as code.
                    i += 1;
                    if b.get(i) == Some(&b'#') && b.get(i + 1).is_some_and(|&c| is_ident_byte(c)) {
                        i += 1; // raw identifier: skip the hash
                    }
                    while i < n && is_ident_byte(b[i]) {
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
    mask
}

/// If the prefix letter at `i` starts a string-ish literal, return the
/// index of its opening quote and the number of raw-string hashes.
/// Recognized: `r"` `r#…"` `b"` `b'` `br"` `br#…"` `c"` `cr#…"`.
fn literal_prefix(b: &[u8], i: usize, first: u8) -> Option<(usize, usize)> {
    let mut j = i + 1;
    let mut raw = first == b'r';
    if !raw && (first == b'b' || first == b'c') && b.get(j) == Some(&b'r') {
        raw = true;
        j += 1;
    }
    if raw {
        let hash_start = j;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
        let hashes = j - hash_start;
        if b.get(j) == Some(&b'"') {
            return Some((j, hashes));
        }
        return None; // r#ident (raw identifier) or plain ident
    }
    match b.get(j) {
        Some(&b'"') => Some((j, 0)),
        Some(&b'\'') if first == b'b' => Some((j, 0)),
        _ => None,
    }
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote (or end of input).
fn skip_string(b: &[u8], start: usize) -> usize {
    let n = b.len();
    let mut i = start + 1;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Skip a raw string whose opening quote is at `quote` with `hashes`
/// leading hashes; returns the index one past the closing delimiter.
fn skip_raw_string(b: &[u8], quote: usize, hashes: usize) -> usize {
    let n = b.len();
    let mut i = quote + 1;
    while i < n {
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// If the `'` at `i` starts a char literal, return the index one past its
/// closing quote; `None` means it is a lifetime (or stray quote).
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    let j = i + 1;
    if j >= n {
        return None;
    }
    if b[j] == b'\\' {
        // Escaped char: `'\n'`, `'\''`, `'\u{1F980}'` — scan (bounded) for
        // the closing quote after the escape body.
        let mut k = j + 2; // past the backslash and the escape head
        while k < n && k - i <= 16 {
            if b[k] == b'\'' {
                return Some(k + 1);
            }
            k += 1;
        }
        return None;
    }
    // Unescaped: exactly one character then a closing quote, else it is a
    // lifetime (`'a`, `'static`) or a loose quote.
    let ch_len = utf8_len(b[j]);
    if b[j] != b'\'' && b.get(j + ch_len) == Some(&b'\'') {
        return Some(j + ch_len + 1);
    }
    None
}

/// The source with every non-code byte blanked to a space (newlines kept
/// so byte offsets map to the same line numbers). Rules match against
/// this view, so tokens inside strings and comments can never fire.
pub fn code_view(src: &str, mask: &[Mask]) -> String {
    view_where(src, mask, Mask::Code)
}

/// The source with everything but literal bytes blanked (for rules about
/// literal *contents*, like magic-byte definitions).
pub fn literal_view(src: &str, mask: &[Mask]) -> String {
    view_where(src, mask, Mask::Literal)
}

/// The source with everything but comment bytes blanked (suppression and
/// SAFETY-comment scanning).
pub fn comment_view(src: &str, mask: &[Mask]) -> String {
    view_where(src, mask, Mask::Comment)
}

fn view_where(src: &str, mask: &[Mask], keep: Mask) -> String {
    // One output byte per input byte — views must preserve byte offsets
    // exactly, so non-ascii bytes in kept regions become '?' (one byte),
    // never a multi-byte replacement char.
    let bytes: Vec<u8> = src
        .bytes()
        .zip(mask)
        .map(|(b, &m)| {
            if b == b'\n' || (m == keep && b.is_ascii()) {
                b
            } else if m == keep {
                b'?'
            } else {
                b' '
            }
        })
        .collect();
    String::from_utf8(bytes).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> String {
        lex(src)
            .iter()
            .map(|m| match m {
                Mask::Code => 'c',
                Mask::Comment => '/',
                Mask::Literal => 's',
            })
            .collect()
    }

    #[test]
    fn views_preserve_byte_offsets_with_multibyte_chars() {
        // Em dashes and other multibyte chars must not shift offsets in
        // any view — suppression line math depends on it.
        let src = "//! docs — with a dash\n// tsfm_lint: allow(x, \"y\")\nfn f() {}\n";
        let mask = lex(src);
        for view in [code_view(src, &mask), comment_view(src, &mask), literal_view(src, &mask)] {
            assert_eq!(view.len(), src.len());
            let tag_src = src.find("tsfm_lint:");
            let tag_view = view.find("tsfm_lint:");
            if view.contains("tsfm_lint:") {
                assert_eq!(tag_src, tag_view);
            }
        }
    }

    #[test]
    fn line_and_block_comments() {
        // "a " code, "// x" comment, newline + "b" code again.
        assert_eq!(kinds("a // x\nb"), "cc////cc");
        // Nested block comment: everything from /* to the matching */ is
        // comment, including the inner pair.
        assert_eq!(kinds("a /* b /* c */ d */ e"), "cc/////////////////cc");
    }

    #[test]
    fn strings_and_escapes() {
        // x( code, "a\"b" literal (6 bytes incl. quotes), ) and ` y` code.
        assert_eq!(kinds(r#"x("a\"b") y"#), "ccssssssccc");
        // Raw strings with hashes; interior quotes do not terminate.
        let src = r##"f(r#"a "b" c"#)"##;
        assert_eq!(kinds(src), format!("cc{}c", "s".repeat(src.len() - 3)));
        // Raw identifiers are code.
        assert_eq!(kinds("r#match"), "ccccccc");
        // Byte and C strings.
        assert_eq!(kinds(r#"b"ab""#), "sssss");
        assert_eq!(kinds(r#"c"ab""#), "sssss");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(kinds("'a'"), "sss");
        assert_eq!(kinds("&'a str"), "ccccccc");
        assert_eq!(kinds(r"'\n'"), "ssss");
        assert_eq!(kinds(r"'\u{1F980}'"), "sssssssssss");
        assert_eq!(kinds("b'x'"), "ssss");
        assert_eq!(kinds("'🦀'"), "s".repeat("'🦀'".len()));
        // A quote char literal must not open a string: ( code, '"' literal,
        // `, ` code, "x" literal, ) code.
        assert_eq!(kinds(r#"('"', "x")"#), "csssccsssc");
    }

    #[test]
    fn unwrap_in_string_is_not_code() {
        let src = r#"let s = ".unwrap()"; s.parse().unwrap()"#;
        let view = code_view(src, &lex(src));
        assert_eq!(view.matches(".unwrap()").count(), 1);
        assert!(!view[..24].contains(".unwrap"));
    }

    #[test]
    fn unterminated_literals_extend_to_eof() {
        assert!(kinds("\"abc").chars().all(|c| c == 's'));
        assert!(kinds("r#\"abc").chars().all(|c| c == 's'));
        assert!(kinds("/* abc").chars().all(|c| c == '/'));
    }
}
