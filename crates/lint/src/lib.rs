//! `tsfm_lint` — std-only static analysis for the tsfm workspace.
//!
//! The serving stack's correctness contracts (panic-free hot paths,
//! poison-tolerant locks, bounded threading, a wire-complete error
//! taxonomy, single-definition format magics) used to live only in prose.
//! This crate machine-checks them: a mini Rust lexer classifies every
//! byte as code/comment/literal so rules fire on code — never on a token
//! inside a string, a raw string, a char literal, a comment, or a
//! `#[cfg(test)]`/`mod tests` block — and a small registry of
//! project-specific rules runs over the whole workspace.
//!
//! Run it as the CI gate:
//!
//! ```text
//! cargo run -p tsfm_lint -- --deny-all          # non-zero exit on findings
//! cargo run -p tsfm_lint -- --json              # machine-readable report
//! cargo run -p tsfm_lint -- --list-rules
//! ```
//!
//! Suppress a finding with an inline justified allow (bare allows are
//! themselves findings):
//!
//! ```text
//! // tsfm_lint: allow(no-unwrap-in-lib, "slot was filled two lines up")
//! ```
//!
//! See [`rules`] for the rule table.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod runner;

pub use analysis::FileAnalysis;
pub use rules::{Finding, RULES};
pub use runner::{lint_paths, lint_root, Report, Suppression};
