//! The `tsfm_lint` CLI. See `--help`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use tsfm_lint::{report, rules, runner};

const USAGE: &str = "\
tsfm_lint — std-only static analysis for the tsfm workspace

USAGE:
    tsfm_lint [OPTIONS] [PATH...]

OPTIONS:
    --root <DIR>    Tree to lint (default: current directory). Point it at
                    a fixture corpus to lint that corpus as a workspace.
    --json          Emit the report as one JSON object (parseable by the
                    store's own wire parser)
    --deny-all      Exit non-zero if any finding survives suppression —
                    the CI gate mode
    --list-rules    Print the rule table and exit
    -h, --help      This text

PATH arguments restrict the run to those files (relative to --root).
Without --deny-all the run is advisory: findings print, exit stays 0.";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_all = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:32} {}", r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
            file => paths.push(PathBuf::from(file)),
        }
    }

    let report = if paths.is_empty() {
        runner::lint_root(&root)
    } else {
        runner::lint_paths(&root, &paths)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tsfm_lint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report::json(&report));
    } else {
        print!("{}", report::text(&report));
    }
    if deny_all && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
