//! Report rendering: human text and one-object JSON. The JSON is emitted
//! through [`tsfm_store::wire::escape_json`], the workspace's single JSON
//! string escaper, so every report line is parseable by
//! [`tsfm_store::wire::parse_json`] by construction — the lint's tests
//! round-trip it through that parser.

use crate::rules;
use crate::runner::Report;
use std::fmt::Write as _;
use tsfm_store::wire::escape_json;

/// `file:line: [rule] message` lines plus a one-line summary.
pub fn text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    let _ = writeln!(
        out,
        "tsfm_lint: {} finding(s), {} active suppression(s), {} file(s) checked",
        report.findings.len(),
        report.suppressions.len(),
        report.files_checked
    );
    out
}

/// The whole report as one JSON object (single line).
pub fn json(report: &Report) -> String {
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                escape_json(f.rule),
                escape_json(&f.file),
                f.line,
                escape_json(&f.message)
            )
        })
        .collect();
    let suppressions: Vec<String> = report
        .suppressions
        .iter()
        .map(|s| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"justification\":\"{}\"}}",
                escape_json(&s.rule),
                escape_json(&s.file),
                s.line,
                escape_json(&s.justification)
            )
        })
        .collect();
    let rules: Vec<String> =
        rules::rule_names().iter().map(|r| format!("\"{}\"", escape_json(r))).collect();
    format!(
        "{{\"version\":1,\"files_checked\":{},\"findings\":[{}],\"suppressions\":[{}],\"rules\":[{}]}}",
        report.files_checked,
        findings.join(","),
        suppressions.join(","),
        rules.join(",")
    )
}
