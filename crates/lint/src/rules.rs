//! The rule registry and every rule's implementation.
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `no-unwrap-in-lib` | no `.unwrap()` / `.expect()` / `panic!` family in non-test library code of `store`/`sketch`/`search`/`obs` |
//! | `unsafe-needs-safety-comment` | every `unsafe` token carries a `// SAFETY:` comment within the 3 lines above |
//! | `no-spawn-outside-pool` | `std::thread::spawn` only in the serve worker pool, the bench crate, and the CLI manifest watcher |
//! | `wire-error-taxonomy-coverage` | every `StoreError` variant has a serialization arm in `wire.rs::error_json` |
//! | `format-magic-once` | all `TSFM*` magic byte-strings of a crate are defined in exactly one module |
//! | `durable-write-required` | no raw `File::create` / `fs::write` in `tsfm_store` library code outside the `durable` module |
//! | `suppression-needs-justification` | every `tsfm_lint: allow(…)` names a known rule and carries a non-empty justification |
//!
//! Suppress a finding with a comment on the same line or the line above:
//!
//! ```text
//! // tsfm_lint: allow(no-unwrap-in-lib, "why this site cannot fail")
//! ```

use crate::analysis::FileAnalysis;

pub const NO_UNWRAP: &str = "no-unwrap-in-lib";
pub const UNSAFE_COMMENT: &str = "unsafe-needs-safety-comment";
pub const NO_SPAWN: &str = "no-spawn-outside-pool";
pub const WIRE_COVERAGE: &str = "wire-error-taxonomy-coverage";
pub const MAGIC_ONCE: &str = "format-magic-once";
pub const DURABLE_WRITE: &str = "durable-write-required";
pub const SUPPRESSION: &str = "suppression-needs-justification";

/// Name + one-line summary, surfaced by `--list-rules` and the README.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: NO_UNWRAP,
        summary: "no .unwrap()/.expect()/panic! family in non-test library code of store/sketch/search/obs",
    },
    RuleInfo {
        name: UNSAFE_COMMENT,
        summary: "every `unsafe` carries a `// SAFETY:` comment within the 3 lines above",
    },
    RuleInfo {
        name: NO_SPAWN,
        summary: "std::thread::spawn only in store::serve::pool, crates/bench, and the CLI watcher",
    },
    RuleInfo {
        name: WIRE_COVERAGE,
        summary: "every StoreError variant has a serialization arm in wire.rs error_json",
    },
    RuleInfo {
        name: MAGIC_ONCE,
        summary: "all TSFM* magic byte-strings of a crate live in exactly one module",
    },
    RuleInfo {
        name: DURABLE_WRITE,
        summary: "no raw File::create / fs::write in tsfm_store library code outside durable",
    },
    RuleInfo {
        name: SUPPRESSION,
        summary: "every tsfm_lint allow() names a known rule and justifies itself",
    },
];

pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    /// 1-based.
    pub line: usize,
    pub message: String,
}

/// Crates whose `src/` trees are panic-audited. The serve frontend is
/// `crates/store/src/serve/`, so it is covered by the store entry.
const PANIC_AUDITED: &[&str] =
    &["crates/store/src/", "crates/sketch/src/", "crates/search/src/", "crates/obs/src/"];

/// The only places allowed to call `std::thread::spawn`: the bounded
/// serve worker pool, load generators in the bench crate, and the CLI's
/// manifest-watcher thread.
const SPAWN_ALLOWED: &[&str] =
    &["crates/store/src/serve/pool.rs", "crates/bench/", "src/bin/tsfm.rs"];

/// `no-unwrap-in-lib`: panic surfaces in audited library code.
pub fn no_unwrap_in_lib(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    if !PANIC_AUDITED.iter().any(|p| fa.rel.starts_with(p)) {
        return;
    }
    const PATTERNS: &[(&str, bool, &str)] = &[
        (".unwrap(", false, ".unwrap()"),
        (".expect(", false, ".expect()"),
        ("panic!", true, "panic!"),
        ("unreachable!", true, "unreachable!"),
        ("todo!", true, "todo!"),
        ("unimplemented!", true, "unimplemented!"),
    ];
    for &(needle, word_start, label) in PATTERNS {
        for at in fa.code_hits(needle, word_start) {
            out.push(Finding {
                rule: NO_UNWRAP,
                file: fa.rel.clone(),
                line: fa.line_of(at),
                message: format!(
                    "{label} in library code: return a typed error, use a poison-tolerant \
                     lock helper, or justify with an allow comment"
                ),
            });
        }
    }
}

/// `unsafe-needs-safety-comment`: a `// SAFETY:` comment must sit within
/// the 3 lines above (or on) each `unsafe` token.
pub fn unsafe_needs_safety_comment(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    for at in fa.code_hits("unsafe", true) {
        // Word-end boundary: `unsafe_code` (the forbid attribute) is not
        // the `unsafe` keyword.
        let end = at + "unsafe".len();
        if fa.code.as_bytes().get(end).is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        let line = fa.line_of(at);
        if !fa.comment_nearby(line, "SAFETY:", 3) {
            out.push(Finding {
                rule: UNSAFE_COMMENT,
                file: fa.rel.clone(),
                line,
                message: "unsafe without a `// SAFETY:` comment in the 3 lines above".to_string(),
            });
        }
    }
}

/// `no-spawn-outside-pool`: unbounded thread creation is confined to the
/// pool (which bounds and reuses workers), benches, and the CLI watcher.
pub fn no_spawn_outside_pool(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    if SPAWN_ALLOWED.iter().any(|p| fa.rel == *p || (p.ends_with('/') && fa.rel.starts_with(p))) {
        return;
    }
    for at in fa.code_hits("thread::spawn", true) {
        out.push(Finding {
            rule: NO_SPAWN,
            file: fa.rel.clone(),
            line: fa.line_of(at),
            message: "std::thread::spawn outside the serve worker pool: route work through \
                      serve::pool (bounded, panic-contained) or a scoped thread"
                .to_string(),
        });
    }
}

/// Store library paths whose writes must go through the durable commit
/// protocol, and the one module allowed to hold the raw primitives.
const DURABLE_SCOPE: &str = "crates/store/src/";
const DURABLE_MODULE: &str = "crates/store/src/durable.rs";

/// `durable-write-required`: raw write primitives in `tsfm_store` library
/// code. Everything the store persists must go through
/// `durable::commit_file` / `durable::write_new` (tmp + fsync + rename)
/// so a crash can never leave a torn file behind; `File::create` and
/// `fs::write` outside the `durable` module bypass that protocol.
pub fn durable_write_required(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    if !fa.rel.starts_with(DURABLE_SCOPE) || fa.rel == DURABLE_MODULE {
        return;
    }
    const PATTERNS: &[(&str, &str)] = &[("File::create", "File::create"), ("fs::write", "fs::write")];
    for &(needle, label) in PATTERNS {
        for at in fa.code_hits(needle, true) {
            out.push(Finding {
                rule: DURABLE_WRITE,
                file: fa.rel.clone(),
                line: fa.line_of(at),
                message: format!(
                    "{label} in store library code bypasses the durable commit protocol: \
                     write through durable::commit_file / durable::write_new, or justify \
                     with an allow comment"
                ),
            });
        }
    }
}

/// `suppression-needs-justification`: allows must name a known rule and
/// carry a non-empty quoted justification.
pub fn suppression_needs_justification(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    for allow in &fa.allows {
        if !RULES.iter().any(|r| r.name == allow.rule) {
            out.push(Finding {
                rule: SUPPRESSION,
                file: fa.rel.clone(),
                line: allow.line,
                message: format!("allow names unknown rule {:?}", allow.rule),
            });
        } else if allow.justification.is_none() {
            out.push(Finding {
                rule: SUPPRESSION,
                file: fa.rel.clone(),
                line: allow.line,
                message: format!(
                    "bare allow({}) without a justification: write \
                     `tsfm_lint: allow({}, \"why\")`",
                    allow.rule, allow.rule
                ),
            });
        }
    }
}

/// `wire-error-taxonomy-coverage`: cross-file — every variant of
/// `pub enum StoreError` must appear as `StoreError::Variant` in the file
/// defining `fn error_json`.
pub fn wire_error_taxonomy_coverage(analyses: &[FileAnalysis], out: &mut Vec<Finding>) {
    let Some((enum_fa, variants)) = analyses.iter().find_map(|fa| {
        fa.code.find("enum StoreError").map(|at| (fa, enum_variants(&fa.code, at)))
    }) else {
        return; // no StoreError in this tree: rule does not apply
    };
    let Some(wire_fa) = analyses.iter().find(|fa| fa.code.contains("fn error_json")) else {
        out.push(Finding {
            rule: WIRE_COVERAGE,
            file: enum_fa.rel.clone(),
            line: 1,
            message: "StoreError is defined but no `fn error_json` serializer exists".to_string(),
        });
        return;
    };
    let anchor = wire_fa.code.find("fn error_json").map_or(1, |at| wire_fa.line_of(at));
    for v in variants {
        if !wire_fa.code.contains(&format!("StoreError::{v}")) {
            out.push(Finding {
                rule: WIRE_COVERAGE,
                file: wire_fa.rel.clone(),
                line: anchor,
                message: format!(
                    "StoreError::{v} has no serialization arm in error_json — every taxonomy \
                     variant must reach the wire"
                ),
            });
        }
    }
}

/// Extract variant names from the enum whose `enum` keyword starts at
/// `start` in the code view. Payloads and attributes are skipped by
/// bracket depth; variants are the depth-1 identifiers.
fn enum_variants(code: &str, start: usize) -> Vec<String> {
    let b = code.as_bytes();
    let Some(open) = code[start..].find('{').map(|o| start + o) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut expecting = true;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                if depth > 1 {
                    expecting = false;
                }
            }
            b'}' | b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b',' if depth == 1 => expecting = true,
            c if depth == 1 && expecting && c.is_ascii_uppercase() => {
                let len = b[i..]
                    .iter()
                    .take_while(|&&c| c.is_ascii_alphanumeric() || c == b'_')
                    .count();
                out.push(code[i..i + len].to_string());
                expecting = false;
                i += len;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// `format-magic-once`: collect every `"TSFM…"`-shaped literal definition
/// in non-test `src/` code, grouped by crate; a crate defining magics in
/// more than one file gets a finding on each stray definition.
pub fn format_magic_once(analyses: &[FileAnalysis], out: &mut Vec<Finding>) {
    // (crate, file, line, magic)
    let mut defs: Vec<(String, String, usize, String)> = Vec::new();
    for fa in analyses {
        if !(fa.rel.contains("/src/") || fa.rel.starts_with("src/")) {
            continue;
        }
        let mut from = 0usize;
        // Only byte-string literals count as definitions: magics live on
        // disk as `b"TSFM...."`. Plain `"TSFM..."` str literals are format
        // *names* in error messages, not duplicate definitions.
        while let Some(off) = fa.literals[from..].find("b\"TSFM") {
            let at = from + off;
            from = at + 1;
            let content_start = at + 2;
            let Some(close) = fa.literals[content_start..].find('"') else {
                continue;
            };
            let magic = &fa.literals[content_start..content_start + close];
            let well_formed = magic.len() == 8
                && magic[4..].bytes().all(|b| b.is_ascii_uppercase() || b.is_ascii_digit());
            if !well_formed || fa.in_test(at) {
                continue;
            }
            let crate_key = fa
                .rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .map_or_else(|| "root".to_string(), |c| format!("crates/{c}"));
            defs.push((crate_key, fa.rel.clone(), fa.line_of(at), magic.to_string()));
        }
    }
    let mut crates: Vec<&str> = defs.iter().map(|(c, ..)| c.as_str()).collect();
    crates.sort_unstable();
    crates.dedup();
    for ck in crates {
        let mut files: Vec<&str> =
            defs.iter().filter(|(c, ..)| c == ck).map(|(_, f, ..)| f.as_str()).collect();
        files.sort_unstable();
        files.dedup();
        if files.len() <= 1 {
            continue;
        }
        // Canonical module: the file with the most definitions (ties:
        // lexicographically first) keeps them; every other file is flagged.
        let mut ranked: Vec<(usize, &str)> = files
            .iter()
            .map(|&f| (defs.iter().filter(|(_, df, ..)| df == f).count(), f))
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
        let canonical = ranked[0].1;
        for (_, file, line, magic) in defs.iter().filter(|(c, f, ..)| c == ck && f != canonical) {
            out.push(Finding {
                rule: MAGIC_ONCE,
                file: file.clone(),
                line: *line,
                message: format!(
                    "magic {magic:?} defined outside {canonical}, the crate's single \
                     format-magic module"
                ),
            });
        }
    }
}
