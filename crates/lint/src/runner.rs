//! Walk a source tree, run every rule, apply suppressions, and produce a
//! [`Report`].

use crate::analysis::FileAnalysis;
use crate::rules::{self, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A justified suppression that is in effect (reported so `--json`
/// consumers can audit the full allow inventory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub justification: String,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_checked: usize,
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Directories never descended into: build output, vendored shims
/// (third-party idiom, exempt by design), VCS metadata, and the lint's
/// own fixture corpus (linted explicitly by its tests, not by the
/// workspace gate).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Recursively collect `.rs` files under `root`, sorted for determinism.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative `/`-separated path.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint every `.rs` file under `root`.
pub fn lint_root(root: &Path) -> io::Result<Report> {
    let files = collect_files(root)?;
    lint_paths(root, &files)
}

/// Lint an explicit file list (paths may be absolute or root-relative).
pub fn lint_paths(root: &Path, files: &[PathBuf]) -> io::Result<Report> {
    let mut analyses = Vec::with_capacity(files.len());
    for path in files {
        let abs = if path.is_absolute() { path.clone() } else { root.join(path) };
        let src = fs::read_to_string(&abs)?;
        analyses.push(FileAnalysis::new(&rel_path(root, &abs), src));
    }
    Ok(run(&analyses))
}

/// Run every rule over pre-built analyses (the test-corpus entry point).
pub fn run(analyses: &[FileAnalysis]) -> Report {
    let mut findings = Vec::new();
    for fa in analyses {
        rules::no_unwrap_in_lib(fa, &mut findings);
        rules::unsafe_needs_safety_comment(fa, &mut findings);
        rules::no_spawn_outside_pool(fa, &mut findings);
        rules::durable_write_required(fa, &mut findings);
        rules::suppression_needs_justification(fa, &mut findings);
    }
    rules::wire_error_taxonomy_coverage(analyses, &mut findings);
    rules::format_magic_once(analyses, &mut findings);

    // Apply suppressions: a justified allow for the same rule on the
    // finding's line, or on the line directly above it, silences the
    // finding. Bare allows never suppress (and are themselves findings).
    let mut suppressions = Vec::new();
    for fa in analyses {
        for allow in &fa.allows {
            if let Some(j) = &allow.justification {
                suppressions.push(Suppression {
                    rule: allow.rule.clone(),
                    file: fa.rel.clone(),
                    line: allow.line,
                    justification: j.clone(),
                });
            }
        }
    }
    findings.retain(|f| {
        // The meta rule cannot be silenced by the thing it polices.
        f.rule == rules::SUPPRESSION
            || !suppressions.iter().any(|s| {
                s.rule == f.rule
                    && s.file == f.file
                    && (s.line == f.line || s.line + 1 == f.line)
            })
    });
    findings.sort_by(|a, b| {
        a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(b.rule))
    });
    suppressions.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Report { files_checked: analyses.len(), findings, suppressions }
}
