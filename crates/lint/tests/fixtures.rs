//! Drive the `tsfm_lint` binary over the seeded fixture corpora and
//! assert exit codes, rule names, and that `--json` output round-trips
//! through the store's own wire parser.

use std::path::PathBuf;
use std::process::Command;
use tsfm_store::wire::{parse_json, Json};

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(which)
}

fn run_lint(root: &str, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tsfm_lint"))
        .arg("--root")
        .arg(fixture_root(root))
        .args(extra)
        .output()
        .expect("spawn tsfm_lint");
    let code = out.status.code().unwrap_or(-1);
    (code, String::from_utf8(out.stdout).expect("utf8 stdout"))
}

fn findings(report: &Json) -> Vec<(String, String, f64)> {
    let Some(Json::Arr(items)) = report.get("findings") else {
        panic!("report has no findings array");
    };
    items
        .iter()
        .map(|f| {
            (
                f.get("rule").and_then(Json::as_str).expect("rule").to_string(),
                f.get("file").and_then(Json::as_str).expect("file").to_string(),
                f.get("line").and_then(Json::as_f64).expect("line"),
            )
        })
        .collect()
}

#[test]
fn bad_corpus_fails_deny_all_with_every_rule() {
    let (code, stdout) = run_lint("bad", &["--deny-all", "--json"]);
    assert_eq!(code, 1, "seeded violations must fail the gate; output:\n{stdout}");

    // The JSON must be parseable by the store's own wire parser.
    let report = parse_json(stdout.trim()).expect("report parses as wire JSON");
    let found = findings(&report);
    let rules_hit: std::collections::BTreeSet<&str> =
        found.iter().map(|(r, ..)| r.as_str()).collect();
    for rule in [
        "no-unwrap-in-lib",
        "unsafe-needs-safety-comment",
        "no-spawn-outside-pool",
        "wire-error-taxonomy-coverage",
        "format-magic-once",
        "durable-write-required",
        "suppression-needs-justification",
    ] {
        assert!(rules_hit.contains(rule), "rule {rule} did not fire; got {rules_hit:?}");
    }

    // Spot-check anchors: the bare allow is a finding AND the site it
    // failed to suppress still fires.
    let lib = "crates/store/src/lib.rs";
    assert!(found
        .iter()
        .any(|(r, f, _)| r == "suppression-needs-justification" && f == lib));
    assert!(
        found.iter().filter(|(r, f, _)| r == "no-unwrap-in-lib" && f == lib).count() >= 5,
        "unwrap/expect/panic sites plus unsuppressed allows must all fire"
    );
    // The flagged magic is in ser.rs (catalog.rs is lexicographically
    // first on the tie, so it is canonical).
    assert!(found
        .iter()
        .any(|(r, f, _)| r == "format-magic-once" && f == "crates/store/src/ser.rs"));
    // Both raw write primitives in store lib code fire; the clean
    // corpus's durable.rs (same primitives, allowed module) must not.
    assert_eq!(
        found
            .iter()
            .filter(|(r, f, _)| r == "durable-write-required"
                && f == "crates/store/src/catalog.rs")
            .count(),
        2,
        "fs::write and File::create must both fire"
    );
    // Missing wire arms anchor at error_json in wire.rs.
    assert_eq!(
        found.iter().filter(|(r, f, _)| r == "wire-error-taxonomy-coverage" && f == "crates/store/src/wire.rs").count(),
        2,
        "InvalidRequest and Internal both lack arms"
    );
}

#[test]
fn clean_corpus_passes_deny_all() {
    let (code, stdout) = run_lint("clean", &["--deny-all", "--json"]);
    let report = parse_json(stdout.trim()).expect("report parses as wire JSON");
    assert_eq!(code, 0, "false-positive corpus must lint clean:\n{stdout}");
    assert!(findings(&report).is_empty(), "no findings expected:\n{stdout}");
}

#[test]
fn suppressions_round_trip_through_json() {
    let (_, stdout) = run_lint("clean", &["--json"]);
    let report = parse_json(stdout.trim()).expect("report parses as wire JSON");
    let Some(Json::Arr(supps)) = report.get("suppressions") else {
        panic!("report has no suppressions array");
    };
    assert_eq!(supps.len(), 1, "exactly the one justified allow:\n{stdout}");
    let s = &supps[0];
    assert_eq!(s.get("rule").and_then(Json::as_str), Some("no-unwrap-in-lib"));
    assert_eq!(s.get("file").and_then(Json::as_str), Some("crates/store/src/lib.rs"));
    let j = s.get("justification").and_then(Json::as_str).expect("justification");
    assert!(j.contains("compile-time constant"), "justification text survives: {j}");
}

#[test]
fn text_mode_is_advisory_without_deny_all() {
    let (code, stdout) = run_lint("bad", &[]);
    assert_eq!(code, 0, "without --deny-all the run is advisory");
    assert!(stdout.contains("[no-unwrap-in-lib]"));
    assert!(stdout.lines().last().is_some_and(|l| l.starts_with("tsfm_lint:")));
}

#[test]
fn rule_list_matches_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_tsfm_lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn tsfm_lint");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for rule in tsfm_lint::rules::rule_names() {
        assert!(stdout.contains(rule), "--list-rules missing {rule}");
    }
}
