//! Finite-difference gradient checking, used by this crate's own tests and
//! reusable by downstream crates that define new composite heads.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use std::rc::Rc;

/// Check the analytic gradient of `build` (input → scalar loss) against
/// central finite differences at `x0`.
///
/// Errors are relative: `|a − n| ≤ tol · (1 + |a| + |n|)`. With `f32`
/// arithmetic, `eps ≈ 1e-2` and `tol ≈ 5e-2` are appropriate for smooth
/// ops; piecewise ops (ReLU) need inputs away from kinks.
pub fn check_gradients(
    build: impl Fn(&mut Tape, Var) -> Var,
    x0: &Tensor,
    eps: f32,
    tol: f32,
) -> Result<(), String> {
    // Analytic gradient.
    let mut tape = Tape::new(false, 0x5eed);
    let x = tape.leaf(Rc::new(x0.clone()));
    let loss = build(&mut tape, x);
    if tape.value(loss).numel() != 1 {
        return Err("loss must be scalar".into());
    }
    let grads = tape.backward(loss);
    let analytic = grads
        .get(x)
        .ok_or("no gradient reached the input")?
        .clone();

    let eval = |pt: &Tensor| -> f32 {
        let mut t = Tape::new(false, 0x5eed);
        let v = t.leaf(Rc::new(pt.clone()));
        let l = build(&mut t, v);
        t.value(l).item()
    };

    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        if (a - numeric).abs() > tol * (1.0 + a.abs() + numeric.abs()) {
            return Err(format!(
                "grad mismatch at {i}: analytic={a:.6} numeric={numeric:.6}"
            ));
        }
    }
    Ok(())
}
