//! Binary checkpoint format for [`ParamStore`] contents.
//!
//! Layout (little-endian):
//! `magic "TSFMCKP1" | u32 param count | per param: u32 name len, name
//! bytes, u32 rank, u64 dims…, f32 data…`. Loading matches by name and
//! checks shapes, so a checkpoint survives module re-ordering.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"TSFMCKP1";

/// Serialize every parameter to `path`.
pub fn save_params(store: &ParamStore, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let named: Vec<(&str, &Tensor)> = store.iter_named().collect();
    w.write_all(&(named.len() as u32).to_le_bytes())?;
    for (name, t) in named {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(t.shape().len() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read a checkpoint into name → tensor pairs.
pub fn read_checkpoint(path: &Path) -> io::Result<Vec<(String, Tensor)>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a TSFM checkpoint"));
    }
    let count = read_u32(&mut r)? as usize;
    if count > 1 << 20 {
        // Bound before allocating: a garbled count must error, not abort
        // the process with an absurd `with_capacity`.
        return Err(bad("unreasonable parameter count"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(bad("unreasonable name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("name not utf-8"))?;
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(bad("unreasonable rank"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(&mut r)? as usize);
        }
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .filter(|&n| n <= 1 << 30)
            .ok_or_else(|| bad("unreasonable tensor size"))?;
        let mut data = vec![0f32; numel];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        out.push((name, Tensor::from_vec(shape, data)));
    }
    Ok(out)
}

/// Load a checkpoint into an existing store (names must match; shapes are
/// validated). Returns the number of parameters restored.
pub fn load_params(store: &mut ParamStore, path: &Path) -> io::Result<usize> {
    let entries = read_checkpoint(path)?;
    let mut loaded = 0;
    for (name, tensor) in entries {
        match store.id_by_name(&name) {
            Some(id) => {
                store.set_value(id, tensor);
                loaded += 1;
            }
            None => return Err(bad(&format!("checkpoint param {name:?} not in model"))),
        }
    }
    Ok(loaded)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("tsfm_nn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");

        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        store.add("a.weight", Tensor::randn(&[3, 4], 1.0, &mut rng), true);
        store.add("a.bias", Tensor::randn(&[4], 1.0, &mut rng), false);
        save_params(&store, &path).unwrap();

        // Fresh store with same names, different values.
        let mut store2 = ParamStore::new();
        let w = store2.add("a.weight", Tensor::zeros(&[3, 4]), true);
        let b = store2.add("a.bias", Tensor::zeros(&[4]), false);
        let n = load_params(&mut store2, &path).unwrap();
        assert_eq!(n, 2);
        assert_eq!(store2.value(w), store.value(store.id_by_name("a.weight").unwrap()));
        assert_eq!(store2.value(b), store.value(store.id_by_name("a.bias").unwrap()));
    }

    #[test]
    fn rejects_unknown_param() {
        let dir = std::env::temp_dir().join("tsfm_nn_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let mut store = ParamStore::new();
        store.add("x", Tensor::zeros(&[1]), true);
        save_params(&store, &path).unwrap();
        let mut other = ParamStore::new();
        other.add("y", Tensor::zeros(&[1]), true);
        assert!(load_params(&mut other, &path).is_err());
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = std::env::temp_dir().join("tsfm_nn_io_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"NOTACKPTxxxx").unwrap();
        assert!(read_checkpoint(&path).is_err());
    }
}
