//! Neural network modules: Linear, Embedding, LayerNorm, multi-head
//! attention and the BERT-style (post-LN) transformer encoder.
//!
//! Modules own only [`ParamId`]s; values live in the [`ParamStore`] so one
//! model can be trained, checkpointed and shared without self-references.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// BERT-style truncated-normal-ish initialization scale.
pub const INIT_STD: f32 = 0.02;

/// Fully connected layer `y = x·W + b`.
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        Self::new_with_std(store, prefix, in_dim, out_dim, INIT_STD, rng)
    }

    /// Xavier-scaled initialization (`std = 1/√in_dim`) — appropriate for
    /// task heads stacked on small encoders, where BERT's flat 0.02 leaves
    /// logits (and gradients) vanishingly small.
    pub fn new_xavier<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let std = 1.0 / (in_dim as f32).sqrt();
        Self::new_with_std(store, prefix, in_dim, out_dim, std, rng)
    }

    pub fn new_with_std<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        std: f32,
        rng: &mut R,
    ) -> Self {
        let w = store.add(
            format!("{prefix}.weight"),
            Tensor::randn(&[in_dim, out_dim], std, rng),
            true,
        );
        let b = store.add(format!("{prefix}.bias"), Tensor::zeros(&[out_dim]), false);
        Linear { w, b, in_dim, out_dim }
    }

    /// Forward on any-rank input whose last dim is `in_dim`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let shape = tape.value(x).shape().to_vec();
        assert_eq!(*shape.last().expect("rank>=1"), self.in_dim, "Linear input dim");
        let rows: usize = shape[..shape.len() - 1].iter().product();
        let x2 = if shape.len() == 2 {
            x
        } else {
            tape.reshape(x, vec![rows, self.in_dim])
        };
        let w = store.use_param(tape, self.w);
        let b = store.use_param(tape, self.b);
        let y = tape.matmul(x2, w);
        let y = tape.add_bias(y, b);
        if shape.len() == 2 {
            y
        } else {
            let mut out_shape = shape;
            *out_shape.last_mut().expect("rank>=1") = self.out_dim;
            tape.reshape(y, out_shape)
        }
    }
}

/// Token/positional embedding table.
pub struct Embedding {
    pub table: ParamId,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.add(
            format!("{prefix}.table"),
            Tensor::randn(&[vocab, dim], INIT_STD, rng),
            false,
        );
        Embedding { table, vocab, dim }
    }

    /// Look up `ids`, returning `[ids.len(), dim]`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, ids: Vec<u32>) -> Var {
        let t = store.use_param(tape, self.table);
        tape.embedding(t, ids)
    }
}

/// Layer normalization with learned affine parameters.
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub dim: usize,
    pub eps: f32,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, prefix: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{prefix}.gamma"), Tensor::full(&[dim], 1.0), false);
        let beta = store.add(format!("{prefix}.beta"), Tensor::zeros(&[dim]), false);
        LayerNorm { gamma, beta, dim, eps: 1e-5 }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let g = store.use_param(tape, self.gamma);
        let b = store.use_param(tape, self.beta);
        tape.layer_norm(x, g, b, self.eps)
    }
}

/// Multi-head bidirectional self-attention (BERT-style).
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub d_model: usize,
    pub dropout: f32,
}

impl MultiHeadAttention {
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        d_model: usize,
        heads: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must divide by heads");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{prefix}.q"), d_model, d_model, rng),
            wk: Linear::new(store, &format!("{prefix}.k"), d_model, d_model, rng),
            wv: Linear::new(store, &format!("{prefix}.v"), d_model, d_model, rng),
            wo: Linear::new(store, &format!("{prefix}.o"), d_model, d_model, rng),
            heads,
            d_model,
            dropout,
        }
    }

    /// `x`: `[B, T, D]`; `attn_bias`: `[B, T]`, `0` for real tokens and a
    /// large negative number for padding keys.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        attn_bias: &Tensor,
    ) -> Var {
        let shape = tape.value(x).shape().to_vec();
        let [b, t, d] = match shape.as_slice() {
            [a, b2, c] => [*a, *b2, *c],
            s => panic!("attention expects [B,T,D], got {s:?}"),
        };
        assert_eq!(d, self.d_model);
        let h = self.heads;
        let hd = d / h;

        let split = |tape: &mut Tape, v: Var| -> Var {
            // [B,T,D] → [B,T,H,hd] → [B,H,T,hd] → [B*H,T,hd]
            let v = tape.reshape(v, vec![b, t, h, hd]);
            let v = tape.permute(v, &[0, 2, 1, 3]);
            tape.reshape(v, vec![b * h, t, hd])
        };

        let q = self.wq.forward(tape, store, x);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);
        let (q, k, v) = (split(tape, q), split(tape, k), split(tape, v));

        let kt = tape.permute(k, &[0, 2, 1]); // [B*H, hd, T]
        let scores = tape.bmm(q, kt); // [B*H, T, T]
        let scores = tape.scale(scores, 1.0 / (hd as f32).sqrt());
        let scores = tape.add_attn_bias(scores, attn_bias, h);
        let attn = tape.softmax_last(scores);
        let attn = tape.dropout(attn, self.dropout);
        let ctx = tape.bmm(attn, v); // [B*H, T, hd]

        // merge heads: [B*H,T,hd] → [B,H,T,hd] → [B,T,H,hd] → [B,T,D]
        let ctx = tape.reshape(ctx, vec![b, h, t, hd]);
        let ctx = tape.permute(ctx, &[0, 2, 1, 3]);
        let ctx = tape.reshape(ctx, vec![b, t, d]);
        self.wo.forward(tape, store, ctx)
    }
}

/// Position-wise feed-forward block with GELU.
pub struct FeedForward {
    pub fc1: Linear,
    pub fc2: Linear,
    pub dropout: f32,
}

impl FeedForward {
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        d_model: usize,
        d_ff: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        FeedForward {
            fc1: Linear::new(store, &format!("{prefix}.fc1"), d_model, d_ff, rng),
            fc2: Linear::new(store, &format!("{prefix}.fc2"), d_ff, d_model, rng),
            dropout,
        }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let y = self.fc1.forward(tape, store, x);
        let y = tape.gelu(y);
        let y = self.fc2.forward(tape, store, y);
        tape.dropout(y, self.dropout)
    }
}

/// One post-LN transformer encoder layer (as in the original BERT).
pub struct EncoderLayer {
    pub attn: MultiHeadAttention,
    pub ln1: LayerNorm,
    pub ff: FeedForward,
    pub ln2: LayerNorm,
    pub dropout: f32,
}

impl EncoderLayer {
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        cfg: &EncoderConfig,
        rng: &mut R,
    ) -> Self {
        EncoderLayer {
            attn: MultiHeadAttention::new(
                store,
                &format!("{prefix}.attn"),
                cfg.d_model,
                cfg.heads,
                cfg.dropout,
                rng,
            ),
            ln1: LayerNorm::new(store, &format!("{prefix}.ln1"), cfg.d_model),
            ff: FeedForward::new(
                store,
                &format!("{prefix}.ff"),
                cfg.d_model,
                cfg.d_ff,
                cfg.dropout,
                rng,
            ),
            ln2: LayerNorm::new(store, &format!("{prefix}.ln2"), cfg.d_model),
            dropout: cfg.dropout,
        }
    }

    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        attn_bias: &Tensor,
    ) -> Var {
        let a = self.attn.forward(tape, store, x, attn_bias);
        let a = tape.dropout(a, self.dropout);
        let x = tape.add(x, a);
        let x = self.ln1.forward(tape, store, x);
        let f = self.ff.forward(tape, store, x);
        let x = tape.add(x, f);
        self.ln2.forward(tape, store, x)
    }
}

/// Encoder hyper-parameters.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    pub d_model: usize,
    pub heads: usize,
    pub d_ff: usize,
    pub layers: usize,
    pub dropout: f32,
}

impl EncoderConfig {
    /// A small configuration suitable for CPU experiments.
    pub fn small() -> Self {
        Self { d_model: 64, heads: 4, d_ff: 128, layers: 2, dropout: 0.1 }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { d_model: 16, heads: 2, d_ff: 32, layers: 1, dropout: 0.0 }
    }
}

/// A stack of encoder layers.
pub struct TransformerEncoder {
    pub layers: Vec<EncoderLayer>,
    pub cfg: EncoderConfig,
}

impl TransformerEncoder {
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        prefix: &str,
        cfg: EncoderConfig,
        rng: &mut R,
    ) -> Self {
        let layers = (0..cfg.layers)
            .map(|i| EncoderLayer::new(store, &format!("{prefix}.layer{i}"), &cfg, rng))
            .collect();
        TransformerEncoder { layers, cfg }
    }

    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        mut x: Var,
        attn_bias: &Tensor,
    ) -> Var {
        for layer in &self.layers {
            x = layer.forward(tape, store, x, attn_bias);
        }
        x
    }
}

/// BERT pooler: tanh(Linear(CLS token)).
pub struct Pooler {
    pub fc: Linear,
}

impl Pooler {
    pub fn new<R: Rng>(store: &mut ParamStore, prefix: &str, d_model: usize, rng: &mut R) -> Self {
        Pooler { fc: Linear::new(store, &format!("{prefix}.dense"), d_model, d_model, rng) }
    }

    /// `hidden`: `[B, T, D]` → pooled `[B, D]` from token 0.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, hidden: Var) -> Var {
        let shape = tape.value(hidden).shape().to_vec();
        let [b, t, d] = match shape.as_slice() {
            [a, b2, c] => [*a, *b2, *c],
            s => panic!("pooler expects [B,T,D], got {s:?}"),
        };
        let flat = tape.reshape(hidden, vec![b * t, d]);
        let cls_rows: Vec<usize> = (0..b).map(|i| i * t).collect();
        let cls = tape.select_rows(flat, cls_rows);
        let y = self.fc.forward(tape, store, cls);
        tape.tanh(y)
    }
}

/// Build the additive attention bias (`0` keep / `-1e9` mask) from
/// per-sequence valid lengths.
pub fn attn_bias_from_lengths(lengths: &[usize], t: usize) -> Tensor {
    let b = lengths.len();
    let mut bias = Tensor::zeros(&[b, t]);
    for (i, &len) in lengths.iter().enumerate() {
        for j in len..t {
            bias.data_mut()[i * t + j] = -1e9;
        }
    }
    bias
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, &mut rng);
        let mut tape = Tape::new(false, 0);
        let x = tape.constant(Tensor::zeros(&[2, 5, 4]));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), &[2, 5, 3]);
    }

    #[test]
    fn encoder_forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::tiny();
        let enc = TransformerEncoder::new(&mut store, "enc", cfg.clone(), &mut rng);
        let x0 = Tensor::randn(&[2, 5, cfg.d_model], 1.0, &mut rng);
        let bias = attn_bias_from_lengths(&[5, 3], 5);

        let run = |store: &ParamStore| {
            let mut tape = Tape::new(false, 7);
            let x = tape.constant(x0.clone());
            let y = enc.forward(&mut tape, store, x, &bias);
            tape.value(y).clone()
        };
        let y1 = run(&store);
        let y2 = run(&store);
        assert_eq!(y1.shape(), &[2, 5, cfg.d_model]);
        assert_eq!(y1, y2, "eval mode is deterministic");
    }

    #[test]
    fn padding_does_not_influence_valid_tokens() {
        // Change padding token content; outputs at valid positions of the
        // padded sequence must not change.
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::tiny();
        let enc = TransformerEncoder::new(&mut store, "enc", cfg.clone(), &mut rng);
        let t = 6;
        let valid = 3;
        let bias = attn_bias_from_lengths(&[valid], t);

        let mut x_a = Tensor::randn(&[1, t, cfg.d_model], 1.0, &mut rng);
        let mut x_b = x_a.clone();
        // perturb padding positions only
        for ti in valid..t {
            for di in 0..cfg.d_model {
                x_b.data_mut()[ti * cfg.d_model + di] += 5.0;
            }
        }
        let run = |x: Tensor, store: &ParamStore| {
            let mut tape = Tape::new(false, 1);
            let xv = tape.constant(x);
            let y = enc.forward(&mut tape, store, xv, &bias);
            tape.value(y).clone()
        };
        let _ = &mut x_a; // silence mut warning symmetry
        let ya = run(x_a, &store);
        let yb = run(x_b, &store);
        for ti in 0..valid {
            for di in 0..cfg.d_model {
                let a = ya.data()[ti * cfg.d_model + di];
                let b = yb.data()[ti * cfg.d_model + di];
                assert!((a - b).abs() < 1e-4, "valid token {ti} influenced by padding");
            }
        }
    }

    #[test]
    fn pooler_takes_first_token() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let pooler = Pooler::new(&mut store, "pool", 4, &mut rng);
        let mut x = Tensor::zeros(&[2, 3, 4]);
        // batch 0 CLS = 1s, batch 1 CLS = 2s
        for d in 0..4 {
            x.data_mut()[d] = 1.0;
            x.data_mut()[3 * 4 + d] = 2.0;
        }
        let mut tape = Tape::new(false, 0);
        let xv = tape.constant(x);
        let y = pooler.forward(&mut tape, &store, xv);
        assert_eq!(tape.value(y).shape(), &[2, 4]);
        // outputs bounded by tanh
        for &v in tape.value(y).data() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn dropout_only_in_training() {
        let mut rng = StdRng::seed_from_u64(4);
        let x0 = Tensor::randn(&[4, 8], 1.0, &mut rng);
        let mut eval_tape = Tape::new(false, 9);
        let x = eval_tape.constant(x0.clone());
        let y = eval_tape.dropout(x, 0.5);
        assert_eq!(eval_tape.value(y), &x0, "identity at eval");

        let mut train_tape = Tape::new(true, 9);
        let x = train_tape.constant(x0);
        let y = train_tape.dropout(x, 0.5);
        let dropped = train_tape
            .value(y)
            .data()
            .iter()
            .filter(|&&v| v == 0.0)
            .count();
        assert!(dropped > 0, "some elements must drop at p=0.5");
    }

    #[test]
    fn attn_bias_layout() {
        let b = attn_bias_from_lengths(&[2, 4], 4);
        assert_eq!(b.shape(), &[2, 4]);
        assert_eq!(b.data()[0], 0.0);
        assert_eq!(b.data()[2], -1e9);
        assert_eq!(b.data()[7], 0.0);
    }
}
