//! A from-scratch neural-network substrate: dense `f32` tensors,
//! tape-based reverse-mode autodiff, BERT-style transformer layers, AdamW,
//! and binary checkpointing.
//!
//! The paper pretrains a 118M-parameter BERT on 4×A100 for two days; this
//! crate reproduces the *architecture and training code paths* at a scale
//! that trains on a laptop CPU in seconds-to-minutes (see DESIGN.md's
//! substitution table). Nothing here is stubbed: gradients are exact (and
//! finite-difference-checked), attention is real multi-head self-attention,
//! and optimization is real AdamW with warmup scheduling.

#![forbid(unsafe_code)]

pub mod gradcheck;
pub mod io;
pub mod layers;
pub mod ops;
pub mod optim;
pub mod params;
pub mod tape;
pub mod tensor;

pub use layers::{
    attn_bias_from_lengths, Embedding, EncoderConfig, EncoderLayer, FeedForward, LayerNorm,
    Linear, MultiHeadAttention, Pooler, TransformerEncoder,
};
pub use optim::{AdamW, LinearSchedule};
pub use params::{ParamId, ParamStore};
pub use tape::{GradStore, Tape, Var};
pub use tensor::Tensor;
