//! Differentiable operations recorded on the [`Tape`].
//!
//! Each op computes its value eagerly and records a backward closure that
//! scatters `dL/dout` into its parents' gradient slots. Closures capture
//! `Rc` clones of the input tensors they need, so backward never borrows
//! the tape.

// Kernel loops below index several parallel row buffers at once; the index
// form mirrors the gradient formulas and stays readable where iterator
// chains would not.
#![allow(clippy::needless_range_loop)]

use crate::tape::{Tape, Var};
use crate::tensor::{self, Tensor};
use std::rc::Rc;

/// Ignore label for [`Tape::cross_entropy_logits`] (masked-out positions).
pub const IGNORE_INDEX: i64 = -100;

impl Tape {
    // -- elementwise ------------------------------------------------------

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.zip_map(&vb, |x, y| x + y);
        let (ra, rb) = (self.requires_grad(a), self.requires_grad(b));
        self.op(
            out,
            &[a, b],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.clone());
                }
                if rb {
                    store.accumulate(b.0, g.clone());
                }
            }),
        )
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.zip_map(&vb, |x, y| x - y);
        let (ra, rb) = (self.requires_grad(a), self.requires_grad(b));
        self.op(
            out,
            &[a, b],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.clone());
                }
                if rb {
                    store.accumulate(b.0, g.map(|x| -x));
                }
            }),
        )
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = va.zip_map(&vb, |x, y| x * y);
        let (ra, rb) = (self.requires_grad(a), self.requires_grad(b));
        self.op(
            out,
            &[a, b],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.zip_map(&vb, |gv, y| gv * y));
                }
                if rb {
                    store.accumulate(b.0, g.zip_map(&va, |gv, x| gv * x));
                }
            }),
        )
    }

    /// `c · a` for a scalar constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let va = self.value_rc(a);
        let out = va.map(|x| c * x);
        let ra = self.requires_grad(a);
        self.op(
            out,
            &[a],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.map(|x| c * x));
                }
            }),
        )
    }

    /// Broadcast-add a row vector `b[c]` to every row of `x[.., c]`.
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let (vx, vb) = (self.value_rc(x), self.value_rc(b));
        let c = *vx.shape().last().expect("add_bias needs rank >= 1");
        assert_eq!(vb.shape(), &[c], "bias must match last dim");
        let mut out = (*vx).clone();
        for row in out.data_mut().chunks_mut(c) {
            for (o, &bv) in row.iter_mut().zip(vb.data()) {
                *o += bv;
            }
        }
        let (rx, rb) = (self.requires_grad(x), self.requires_grad(b));
        self.op(
            out,
            &[x, b],
            Box::new(move |g, store| {
                if rx {
                    store.accumulate(x.0, g.clone());
                }
                if rb {
                    let mut gb = Tensor::zeros(&[c]);
                    for row in g.data().chunks(c) {
                        for (s, &gv) in gb.data_mut().iter_mut().zip(row) {
                            *s += gv;
                        }
                    }
                    store.accumulate(b.0, gb);
                }
            }),
        )
    }

    // -- activations ------------------------------------------------------

    /// GELU (tanh approximation, like BERT).
    pub fn gelu(&mut self, a: Var) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        const A: f32 = 0.044_715;
        let va = self.value_rc(a);
        let out = va.map(|x| 0.5 * x * (1.0 + (C * (x + A * x * x * x)).tanh()));
        let ra = self.requires_grad(a);
        self.op(
            out,
            &[a],
            Box::new(move |g, store| {
                if ra {
                    let dx = va.map(|x| {
                        let u = C * (x + A * x * x * x);
                        let t = u.tanh();
                        0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * C * (1.0 + 3.0 * A * x * x)
                    });
                    store.accumulate(a.0, g.zip_map(&dx, |gv, d| gv * d));
                }
            }),
        )
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let va = self.value_rc(a);
        let out = va.map(f32::tanh);
        let out_rc = Rc::new(out);
        let keep = Rc::clone(&out_rc);
        let ra = self.requires_grad(a);
        let back: crate::tape::BackFn =
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.zip_map(&keep, |gv, y| gv * (1.0 - y * y)));
                }
            });
        let requires = ra;
        self.push(out_rc, requires.then_some(back), requires)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let va = self.value_rc(a);
        let out = va.map(|x| x.max(0.0));
        let ra = self.requires_grad(a);
        self.op(
            out,
            &[a],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.zip_map(&va, |gv, x| if x > 0.0 { gv } else { 0.0 }));
                }
            }),
        )
    }

    // -- shape ------------------------------------------------------------

    /// Reshape (same element order).
    pub fn reshape(&mut self, a: Var, shape: Vec<usize>) -> Var {
        let va = self.value_rc(a);
        let old_shape = va.shape().to_vec();
        let out = va.reshaped(shape);
        let ra = self.requires_grad(a);
        self.op(
            out,
            &[a],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.reshaped(old_shape.clone()));
                }
            }),
        )
    }

    /// Permute axes.
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Var {
        let va = self.value_rc(a);
        let out = tensor::permute(&va, perm);
        let inv = tensor::inverse_perm(perm);
        let ra = self.requires_grad(a);
        self.op(
            out,
            &[a],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, tensor::permute(g, &inv));
                }
            }),
        )
    }

    /// Gather rows of a 2-D tensor: `out[i] = x[idx[i]]`.
    pub fn select_rows(&mut self, x: Var, idx: Vec<usize>) -> Var {
        let vx = self.value_rc(x);
        let (r, c) = (vx.shape()[0], vx.shape()[1]);
        let mut out = Tensor::zeros(&[idx.len(), c]);
        for (o, &i) in idx.iter().enumerate() {
            assert!(i < r, "row index {i} out of bounds {r}");
            out.data_mut()[o * c..(o + 1) * c].copy_from_slice(&vx.data()[i * c..(i + 1) * c]);
        }
        let rx = self.requires_grad(x);
        self.op(
            out,
            &[x],
            Box::new(move |g, store| {
                if rx {
                    let mut gx = Tensor::zeros(&[r, c]);
                    for (o, &i) in idx.iter().enumerate() {
                        let src = &g.data()[o * c..(o + 1) * c];
                        let dst = &mut gx.data_mut()[i * c..(i + 1) * c];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    store.accumulate(x.0, gx);
                }
            }),
        )
    }

    /// Concatenate two 2-D tensors along columns.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let (r, ca) = (va.shape()[0], va.shape()[1]);
        let cb = vb.shape()[1];
        assert_eq!(vb.shape()[0], r, "concat_cols row mismatch");
        let mut out = Tensor::zeros(&[r, ca + cb]);
        for i in 0..r {
            out.data_mut()[i * (ca + cb)..i * (ca + cb) + ca]
                .copy_from_slice(&va.data()[i * ca..(i + 1) * ca]);
            out.data_mut()[i * (ca + cb) + ca..(i + 1) * (ca + cb)]
                .copy_from_slice(&vb.data()[i * cb..(i + 1) * cb]);
        }
        let (ra, rb) = (self.requires_grad(a), self.requires_grad(b));
        self.op(
            out,
            &[a, b],
            Box::new(move |g, store| {
                if ra {
                    let mut ga = Tensor::zeros(&[r, ca]);
                    for i in 0..r {
                        ga.data_mut()[i * ca..(i + 1) * ca]
                            .copy_from_slice(&g.data()[i * (ca + cb)..i * (ca + cb) + ca]);
                    }
                    store.accumulate(a.0, ga);
                }
                if rb {
                    let mut gb = Tensor::zeros(&[r, cb]);
                    for i in 0..r {
                        gb.data_mut()[i * cb..(i + 1) * cb].copy_from_slice(
                            &g.data()[i * (ca + cb) + ca..(i + 1) * (ca + cb)],
                        );
                    }
                    store.accumulate(b.0, gb);
                }
            }),
        )
    }

    // -- linear algebra ---------------------------------------------------

    /// 2-D matmul `a[m,k] · b[k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = tensor::matmul(&va, &vb);
        let (ra, rb) = (self.requires_grad(a), self.requires_grad(b));
        self.op(
            out,
            &[a, b],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, tensor::matmul_nt(g, &vb));
                }
                if rb {
                    store.accumulate(b.0, tensor::matmul_tn(&va, g));
                }
            }),
        )
    }

    /// Batched matmul `a[n,m,k] · b[n,k,p]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value_rc(a), self.value_rc(b));
        let out = tensor::bmm(&va, &vb);
        let (ra, rb) = (self.requires_grad(a), self.requires_grad(b));
        self.op(
            out,
            &[a, b],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, tensor::bmm_nt(g, &vb));
                }
                if rb {
                    store.accumulate(b.0, tensor::bmm_tn(&va, g));
                }
            }),
        )
    }

    // -- normalization / attention ----------------------------------------

    /// Softmax over the last dimension.
    pub fn softmax_last(&mut self, a: Var) -> Var {
        let va = self.value_rc(a);
        let c = *va.shape().last().expect("softmax needs rank >= 1");
        let mut out = (*va).clone();
        for row in out.data_mut().chunks_mut(c) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        let out_rc = Rc::new(out);
        let y = Rc::clone(&out_rc);
        let ra = self.requires_grad(a);
        let back: crate::tape::BackFn =
            Box::new(move |g, store| {
                if ra {
                    let mut gx = (*y).clone();
                    for (grow, yrow) in
                        gx.data_mut().chunks_mut(c).zip(g.data().chunks(c))
                    {
                        // here grow currently holds y; compute y ⊙ (g - <g,y>)
                        let dot: f32 =
                            grow.iter().zip(yrow).map(|(&yv, &gv)| yv * gv).sum();
                        for (o, &gv) in grow.iter_mut().zip(yrow) {
                            *o *= gv - dot;
                        }
                    }
                    store.accumulate(a.0, gx);
                }
            });
        let req = ra;
        self.push(out_rc, req.then_some(back), req)
    }

    /// Layer normalization over the last dimension with affine params.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let (vx, vg, vb) = (self.value_rc(x), self.value_rc(gamma), self.value_rc(beta));
        let d = *vx.shape().last().expect("layer_norm needs rank >= 1");
        assert_eq!(vg.shape(), &[d]);
        assert_eq!(vb.shape(), &[d]);
        let rows = vx.numel() / d;
        let mut xhat = Tensor::zeros(vx.shape());
        let mut inv_std = vec![0.0f32; rows];
        let mut out = Tensor::zeros(vx.shape());
        for r in 0..rows {
            let xr = &vx.data()[r * d..(r + 1) * d];
            let mean = xr.iter().sum::<f32>() / d as f32;
            let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[r] = istd;
            let xh = &mut xhat.data_mut()[r * d..(r + 1) * d];
            let o = &mut out.data_mut()[r * d..(r + 1) * d];
            for i in 0..d {
                xh[i] = (xr[i] - mean) * istd;
                o[i] = xh[i] * vg.data()[i] + vb.data()[i];
            }
        }
        let xhat = Rc::new(xhat);
        let (rx, rg, rb) = (
            self.requires_grad(x),
            self.requires_grad(gamma),
            self.requires_grad(beta),
        );
        self.op(
            out,
            &[x, gamma, beta],
            Box::new(move |g, store| {
                if rg {
                    let mut dg = Tensor::zeros(&[d]);
                    for r in 0..rows {
                        let gr = &g.data()[r * d..(r + 1) * d];
                        let xh = &xhat.data()[r * d..(r + 1) * d];
                        for i in 0..d {
                            dg.data_mut()[i] += gr[i] * xh[i];
                        }
                    }
                    store.accumulate(gamma.0, dg);
                }
                if rb {
                    let mut db = Tensor::zeros(&[d]);
                    for r in 0..rows {
                        let gr = &g.data()[r * d..(r + 1) * d];
                        for i in 0..d {
                            db.data_mut()[i] += gr[i];
                        }
                    }
                    store.accumulate(beta.0, db);
                }
                if rx {
                    let mut dx = Tensor::zeros(xhat.shape());
                    for r in 0..rows {
                        let gr = &g.data()[r * d..(r + 1) * d];
                        let xh = &xhat.data()[r * d..(r + 1) * d];
                        // gy = g ⊙ gamma
                        let mut mean_gy = 0.0f32;
                        let mut mean_gy_xh = 0.0f32;
                        for i in 0..d {
                            let gy = gr[i] * vg.data()[i];
                            mean_gy += gy;
                            mean_gy_xh += gy * xh[i];
                        }
                        mean_gy /= d as f32;
                        mean_gy_xh /= d as f32;
                        let dxr = &mut dx.data_mut()[r * d..(r + 1) * d];
                        for i in 0..d {
                            let gy = gr[i] * vg.data()[i];
                            dxr[i] = (gy - mean_gy - xh[i] * mean_gy_xh) * inv_std[r];
                        }
                    }
                    store.accumulate(x.0, dx);
                }
            }),
        )
    }

    /// Add an attention bias `bias[b, t_k]` to scores `[b*heads, t_q, t_k]`
    /// (used to mask padding: bias is 0 for real tokens, −1e9 for padding).
    /// The bias is a constant; gradient flows only to the scores.
    pub fn add_attn_bias(&mut self, scores: Var, bias: &Tensor, heads: usize) -> Var {
        let vs = self.value_rc(scores);
        let [bh, tq, tk] = match vs.shape() {
            [a, b, c] => [*a, *b, *c],
            s => panic!("add_attn_bias expects 3-D scores, got {s:?}"),
        };
        assert_eq!(bh % heads, 0);
        let batch = bh / heads;
        assert_eq!(bias.shape(), &[batch, tk], "bias shape");
        let mut out = (*vs).clone();
        for b in 0..batch {
            let brow = &bias.data()[b * tk..(b + 1) * tk];
            for h in 0..heads {
                let base = (b * heads + h) * tq * tk;
                for q in 0..tq {
                    let row = &mut out.data_mut()[base + q * tk..base + (q + 1) * tk];
                    for (o, &bv) in row.iter_mut().zip(brow) {
                        *o += bv;
                    }
                }
            }
        }
        let rs = self.requires_grad(scores);
        self.op(
            out,
            &[scores],
            Box::new(move |g, store| {
                if rs {
                    store.accumulate(scores.0, g.clone());
                }
            }),
        )
    }

    /// Inverted dropout: at train time zero each element with probability
    /// `p` and scale survivors by `1/(1-p)`; identity at eval time.
    pub fn dropout(&mut self, a: Var, p: f32) -> Var {
        if !self.training || p <= 0.0 {
            return a;
        }
        let va = self.value_rc(a);
        let keep = 1.0 - p;
        let mut mask = Tensor::zeros(va.shape());
        for m in mask.data_mut() {
            *m = if self.next_uniform() < p { 0.0 } else { 1.0 / keep };
        }
        let mask = Rc::new(mask);
        let out = va.zip_map(&mask, |x, m| x * m);
        let ra = self.requires_grad(a);
        self.op(
            out,
            &[a],
            Box::new(move |g, store| {
                if ra {
                    store.accumulate(a.0, g.zip_map(&mask, |gv, m| gv * m));
                }
            }),
        )
    }

    /// Mean over valid tokens per batch row: `x[b,t,:]` → `out[b,:]`,
    /// where `mask[b][t]` marks valid tokens. Rows with no valid tokens
    /// yield zeros.
    pub fn masked_mean_tokens(&mut self, x: Var, mask: &[Vec<bool>]) -> Var {
        let vx = self.value_rc(x);
        let [b, t, d] = match vx.shape() {
            [a, b2, c] => [*a, *b2, *c],
            s => panic!("masked_mean_tokens expects 3-D, got {s:?}"),
        };
        assert_eq!(mask.len(), b);
        let mut out = Tensor::zeros(&[b, d]);
        let mut counts = vec![0usize; b];
        for bi in 0..b {
            assert_eq!(mask[bi].len(), t);
            for ti in 0..t {
                if mask[bi][ti] {
                    counts[bi] += 1;
                    let src = &vx.data()[(bi * t + ti) * d..(bi * t + ti + 1) * d];
                    let dst = &mut out.data_mut()[bi * d..(bi + 1) * d];
                    for (o, &s) in dst.iter_mut().zip(src) {
                        *o += s;
                    }
                }
            }
            if counts[bi] > 0 {
                let inv = 1.0 / counts[bi] as f32;
                for o in &mut out.data_mut()[bi * d..(bi + 1) * d] {
                    *o *= inv;
                }
            }
        }
        let mask_owned: Vec<Vec<bool>> = mask.to_vec();
        let rx = self.requires_grad(x);
        self.op(
            out,
            &[x],
            Box::new(move |g, store| {
                if rx {
                    let mut gx = Tensor::zeros(&[b, t, d]);
                    for bi in 0..b {
                        let cnt = mask_owned[bi].iter().filter(|&&m| m).count();
                        if cnt == 0 {
                            continue;
                        }
                        let inv = 1.0 / cnt as f32;
                        for ti in 0..t {
                            if mask_owned[bi][ti] {
                                let dst = &mut gx.data_mut()
                                    [(bi * t + ti) * d..(bi * t + ti + 1) * d];
                                let src = &g.data()[bi * d..(bi + 1) * d];
                                for (o, &s) in dst.iter_mut().zip(src) {
                                    *o += s * inv;
                                }
                            }
                        }
                    }
                    store.accumulate(x.0, gx);
                }
            }),
        )
    }

    // -- embeddings ---------------------------------------------------------

    /// Row gather from an embedding table: `out[i] = table[ids[i]]`.
    pub fn embedding(&mut self, table: Var, ids: Vec<u32>) -> Var {
        let vt = self.value_rc(table);
        let (v, d) = (vt.shape()[0], vt.shape()[1]);
        let mut out = Tensor::zeros(&[ids.len(), d]);
        for (o, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < v, "embedding id {id} out of range {v}");
            out.data_mut()[o * d..(o + 1) * d].copy_from_slice(&vt.data()[id * d..(id + 1) * d]);
        }
        let rt = self.requires_grad(table);
        self.op(
            out,
            &[table],
            Box::new(move |g, store| {
                if rt {
                    let mut gt = Tensor::zeros(&[v, d]);
                    for (o, &id) in ids.iter().enumerate() {
                        let id = id as usize;
                        let src = &g.data()[o * d..(o + 1) * d];
                        let dst = &mut gt.data_mut()[id * d..(id + 1) * d];
                        for (t, &s) in dst.iter_mut().zip(src) {
                            *t += s;
                        }
                    }
                    store.accumulate(table.0, gt);
                }
            }),
        )
    }

    // -- losses -------------------------------------------------------------

    /// Mean cross-entropy over rows of `logits[n, c]` with integer targets;
    /// rows whose target is [`IGNORE_INDEX`] contribute nothing.
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: Vec<i64>) -> Var {
        let vl = self.value_rc(logits);
        let (n, c) = (vl.shape()[0], vl.shape()[1]);
        assert_eq!(targets.len(), n, "one target per row");
        let mut probs = Tensor::zeros(&[n, c]);
        let mut loss = 0.0f64;
        let mut valid = 0usize;
        for i in 0..n {
            let row = &vl.data()[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            let prow = &mut probs.data_mut()[i * c..(i + 1) * c];
            for (p, &x) in prow.iter_mut().zip(row) {
                *p = (x - m).exp();
                z += *p;
            }
            for p in prow.iter_mut() {
                *p /= z;
            }
            let t = targets[i];
            if t != IGNORE_INDEX {
                assert!((0..c as i64).contains(&t), "target {t} out of range {c}");
                valid += 1;
                loss -= (prow[t as usize].max(1e-12) as f64).ln();
            }
        }
        let valid = valid.max(1);
        let out = Tensor::scalar((loss / valid as f64) as f32);
        let probs = Rc::new(probs);
        let rl = self.requires_grad(logits);
        self.op(
            out,
            &[logits],
            Box::new(move |g, store| {
                if rl {
                    let gs = g.item() / valid as f32;
                    let mut gl = Tensor::zeros(&[n, c]);
                    for i in 0..n {
                        let t = targets[i];
                        if t == IGNORE_INDEX {
                            continue;
                        }
                        let prow = &probs.data()[i * c..(i + 1) * c];
                        let grow = &mut gl.data_mut()[i * c..(i + 1) * c];
                        for (gv, &p) in grow.iter_mut().zip(prow) {
                            *gv = p * gs;
                        }
                        grow[t as usize] -= gs;
                    }
                    store.accumulate(logits.0, gl);
                }
            }),
        )
    }

    /// Mean squared error against constant targets (same shape).
    pub fn mse_loss(&mut self, pred: Var, targets: Tensor) -> Var {
        let vp = self.value_rc(pred);
        assert_eq!(vp.shape(), targets.shape(), "mse target shape");
        let n = vp.numel().max(1);
        let loss = vp
            .data()
            .iter()
            .zip(targets.data())
            .map(|(&p, &t)| {
                let d = (p - t) as f64;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let rp = self.requires_grad(pred);
        self.op(
            Tensor::scalar(loss as f32),
            &[pred],
            Box::new(move |g, store| {
                if rp {
                    let gs = g.item() * 2.0 / n as f32;
                    store.accumulate(pred.0, vp.zip_map(&targets, |p, t| gs * (p - t)));
                }
            }),
        )
    }

    /// Mean binary cross-entropy with logits against constant multi-hot
    /// targets (numerically stable formulation).
    pub fn bce_with_logits(&mut self, logits: Var, targets: Tensor) -> Var {
        let vl = self.value_rc(logits);
        assert_eq!(vl.shape(), targets.shape(), "bce target shape");
        let n = vl.numel().max(1);
        let loss = vl
            .data()
            .iter()
            .zip(targets.data())
            .map(|(&z, &y)| {
                (z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()) as f64
            })
            .sum::<f64>()
            / n as f64;
        let rl = self.requires_grad(logits);
        self.op(
            Tensor::scalar(loss as f32),
            &[logits],
            Box::new(move |g, store| {
                if rl {
                    let gs = g.item() / n as f32;
                    store.accumulate(
                        logits.0,
                        vl.zip_map(&targets, |z, y| {
                            let sig = 1.0 / (1.0 + (-z).exp());
                            gs * (sig - y)
                        }),
                    );
                }
            }),
        )
    }

    /// Mean of all elements (occasionally useful as a probe loss).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let va = self.value_rc(a);
        let n = va.numel().max(1);
        let out = Tensor::scalar(va.sum() / n as f32);
        let ra = self.requires_grad(a);
        self.op(
            out,
            &[a],
            Box::new(move |g, store| {
                if ra {
                    let gs = g.item() / n as f32;
                    store.accumulate(a.0, Tensor::full(va.shape(), gs));
                }
            }),
        )
    }
}
