//! AdamW optimizer with linear warmup / linear decay scheduling.

use crate::params::ParamStore;
use std::rc::Rc;

/// AdamW (decoupled weight decay), the optimizer BERT-style models use.
pub struct AdamW {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    step: u64,
}

impl AdamW {
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.01, step: 0 }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Apply one update using the gradients accumulated in the store.
    /// The caller is responsible for `zero_grads` afterwards.
    pub fn step(&mut self, store: &mut ParamStore, lr_scale: f32) {
        self.step += 1;
        let lr = self.lr * lr_scale;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for p in store.params_mut() {
            if p.frozen {
                continue;
            }
            // The tape from the producing forward pass must be dropped by
            // now; then the Rc is unique and make_mut updates in place.
            let value = Rc::make_mut(&mut p.value);
            let wd = if p.decay { self.weight_decay } else { 0.0 };
            let g = p.grad.data();
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            let w = value.data_mut();
            for i in 0..g.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                w[i] -= lr * (mhat / (vhat.sqrt() + self.eps) + wd * w[i]);
            }
        }
    }
}

/// Linear warmup to 1.0 over `warmup` steps, then linear decay to 0 at
/// `total` steps (the BERT fine-tuning schedule). Returns the LR *scale*.
#[derive(Debug, Clone, Copy)]
pub struct LinearSchedule {
    pub warmup: u64,
    pub total: u64,
}

impl LinearSchedule {
    pub fn scale(&self, step: u64) -> f32 {
        if self.total == 0 {
            return 1.0;
        }
        if step < self.warmup {
            return (step + 1) as f32 / self.warmup.max(1) as f32;
        }
        let remain = self.total.saturating_sub(step) as f32;
        let span = self.total.saturating_sub(self.warmup).max(1) as f32;
        (remain / span).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Tensor;

    #[test]
    fn adamw_minimizes_quadratic() {
        // minimize f(w) = mean((w - t)^2) toward t = [3, -2].
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(&[2]), false);
        let target = Tensor::from_vec(vec![2], vec![3.0, -2.0]);
        let mut opt = AdamW::new(0.1).with_weight_decay(0.0);
        for _ in 0..500 {
            let mut tape = Tape::new(true, 1);
            let w = store.use_param(&mut tape, id);
            let loss = tape.mse_loss(w, target.clone());
            let grads = tape.backward(loss);
            store.absorb_grads(&tape, &grads);
            drop(tape);
            opt.step(&mut store, 1.0);
            store.zero_grads();
        }
        let w = store.value(id).data();
        assert!((w[0] - 3.0).abs() < 0.05, "w0={}", w[0]);
        assert!((w[1] + 2.0).abs() < 0.05, "w1={}", w[1]);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1], vec![5.0]), true);
        let mut opt = AdamW::new(0.01).with_weight_decay(0.5);
        for _ in 0..100 {
            // zero gradient; only decay acts
            opt.step(&mut store, 1.0);
        }
        assert!(store.value(id).data()[0] < 5.0);
    }

    #[test]
    fn schedule_shape() {
        let s = LinearSchedule { warmup: 10, total: 110 };
        assert!(s.scale(0) <= 0.11);
        assert!((s.scale(9) - 1.0).abs() < 1e-6);
        assert!(s.scale(60) < 1.0);
        assert!(s.scale(60) > s.scale(100));
        assert_eq!(s.scale(110), 0.0);
        assert_eq!(s.scale(9999), 0.0);
        let degenerate = LinearSchedule { warmup: 0, total: 0 };
        assert_eq!(degenerate.scale(5), 1.0);
    }
}
