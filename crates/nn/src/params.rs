//! Named parameter storage shared between modules, tapes and optimizers.
//!
//! Parameter values live behind `Rc<Tensor>`: each forward pass clones the
//! `Rc` into a tape leaf (cheap), and the optimizer mutates in place via
//! `Rc::make_mut` once the tape is dropped (so no copy happens in steady
//! state either).

use crate::tape::{GradStore, Tape, Var};
use crate::tensor::Tensor;
use std::rc::Rc;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(pub(crate) usize);

pub(crate) struct Param {
    pub name: String,
    pub value: Rc<Tensor>,
    pub grad: Tensor,
    /// AdamW first/second moment state.
    pub m: Tensor,
    pub v: Tensor,
    /// Whether weight decay applies (disabled for biases, LayerNorm, and
    /// embedding tables, following standard BERT practice).
    pub decay: bool,
    /// Frozen parameters are skipped by the optimizer (used by the
    /// TAPAS/TABBIE-style baselines whose encoders stay fixed while the
    /// task head trains).
    pub frozen: bool,
}

/// All trainable parameters of a model.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tensor as a trainable parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor, decay: bool) -> ParamId {
        let shape = value.shape().to_vec();
        self.params.push(Param {
            name: name.into(),
            value: Rc::new(value),
            grad: Tensor::zeros(&shape),
            m: Tensor::zeros(&shape),
            v: Tensor::zeros(&shape),
            decay,
            frozen: false,
        });
        ParamId(self.params.len() - 1)
    }

    /// Freeze every parameter whose name starts with `prefix`. Returns the
    /// number of parameters affected.
    pub fn freeze_prefix(&mut self, prefix: &str) -> usize {
        let mut n = 0;
        for p in &mut self.params {
            if p.name.starts_with(prefix) {
                p.frozen = true;
                n += 1;
            }
        }
        n
    }

    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.params[id.0].frozen
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// Create the tape leaf for a parameter.
    pub fn use_param(&self, tape: &mut Tape, id: ParamId) -> Var {
        tape.param(Rc::clone(&self.params[id.0].value), id.0)
    }

    /// After `tape.backward`, move parameter gradients from the grad store
    /// into the persistent `grad` buffers (accumulating across micro-steps).
    pub fn absorb_grads(&mut self, tape: &Tape, grads: &GradStore) {
        for &(pid, var) in &tape.param_links {
            if let Some(g) = grads.get(var) {
                self.params[pid].grad.add_assign(g);
            }
        }
    }

    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill(0.0);
        }
    }

    /// Global gradient L2 norm (for clipping diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params.iter().map(|p| p.grad.sq_l2_norm()).sum::<f32>().sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_assign(s);
            }
        }
        norm
    }

    pub(crate) fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// Overwrite a parameter's value (checkpoint loading).
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            value.shape(),
            self.params[id.0].value.shape(),
            "checkpoint shape mismatch for {}",
            self.params[id.0].name
        );
        self.params[id.0].value = Rc::new(value);
    }

    pub fn iter_named(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|p| (p.name.as_str(), &*p.value))
    }

    pub fn id_by_name(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(&[2, 3]), true);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 6);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.id_by_name("w"), Some(id));
        assert_eq!(s.id_by_name("nope"), None);
    }

    #[test]
    fn grads_flow_through_tape() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::from_vec(vec![2], vec![1.0, 2.0]), true);
        let mut tape = Tape::new(false, 0);
        let w = s.use_param(&mut tape, id);
        let loss = tape.mean_all(w);
        let grads = tape.backward(loss);
        s.absorb_grads(&tape, &grads);
        assert_eq!(s.grad(id).data(), &[0.5, 0.5]);
        // Absorbing twice accumulates.
        s.absorb_grads(&tape, &grads);
        assert_eq!(s.grad(id).data(), &[1.0, 1.0]);
        s.zero_grads();
        assert_eq!(s.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clipping() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(&[2]), true);
        s.params_mut()[0].grad = Tensor::from_vec(vec![2], vec![3.0, 4.0]);
        let norm = s.clip_grad_norm(1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((s.grad(id).data()[0] - 0.6).abs() < 1e-6);
        assert!((s.grad(id).data()[1] - 0.8).abs() < 1e-6);
    }
}
