//! Reverse-mode autodiff on a linear tape.
//!
//! Every forward pass builds a fresh [`Tape`]; nodes hold `Rc<Tensor>`
//! values so parameters are shared with the [`crate::params::ParamStore`]
//! without copying. Backward walks the tape in reverse, each node's
//! recorded closure scattering into a per-node gradient slot.

use crate::tensor::Tensor;
use std::rc::Rc;

/// Handle to a tape node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Gradient slots, indexed by node id.
pub struct GradStore {
    grads: Vec<Option<Tensor>>,
}

impl GradStore {
    /// Accumulate `delta` into node `i`'s gradient.
    pub fn accumulate(&mut self, i: usize, delta: Tensor) {
        match &mut self.grads[i] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }
}

/// A backward closure: scatters `dL/dout` into parents' gradient slots.
pub type BackFn = Box<dyn Fn(&Tensor, &mut GradStore)>;

struct Node {
    value: Rc<Tensor>,
    /// None for constants/leaves; Some for ops (and for leaves we still
    /// want `None` — their gradient is read out directly).
    backward: Option<BackFn>,
    /// Whether gradients should flow to/through this node.
    requires_grad: bool,
}

/// A single forward pass's computation graph.
pub struct Tape {
    nodes: Vec<Node>,
    /// Parameter links: (param id in the store, leaf node).
    pub(crate) param_links: Vec<(usize, Var)>,
    /// Training mode (enables dropout).
    pub training: bool,
    /// Internal RNG state for dropout masks (xorshift64*).
    pub(crate) rng_state: u64,
}

impl Tape {
    pub fn new(training: bool, seed: u64) -> Self {
        Tape {
            nodes: Vec::with_capacity(256),
            param_links: Vec::new(),
            training,
            rng_state: seed | 1,
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub(crate) fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform f32 in [0,1).
    pub(crate) fn next_uniform(&mut self) -> f32 {
        (self.next_rand() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// A constant: no gradient flows to it.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(Rc::new(t), None, false)
    }

    /// A differentiable leaf (inputs under grad-check, parameters).
    pub fn leaf(&mut self, t: Rc<Tensor>) -> Var {
        self.push(t, None, true)
    }

    /// Register a parameter leaf; its gradient is collected into the store
    /// by [`crate::params::ParamStore::absorb_grads`].
    pub fn param(&mut self, value: Rc<Tensor>, param_id: usize) -> Var {
        let v = self.push(value, None, true);
        self.param_links.push((param_id, v));
        v
    }

    pub(crate) fn push(
        &mut self,
        value: Rc<Tensor>,
        backward: Option<BackFn>,
        requires_grad: bool,
    ) -> Var {
        self.nodes.push(Node { value, backward, requires_grad });
        Var(self.nodes.len() - 1)
    }

    /// Record an op node. `backward` receives (grad_out, grad_store).
    pub(crate) fn op(
        &mut self,
        value: Tensor,
        parents: &[Var],
        backward: BackFn,
    ) -> Var {
        let requires_grad = parents.iter().any(|p| self.nodes[p.0].requires_grad);
        let back = requires_grad.then_some(backward);
        self.push(Rc::new(value), back, requires_grad)
    }

    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    pub(crate) fn value_rc(&self, v: Var) -> Rc<Tensor> {
        Rc::clone(&self.nodes[v.0].value)
    }

    pub fn requires_grad(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Run reverse-mode accumulation from a scalar loss.
    pub fn backward(&self, loss: Var) -> GradStore {
        assert_eq!(self.value(loss).numel(), 1, "backward() needs a scalar loss");
        let mut store = GradStore { grads: vec![None; self.nodes.len()] };
        store.grads[loss.0] = Some(Tensor::full(self.value(loss).shape(), 1.0));
        for i in (0..=loss.0).rev() {
            if store.grads[i].is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            if let Some(back) = &self.nodes[i].backward {
                let g = store.grads[i].take().expect("present");
                back(&g, &mut store);
                store.grads[i] = Some(g);
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_gets_no_grad() {
        let mut t = Tape::new(false, 1);
        let c = t.constant(Tensor::scalar(3.0));
        assert!(!t.requires_grad(c));
        let l = t.leaf(Rc::new(Tensor::scalar(2.0)));
        assert!(t.requires_grad(l));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Tape::new(true, 42);
        let mut b = Tape::new(true, 42);
        for _ in 0..10 {
            assert_eq!(a.next_rand(), b.next_rand());
        }
        let u = a.next_uniform();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let mut t = Tape::new(false, 1);
        let x = t.leaf(Rc::new(Tensor::zeros(&[2])));
        t.backward(x);
    }
}
