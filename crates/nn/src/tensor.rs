//! Dense row-major `f32` tensors and the raw kernels the autograd ops use.
//!
//! Shapes are small (this workload is a scaled-down BERT encoder), so the
//! kernels favour clarity and cache-friendly loop orders over SIMD
//! intrinsics; the `ikj` matmul order lets LLVM vectorize the inner row
//! accumulation.

use rand::Rng;

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} incompatible with {} elements",
            data.len()
        );
        Self { shape, data }
    }

    pub fn zeros(shape: &[usize]) -> Self {
        Self { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    pub fn full(shape: &[usize], v: f32) -> Self {
        Self { shape: shape.to_vec(), data: vec![v; shape.iter().product()] }
    }

    pub fn scalar(v: f32) -> Self {
        Self { shape: vec![], data: vec![v] }
    }

    /// i.i.d. normal entries scaled by `std`.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        // Box-Muller; avoids pulling in rand_distr.
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let th = 2.0 * std::f32::consts::PI * u2;
            data.push(r * th.cos() * std);
            if data.len() < n {
                data.push(r * th.sin() * std);
            }
        }
        Self { shape: shape.to_vec(), data }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on non-scalar {:?}", self.shape);
        self.data[0]
    }

    /// Reinterpret with a new shape (same element count, same order).
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "elementwise shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    pub fn scale_assign(&mut self, c: f32) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    pub fn sq_l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_of(&self.shape)
    }
}

pub fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

// ---------------------------------------------------------------------------
// Matmul kernels. Names: n = as-is, t = transposed operand.
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] · B[k,n]  (ikj loop order; inner loop over contiguous
/// rows of B and C auto-vectorizes).
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (&[m, k], &[k2, n]) = (&a.shape[..], &b.shape[..]) else {
        panic!("matmul expects 2-D, got {:?} x {:?}", a.shape, b.shape)
    };
    assert_eq!(k, k2, "matmul inner dims: {:?} x {:?}", a.shape, b.shape);
    let mut c = vec![0.0f32; m * n];
    matmul_into(&a.data, &b.data, &mut c, m, k, n);
    Tensor { shape: vec![m, n], data: c }
}

#[inline]
fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (l, &a_il) in a_row.iter().enumerate() {
            if a_il == 0.0 {
                continue;
            }
            let b_row = &b[l * n..(l + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_il * bv;
            }
        }
    }
}

/// C[m,n] = Aᵀ[m,k] · B[k,n] where A is stored as [k,m].
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (&[k, m], &[k2, n]) = (&a.shape[..], &b.shape[..]) else {
        panic!("matmul_tn expects 2-D")
    };
    assert_eq!(k, k2, "matmul_tn inner dims");
    let mut c = vec![0.0f32; m * n];
    for l in 0..k {
        let a_row = &a.data[l * m..(l + 1) * m];
        let b_row = &b.data[l * n..(l + 1) * n];
        for (i, &a_li) in a_row.iter().enumerate() {
            if a_li == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_li * bv;
            }
        }
    }
    Tensor { shape: vec![m, n], data: c }
}

/// C[m,n] = A[m,k] · Bᵀ[k,n] where B is stored as [n,k].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (&[m, k], &[n, k2]) = (&a.shape[..], &b.shape[..]) else {
        panic!("matmul_nt expects 2-D")
    };
    assert_eq!(k, k2, "matmul_nt inner dims");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a.data[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b.data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] = acc;
        }
    }
    Tensor { shape: vec![m, n], data: c }
}

/// Batched matmul: C[b,m,n] = A[b,m,k] · B[b,k,n].
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    let (&[ba, m, k], &[bb, k2, n]) = (&a.shape[..], &b.shape[..]) else {
        panic!("bmm expects 3-D, got {:?} x {:?}", a.shape, b.shape)
    };
    assert_eq!(ba, bb, "bmm batch dims");
    assert_eq!(k, k2, "bmm inner dims");
    let mut c = vec![0.0f32; ba * m * n];
    for bi in 0..ba {
        matmul_into(
            &a.data[bi * m * k..(bi + 1) * m * k],
            &b.data[bi * k * n..(bi + 1) * k * n],
            &mut c[bi * m * n..(bi + 1) * m * n],
            m,
            k,
            n,
        );
    }
    Tensor { shape: vec![ba, m, n], data: c }
}

/// Batched: C[b,m,n] = A[b,m,k] · Bᵀ where B is stored [b,n,k].
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (&[ba, m, k], &[bb, n, k2]) = (&a.shape[..], &b.shape[..]) else {
        panic!("bmm_nt expects 3-D")
    };
    assert_eq!(ba, bb);
    assert_eq!(k, k2);
    let mut c = vec![0.0f32; ba * m * n];
    for bi in 0..ba {
        let ab = &a.data[bi * m * k..(bi + 1) * m * k];
        let bb_ = &b.data[bi * n * k..(bi + 1) * n * k];
        let cb = &mut c[bi * m * n..(bi + 1) * m * n];
        for i in 0..m {
            let a_row = &ab[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &bb_[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                cb[i * n + j] = acc;
            }
        }
    }
    Tensor { shape: vec![ba, m, n], data: c }
}

/// Batched: C[b,m,n] = Aᵀ · B[b,k,n] where A is stored [b,k,m].
pub fn bmm_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (&[ba, k, m], &[bb, k2, n]) = (&a.shape[..], &b.shape[..]) else {
        panic!("bmm_tn expects 3-D")
    };
    assert_eq!(ba, bb);
    assert_eq!(k, k2);
    let mut c = vec![0.0f32; ba * m * n];
    for bi in 0..ba {
        let ab = &a.data[bi * k * m..(bi + 1) * k * m];
        let bb_ = &b.data[bi * k * n..(bi + 1) * k * n];
        let cb = &mut c[bi * m * n..(bi + 1) * m * n];
        for l in 0..k {
            let a_row = &ab[l * m..(l + 1) * m];
            let b_row = &bb_[l * n..(l + 1) * n];
            for (i, &a_li) in a_row.iter().enumerate() {
                if a_li == 0.0 {
                    continue;
                }
                let c_row = &mut cb[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += a_li * bv;
                }
            }
        }
    }
    Tensor { shape: vec![ba, m, n], data: c }
}

/// Permute tensor dimensions (generic, up to small ranks).
pub fn permute(t: &Tensor, perm: &[usize]) -> Tensor {
    assert_eq!(perm.len(), t.shape.len(), "perm rank mismatch");
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(!seen[p], "perm {perm:?} repeats axes");
        seen[p] = true;
    }
    let new_shape: Vec<usize> = perm.iter().map(|&p| t.shape[p]).collect();
    let old_strides = t.strides();
    let new_strides_in_old: Vec<usize> = perm.iter().map(|&p| old_strides[p]).collect();
    let mut data = vec![0.0f32; t.numel()];
    let mut idx = vec![0usize; perm.len()];
    for slot in data.iter_mut() {
        let mut off = 0;
        for (i, &ix) in idx.iter().enumerate() {
            off += ix * new_strides_in_old[i];
        }
        *slot = t.data[off];
        // increment odometer
        for d in (0..idx.len()).rev() {
            idx[d] += 1;
            if idx[d] < new_shape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    Tensor { shape: new_shape, data }
}

/// Inverse of a permutation.
pub fn inverse_perm(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t2(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(vec![rows, cols], v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t2(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t2(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_variants_agree() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let c = matmul(&a, &b);
        let at = permute(&a, &[1, 0]);
        let bt = permute(&b, &[1, 0]);
        let c_tn = matmul_tn(&at, &b);
        let c_nt = matmul_nt(&a, &bt);
        for i in 0..c.numel() {
            assert!((c.data()[i] - c_tn.data()[i]).abs() < 1e-5);
            assert!((c.data()[i] - c_nt.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[3, 2, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 4, 5], 1.0, &mut rng);
        let c = bmm(&a, &b);
        for bi in 0..3 {
            let a2 = Tensor::from_vec(vec![2, 4], a.data()[bi * 8..(bi + 1) * 8].to_vec());
            let b2 = Tensor::from_vec(vec![4, 5], b.data()[bi * 20..(bi + 1) * 20].to_vec());
            let c2 = matmul(&a2, &b2);
            assert_eq!(&c.data()[bi * 10..(bi + 1) * 10], c2.data());
        }
    }

    #[test]
    fn bmm_transposed_variants_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[2, 3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[2, 4, 5], 1.0, &mut rng);
        let c = bmm(&a, &b);
        let at = permute(&a, &[0, 2, 1]);
        let bt = permute(&b, &[0, 2, 1]);
        let c_tn = bmm_tn(&at, &b);
        let c_nt = bmm_nt(&a, &bt);
        for i in 0..c.numel() {
            assert!((c.data()[i] - c_tn.data()[i]).abs() < 1e-5);
            assert!((c.data()[i] - c_nt.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn permute_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[2, 3, 4, 5], 1.0, &mut rng);
        let p = [2, 0, 3, 1];
        let y = permute(&x, &p);
        assert_eq!(y.shape(), &[4, 2, 5, 3]);
        let back = permute(&y, &inverse_perm(&p));
        assert_eq!(back, x);
    }

    #[test]
    fn permute_2d_is_transpose() {
        let a = t2(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let at = permute(&a, &[1, 0]);
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = x.sum() / 10_000.0;
        let var = x.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn strides() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[5]), vec![1]);
        assert_eq!(strides_of(&[]), Vec::<usize>::new());
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(m in 1usize..6, k in 1usize..6) {
            let mut rng = StdRng::seed_from_u64(9);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let mut eye = Tensor::zeros(&[k, k]);
            for i in 0..k { eye.data_mut()[i * k + i] = 1.0; }
            let c = matmul(&a, &eye);
            prop_assert_eq!(c.data(), a.data());
        }

        #[test]
        fn prop_matmul_linear_in_a(m in 1usize..5, k in 1usize..5, n in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(10);
            let a1 = Tensor::randn(&[m, k], 1.0, &mut rng);
            let a2 = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let lhs = matmul(&a1.zip_map(&a2, |x, y| x + y), &b);
            let mut rhs = matmul(&a1, &b);
            rhs.add_assign(&matmul(&a2, &b));
            for i in 0..lhs.numel() {
                prop_assert!((lhs.data()[i] - rhs.data()[i]).abs() < 1e-4);
            }
        }
    }
}
