//! Finite-difference gradient checks for every differentiable op, plus an
//! end-to-end "can it learn" test for the full encoder stack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsfm_nn::gradcheck::check_gradients;
use tsfm_nn::layers::{attn_bias_from_lengths, EncoderConfig, Pooler, TransformerEncoder};
use tsfm_nn::tensor::Tensor;
use tsfm_nn::{AdamW, ParamStore, Tape};

fn randn(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, 1.0, &mut rng)
}

#[test]
fn grad_add_sub_mul_scale() {
    let x = randn(&[3, 4], 1);
    let other = randn(&[3, 4], 2);
    for (name, f) in [
        ("add", 0usize),
        ("sub", 1),
        ("mul", 2),
        ("scale", 3),
    ] {
        let other = other.clone();
        let res = check_gradients(
            move |t: &mut Tape, v| {
                let c = t.constant(other.clone());
                let y = match f {
                    0 => t.add(v, c),
                    1 => t.sub(v, c),
                    2 => t.mul(v, c),
                    _ => t.scale(v, -2.5),
                };
                t.mean_all(y)
            },
            &x,
            1e-2,
            5e-2,
        );
        assert!(res.is_ok(), "{name}: {res:?}");
    }
}

#[test]
fn grad_mul_second_operand() {
    let x = randn(&[2, 3], 3);
    let a = randn(&[2, 3], 4);
    let res = check_gradients(
        move |t, v| {
            let c = t.constant(a.clone());
            let y = t.mul(c, v);
            t.mean_all(y)
        },
        &x,
        1e-2,
        5e-2,
    );
    assert!(res.is_ok(), "{res:?}");
}

#[test]
fn grad_add_bias_both_sides() {
    let x = randn(&[4, 3], 5);
    let b = randn(&[3], 6);
    let bc = b.clone();
    assert!(check_gradients(
        move |t, v| {
            let bias = t.constant(bc.clone());
            let y = t.add_bias(v, bias);
            t.mean_all(y)
        },
        &x,
        1e-2,
        5e-2
    )
    .is_ok());
    let xc = x;
    assert!(check_gradients(
        move |t, v| {
            let xx = t.constant(xc.clone());
            let y = t.add_bias(xx, v);
            t.mean_all(y)
        },
        &b,
        1e-2,
        5e-2
    )
    .is_ok());
}

#[test]
fn grad_activations() {
    let x = randn(&[3, 5], 7);
    for which in 0..3 {
        let res = check_gradients(
            move |t, v| {
                let y = match which {
                    0 => t.gelu(v),
                    1 => t.tanh(v),
                    _ => t.relu(v),
                };
                t.mean_all(y)
            },
            &x,
            1e-2,
            6e-2,
        );
        assert!(res.is_ok(), "activation {which}: {res:?}");
    }
}

#[test]
fn grad_matmul_both_sides() {
    let a = randn(&[3, 4], 8);
    let b = randn(&[4, 2], 9);
    let bc = b.clone();
    assert!(check_gradients(
        move |t, v| {
            let c = t.constant(bc.clone());
            let y = t.matmul(v, c);
            t.mean_all(y)
        },
        &a,
        1e-2,
        5e-2
    )
    .is_ok());
    let ac = a;
    assert!(check_gradients(
        move |t, v| {
            let c = t.constant(ac.clone());
            let y = t.matmul(c, v);
            t.mean_all(y)
        },
        &b,
        1e-2,
        5e-2
    )
    .is_ok());
}

#[test]
fn grad_bmm_both_sides() {
    let a = randn(&[2, 3, 4], 10);
    let b = randn(&[2, 4, 2], 11);
    let bc = b.clone();
    assert!(check_gradients(
        move |t, v| {
            let c = t.constant(bc.clone());
            let y = t.bmm(v, c);
            t.mean_all(y)
        },
        &a,
        1e-2,
        5e-2
    )
    .is_ok());
    let ac = a;
    assert!(check_gradients(
        move |t, v| {
            let c = t.constant(ac.clone());
            let y = t.bmm(c, v);
            t.mean_all(y)
        },
        &b,
        1e-2,
        5e-2
    )
    .is_ok());
}

#[test]
fn grad_reshape_permute_select_concat() {
    let x = randn(&[2, 3, 4], 12);
    assert!(check_gradients(
        |t, v| {
            let y = t.reshape(v, vec![6, 4]);
            let y = t.permute(y, &[1, 0]);
            let y = t.select_rows(y, vec![0, 2, 2, 3]);
            t.mean_all(y)
        },
        &x,
        1e-2,
        5e-2
    )
    .is_ok());

    let a = randn(&[3, 2], 13);
    let b = randn(&[3, 4], 14);
    let bc = b;
    assert!(check_gradients(
        move |t, v| {
            let c = t.constant(bc.clone());
            let y = t.concat_cols(v, c);
            // weight the two halves differently so both matter
            let w = t.constant(Tensor::from_vec(
                vec![6, 1],
                (0..6).map(|i| i as f32 - 2.0).collect(),
            ));
            let z = t.matmul(y, w);
            t.mean_all(z)
        },
        &a,
        1e-2,
        5e-2
    )
    .is_ok());
}

#[test]
fn grad_softmax_and_layernorm() {
    let x = randn(&[3, 5], 15);
    assert!(check_gradients(
        |t, v| {
            let y = t.softmax_last(v);
            // non-uniform weights: softmax grad vanishes under mean_all
            let w = t.constant(Tensor::from_vec(
                vec![5, 1],
                vec![0.1, -0.4, 1.2, 0.3, -0.7],
            ));
            let z = t.matmul(y, w);
            t.mean_all(z)
        },
        &x,
        5e-3,
        6e-2
    )
    .is_ok());

    let gamma = randn(&[5], 16);
    let beta = randn(&[5], 17);
    let (gc, bc) = (gamma.clone(), beta.clone());
    assert!(check_gradients(
        move |t, v| {
            let g = t.constant(gc.clone());
            let b = t.constant(bc.clone());
            let y = t.layer_norm(v, g, b, 1e-5);
            let w = t.constant(Tensor::from_vec(
                vec![5, 1],
                vec![0.5, -1.0, 0.25, 2.0, -0.3],
            ));
            let z = t.matmul(y, w);
            t.mean_all(z)
        },
        &x,
        5e-3,
        8e-2
    )
    .is_ok());

    // gamma / beta gradients
    let xc = x;
    let bc2 = beta;
    assert!(check_gradients(
        move |t, v| {
            let xx = t.constant(xc.clone());
            let b = t.constant(bc2.clone());
            let y = t.layer_norm(xx, v, b, 1e-5);
            let w = t.constant(Tensor::from_vec(
                vec![5, 1],
                vec![0.5, -1.0, 0.25, 2.0, -0.3],
            ));
            let z = t.matmul(y, w);
            t.mean_all(z)
        },
        &gamma,
        5e-3,
        6e-2
    )
    .is_ok());
}

#[test]
fn grad_embedding() {
    let table = randn(&[6, 4], 18);
    assert!(check_gradients(
        |t, v| {
            let y = t.embedding(v, vec![0, 3, 3, 5]);
            let w = t.constant(Tensor::from_vec(vec![4, 1], vec![1.0, -0.5, 0.25, 2.0]));
            let z = t.matmul(y, w);
            t.mean_all(z)
        },
        &table,
        1e-2,
        5e-2
    )
    .is_ok());
}

#[test]
fn grad_attn_bias_and_masked_mean() {
    let x = randn(&[4, 3, 3], 19); // [B*H, T, T] with B=2, H=2
    let bias = attn_bias_from_lengths(&[3, 2], 3);
    let bc = bias;
    assert!(check_gradients(
        move |t, v| {
            let y = t.add_attn_bias(v, &bc, 2);
            let y = t.softmax_last(y);
            let w = t.constant(Tensor::from_vec(vec![3, 1], vec![0.2, -1.0, 0.7]));
            let y2 = t.reshape(y, vec![12, 3]);
            let z = t.matmul(y2, w);
            t.mean_all(z)
        },
        &x,
        5e-3,
        8e-2
    )
    .is_ok());

    let h = randn(&[2, 3, 4], 20);
    let mask = vec![vec![true, true, false], vec![true, false, false]];
    assert!(check_gradients(
        move |t, v| {
            let y = t.masked_mean_tokens(v, &mask);
            let w = t.constant(Tensor::from_vec(vec![4, 1], vec![1.0, 2.0, -1.0, 0.5]));
            let z = t.matmul(y, w);
            t.mean_all(z)
        },
        &h,
        1e-2,
        5e-2
    )
    .is_ok());
}

#[test]
fn grad_losses() {
    let logits = randn(&[4, 3], 21);
    assert!(check_gradients(
        |t, v| t.cross_entropy_logits(v, vec![0, 2, -100, 1]),
        &logits,
        5e-3,
        6e-2
    )
    .is_ok());

    let pred = randn(&[5], 22);
    let target = randn(&[5], 23);
    assert!(check_gradients(
        move |t, v| t.mse_loss(v, target.clone()),
        &pred,
        1e-2,
        5e-2
    )
    .is_ok());

    let z = randn(&[3, 4], 24);
    let y = Tensor::from_vec(
        vec![3, 4],
        vec![1., 0., 0., 1., 0., 1., 1., 0., 0., 0., 1., 1.],
    );
    assert!(check_gradients(
        move |t, v| t.bce_with_logits(v, y.clone()),
        &z,
        5e-3,
        6e-2
    )
    .is_ok());
}

#[test]
fn grad_full_encoder_input() {
    // Gradient flows correctly through a whole (tiny) transformer layer.
    let mut rng = StdRng::seed_from_u64(99);
    let mut store = ParamStore::new();
    let cfg = EncoderConfig { d_model: 8, heads: 2, d_ff: 16, layers: 1, dropout: 0.0 };
    let enc = TransformerEncoder::new(&mut store, "enc", cfg, &mut rng);
    let bias = attn_bias_from_lengths(&[4, 2], 4);
    let x = randn(&[2, 4, 8], 25);
    let res = check_gradients(
        move |t, v| {
            let h = enc.forward(t, &store, v, &bias);
            let w = t.constant(Tensor::from_vec(
                vec![8, 1],
                (0..8).map(|i| (i as f32 - 3.5) * 0.3).collect(),
            ));
            let h2 = t.reshape(h, vec![8, 8]);
            let z = t.matmul(h2, w);
            t.mean_all(z)
        },
        &x,
        1e-2,
        1e-1,
    );
    assert!(res.is_ok(), "{res:?}");
}

#[test]
fn tiny_encoder_learns_token_classification() {
    // End-to-end: a 1-layer encoder + pooler learns to classify sequences
    // by whether token id 1 appears anywhere (needs attention to work).
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let cfg = EncoderConfig { d_model: 16, heads: 2, d_ff: 32, layers: 1, dropout: 0.0 };
    let emb = tsfm_nn::Embedding::new(&mut store, "emb", 8, cfg.d_model, &mut rng);
    let enc = TransformerEncoder::new(&mut store, "enc", cfg.clone(), &mut rng);
    let pool = Pooler::new(&mut store, "pool", cfg.d_model, &mut rng);
    let head = tsfm_nn::Linear::new(&mut store, "head", cfg.d_model, 2, &mut rng);

    let t_len = 5usize;
    let make_batch = |rng: &mut StdRng| {
        use rand::Rng;
        let b = 16;
        let mut ids = Vec::with_capacity(b * t_len);
        let mut labels = Vec::with_capacity(b);
        for _ in 0..b {
            let positive: bool = rng.gen_bool(0.5);
            let mut seq: Vec<u32> = (0..t_len).map(|_| rng.gen_range(2..8)).collect();
            if positive {
                let pos = rng.gen_range(1..t_len);
                seq[pos] = 1;
            }
            seq[0] = 0; // CLS-like anchor
            ids.extend(seq);
            labels.push(positive as i64);
        }
        (ids, labels, b)
    };

    let mut opt = AdamW::new(3e-3);
    let mut last_loss = f32::INFINITY;
    for step in 0..60 {
        let (ids, labels, b) = make_batch(&mut rng);
        let mut tape = Tape::new(true, step as u64);
        let x = emb.forward(&mut tape, &store, ids);
        let x = tape.reshape(x, vec![b, t_len, cfg.d_model]);
        let bias = attn_bias_from_lengths(&vec![t_len; b], t_len);
        let h = enc.forward(&mut tape, &store, x, &bias);
        let p = pool.forward(&mut tape, &store, h);
        let logits = head.forward(&mut tape, &store, p);
        let loss = tape.cross_entropy_logits(logits, labels);
        last_loss = tape.value(loss).item();
        let grads = tape.backward(loss);
        store.absorb_grads(&tape, &grads);
        drop(tape);
        store.clip_grad_norm(1.0);
        opt.step(&mut store, 1.0);
        store.zero_grads();
    }
    assert!(
        last_loss < 0.35,
        "encoder failed to learn a trivial attention task: loss={last_loss}"
    );
}
