//! Property tests for the `TSFMCKP1` checkpoint format: a random
//! [`ParamStore`] survives save → load bitwise, and truncated or garbled
//! files come back as `Err` — never a panic — so a corrupt checkpoint on
//! disk can always be reported instead of crashing a training run.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tsfm_nn::io::{load_params, read_checkpoint, save_params};
use tsfm_nn::{ParamStore, Tensor};

/// A unique temp path per call (cases run back to back within a process).
fn tmp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join("tsfm_nn_io_property");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}_{}_{n}.ckpt", std::process::id()))
}

/// Build a store with `n_params` random tensors of random small shapes.
fn random_store(n_params: usize, seed: u64) -> ParamStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    for i in 0..n_params {
        // Vary rank 1..=3 and dims 1..=5 from the seeded rng stream.
        let rank = 1 + (seed as usize + i) % 3;
        let shape: Vec<usize> = (0..rank).map(|d| 1 + (seed as usize + i + d * 7) % 5).collect();
        store.add(format!("layer{i}.w"), Tensor::randn(&shape, 1.0, &mut rng), i % 2 == 0);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// save → load restores every tensor bitwise into a fresh store.
    #[test]
    fn prop_roundtrip_bitwise(n_params in 0usize..8, seed in 0u64..1_000_000) {
        let store = random_store(n_params, seed);
        let path = tmp_path("roundtrip");
        save_params(&store, &path).expect("save");

        // A fresh store with the same names but zeroed values.
        let mut fresh = ParamStore::new();
        for (name, t) in store.iter_named() {
            fresh.add(name.to_string(), Tensor::zeros(t.shape()), true);
        }
        let loaded = load_params(&mut fresh, &path).expect("load");
        prop_assert_eq!(loaded, store.len());
        for (name, t) in store.iter_named() {
            let id = fresh.id_by_name(name).expect("name survives");
            let got = fresh.value(id);
            prop_assert_eq!(got.shape(), t.shape());
            // Bitwise equality, not approximate: compare the raw bits.
            for (a, b) in got.data().iter().zip(t.data()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Every strict prefix of a checkpoint is rejected with `Err`.
    #[test]
    fn prop_truncation_is_err(n_params in 0usize..5, seed in 0u64..1_000_000, frac in 0.0f64..1.0) {
        let store = random_store(n_params, seed);
        let path = tmp_path("trunc");
        save_params(&store, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read back");
        let cut = ((bytes.len() as f64) * frac) as usize; // < len since frac < 1
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        prop_assert!(read_checkpoint(&path).is_err(), "prefix of {} bytes accepted", cut);
        std::fs::remove_file(&path).ok();
    }

    /// Flipping bytes anywhere must never panic; corrupting the header
    /// (magic or the count/name-length fields) must yield `Err`.
    #[test]
    fn prop_garbling_never_panics(seed in 0u64..1_000_000, pos_seed in 0usize..10_000, flip in 1u16..256) {
        let store = random_store(3, seed);
        let path = tmp_path("garble");
        save_params(&store, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read back");
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip as u8;
        std::fs::write(&path, &bytes).expect("write garbled");
        // Whatever happened to the bytes, reading must return, not panic.
        let result = read_checkpoint(&path);
        if pos < 8 {
            prop_assert!(result.is_err(), "corrupt magic accepted");
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn garbled_header_fields_rejected() {
    let store = random_store(2, 7);
    let path = tmp_path("header");
    save_params(&store, &path).expect("save");
    let good = std::fs::read(&path).expect("read back");

    // Absurd param count: claims 2^32-1 entries → EOF mid-parse.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bad).unwrap();
    assert!(read_checkpoint(&path).is_err());

    // Absurd name length on the first param.
    let mut bad = good;
    bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bad).unwrap();
    assert!(read_checkpoint(&path).is_err());

    // Empty file.
    std::fs::write(&path, b"").unwrap();
    assert!(read_checkpoint(&path).is_err());
    std::fs::remove_file(&path).ok();
}
