//! Property-based tests for the autograd substrate: gradients of random
//! op compositions must match finite differences, and checkpoint parsing
//! must reject corrupted files rather than misread them.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsfm_nn::gradcheck::check_gradients;
use tsfm_nn::io::{read_checkpoint, save_params};
use tsfm_nn::tensor::Tensor;
use tsfm_nn::ParamStore;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random chains of smooth unary/binary ops gradcheck correctly.
    #[test]
    fn prop_random_op_chain_gradients(
        seed in 0u64..1000,
        ops in proptest::collection::vec(0u8..5, 1..5),
        rows in 2usize..4,
        cols in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::randn(&[rows, cols], 0.8, &mut rng);
        let other = Tensor::randn(&[rows, cols], 0.8, &mut rng);
        let w = Tensor::randn(&[cols, 2], 0.8, &mut rng);
        let ops2 = ops;
        let res = check_gradients(
            move |t, v| {
                let mut cur = v;
                for &op in &ops2 {
                    cur = match op {
                        0 => t.gelu(cur),
                        1 => t.tanh(cur),
                        2 => {
                            let c = t.constant(other.clone());
                            t.mul(cur, c)
                        }
                        3 => t.scale(cur, -0.7),
                        _ => {
                            let c = t.constant(other.clone());
                            t.add(cur, c)
                        }
                    };
                }
                let wv = t.constant(w.clone());
                let y = t.matmul(cur, wv);
                t.mean_all(y)
            },
            &x0,
            1e-2,
            1e-1,
        );
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Softmax rows always sum to one and stay in (0, 1], even for
    /// extreme inputs (numerical stability of the max-shift).
    #[test]
    fn prop_softmax_is_distribution(vals in proptest::collection::vec(-100f32..100.0, 4..16)) {
        let n = vals.len();
        let mut tape = tsfm_nn::Tape::new(false, 0);
        let x = tape.constant(Tensor::from_vec(vec![1, n], vals));
        let y = tape.softmax_last(x);
        let row = tape.value(y).data();
        let sum: f32 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        for &p in row {
            prop_assert!((0.0..=1.0 + 1e-6).contains(&p));
        }
    }

    /// Truncating a checkpoint anywhere must produce an error, never a
    /// silently wrong read.
    #[test]
    fn prop_truncated_checkpoint_rejected(cut_frac in 0.05f64..0.95) {
        let dir = std::env::temp_dir().join("tsfm_nn_prop_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}.ckpt", (cut_frac * 1000.0) as u32));
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        store.add("w", Tensor::randn(&[4, 4], 1.0, &mut rng), true);
        store.add("b", Tensor::randn(&[4], 1.0, &mut rng), false);
        save_params(&store, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(read_checkpoint(&path).is_err(), "truncated at {cut}/{}", bytes.len());
    }

    /// AdamW with zero gradients and no weight decay is a no-op.
    #[test]
    fn prop_adamw_zero_grad_fixed_point(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::randn(&[3, 3], 1.0, &mut rng), false);
        let before = store.value(id).clone();
        let mut opt = tsfm_nn::AdamW::new(1e-2).with_weight_decay(0.0);
        for _ in 0..5 {
            opt.step(&mut store, 1.0);
        }
        prop_assert_eq!(store.value(id), &before);
    }
}
