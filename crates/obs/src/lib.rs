//! `tsfm_obs` — std-only observability for the tsfm workspace.
//!
//! This crate sits at the very bottom of the dependency graph (it depends
//! on nothing, not even the other tsfm crates) so that every layer —
//! sketching, the HNSW index, the persistent store, the serve frontend,
//! the CLI — can instrument itself without cycles. crates.io is
//! unreachable in this environment, so everything is hand-rolled on
//! `std`, in the same spirit as the hand-rolled JSON in `tsfm_store`.
//!
//! Three independent facilities:
//!
//! * [`trace`] — structured tracing spans. `let _g = span!("stage");`
//!   costs one relaxed atomic load when tracing is disabled and roughly
//!   two `Instant::now()` calls when enabled. Completed spans land in
//!   bounded per-thread buffers (recording never takes a shared lock)
//!   and export as Chrome `trace_event` JSON that loads straight into
//!   `chrome://tracing` / Perfetto.
//! * [`metrics`] — a global registry of named counters, gauges, and
//!   log-bucketed latency histograms (the generalization of what used to
//!   be `tsfm_store::metrics::LatencyHistogram`). Recording is plain
//!   relaxed atomics; the registry renders Prometheus text exposition.
//! * [`slowlog`] — a bounded, always-sorted log of the slowest
//!   operations with their per-stage breakdowns, behind an atomic
//!   admission floor so fast requests pay one relaxed load.
//! * [`sync`] — poison-tolerant lock helpers. One panicking thread must
//!   not cascade into every other thread that shares a lock; all tsfm
//!   crates lock through these.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod slowlog;
pub mod sync;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use slowlog::{SlowEntry, Slowlog};
pub use sync::{lock_unpoisoned, read_unpoisoned, wait_timeout_unpoisoned, write_unpoisoned};
pub use trace::{Span, SpanRecord};

/// RAII tracing guard: `let _g = tsfm_obs::span!("query.join");`.
///
/// Near-free when tracing is disabled (a single relaxed atomic load);
/// when enabled, the guard stamps `Instant::now()` on entry and records
/// a completed [`trace::SpanRecord`] on drop. Bind it to a named `_g` —
/// a bare `_` drops immediately and times nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::Span::enter($name)
    };
}
