//! A global registry of named instruments — counters, gauges, and
//! log-bucketed latency histograms — with Prometheus text exposition.
//!
//! Recording is plain relaxed atomics: once a call site holds its
//! `Arc<Counter>` (usually cached in a `OnceLock`), bumping it costs one
//! `fetch_add`, with no lock and no registry lookup. The registry's
//! `RwLock` is only taken to register a new name or render exposition.
//!
//! [`Histogram`] is the generalization of what used to be
//! `tsfm_store::metrics::LatencyHistogram` (the store re-exports it
//! under that name): any crate can now register latency distributions
//! without depending on the store.
//!
//! ## Histogram shape
//!
//! Values are recorded in whole microseconds. Values below 64µs get one
//! bucket each (exact); above that, buckets are logarithmic with 32
//! sub-buckets per power of two, so the relative quantization error of a
//! reported percentile is bounded by ~3%. Values are clamped to ~2^40µs
//! (≈13 days), far beyond any plausible request latency.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Exact buckets for 0..LINEAR_MAX µs.
const LINEAR_MAX: u64 = 64;
/// log2(LINEAR_MAX): first exponent handled logarithmically.
const LINEAR_EXP: u32 = 6;
/// Sub-buckets per power of two in the logarithmic range.
const SUBS: u64 = 32;
const SUB_BITS: u32 = 5;
/// Largest exponent tracked; larger values clamp into the last bucket.
const MAX_EXP: u32 = 40;
const NUM_BUCKETS: usize =
    LINEAR_MAX as usize + ((MAX_EXP - LINEAR_EXP) as usize + 1) * SUBS as usize;

/// A monotonically increasing event count. Wait-free from any thread.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time value (queue depths, resident counts).
#[derive(Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A fixed-size, lock-free log-bucketed histogram of microsecond
/// values. `record` is wait-free (two relaxed increments and a
/// `fetch_max`); percentile extraction walks the bucket array.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(micros: u64) -> usize {
        if micros < LINEAR_MAX {
            return micros as usize;
        }
        let exp = (63 - micros.leading_zeros()).min(MAX_EXP);
        let sub = if exp >= MAX_EXP {
            SUBS - 1 // clamp: everything past 2^40µs lands in the top bucket
        } else {
            (micros >> (exp - SUB_BITS)) & (SUBS - 1)
        };
        LINEAR_MAX as usize + ((exp - LINEAR_EXP) as usize) * SUBS as usize + sub as usize
    }

    /// Lower edge of a bucket — what `percentile` reports. Reporting the
    /// lower edge (not the midpoint) keeps sub-64µs percentiles exact and
    /// never over-states a latency.
    fn bucket_floor(index: usize) -> u64 {
        if index < LINEAR_MAX as usize {
            return index as u64;
        }
        let b = index - LINEAR_MAX as usize;
        let exp = LINEAR_EXP + (b / SUBS as usize) as u32;
        let sub = (b % SUBS as usize) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }

    /// Record one value. Wait-free; safe from any thread.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (µs).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean value in µs (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in µs, or 0 when empty. Reported
    /// from bucket lower edges: exact below 64µs, within ~3% above.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the percentile observation, 1-based, clamped to [1, n].
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        // Writers raced past the count we loaded; the max is the honest
        // answer for "the highest latency seen".
        self.max()
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    inst: Instrument,
}

/// A named-instrument registry. Most code uses the process-wide
/// [`global`] registry; a fresh `Registry` is useful in tests.
///
/// `counter`/`gauge`/`histogram` are get-or-register: the first call for
/// a name creates the instrument, later calls (from any thread) return
/// the same one. Asking for an existing name as a *different* kind is a
/// programmer error and panics.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<String, Entry>>,
}

/// The process-wide registry every tsfm crate records into.
pub fn global() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(Registry::default)
}

/// Prometheus metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_register<T>(
        &self,
        name: &str,
        help: &str,
        project: impl Fn(&Instrument) -> Option<Arc<T>>,
        make: impl FnOnce() -> Instrument,
    ) -> Arc<T> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mismatch = |e: &Entry| {
            // tsfm_lint: allow(no-unwrap-in-lib, "kind mismatch is a compile-time wiring bug caught by the first scrape in any test or dev run; limping on with a mistyped instrument would silently corrupt the metric")
            panic!("metric {name:?} already registered as a {}", e.inst.kind())
        };
        // Fast path: the instrument exists, a read lock suffices.
        if let Some(e) = crate::sync::read_unpoisoned(&self.inner).get(name) {
            return project(&e.inst).unwrap_or_else(|| mismatch(e));
        }
        let mut w = crate::sync::write_unpoisoned(&self.inner);
        // Re-check under the write lock: another thread may have won the
        // registration race between our read and write.
        let e = w
            .entry(name.to_string())
            .or_insert_with(|| Entry { help: help.to_string(), inst: make() });
        project(&e.inst).unwrap_or_else(|| mismatch(e))
    }

    /// Get or register a counter. `help` is kept from the first
    /// registration.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_register(
            name,
            help,
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Instrument::Counter(Arc::new(Counter::new())),
        )
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_register(
            name,
            help,
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Instrument::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// Get or register a latency histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.get_or_register(
            name,
            help,
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Instrument::Histogram(Arc::new(Histogram::new())),
        )
    }

    /// Registered names, sorted (the registry map is a `BTreeMap`).
    pub fn names(&self) -> Vec<String> {
        crate::sync::read_unpoisoned(&self.inner).keys().cloned().collect()
    }

    /// Render every instrument as Prometheus text exposition
    /// (`text/plain; version=0.0.4`). Histograms render as summaries
    /// (`{quantile="..."}` series plus `_sum`/`_count`), since the
    /// log-bucket layout already gives ~3%-accurate quantiles
    /// server-side.
    pub fn prometheus_text(&self) -> String {
        let inner = crate::sync::read_unpoisoned(&self.inner);
        let mut out = String::new();
        for (name, e) in inner.iter() {
            let help = e.help.replace('\\', "\\\\").replace('\n', "\\n");
            match &e.inst {
                Instrument::Counter(c) => {
                    out.push_str(&format!(
                        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                        c.get()
                    ));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!(
                        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
                        g.get()
                    ));
                }
                Instrument::Histogram(h) => {
                    out.push_str(&format!(
                        "# HELP {name} {help}\n# TYPE {name} summary\n"
                    ));
                    for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{label}\"}} {}\n",
                            h.percentile(q)
                        ));
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range_in_order() {
        // Every representative value maps into a bucket whose floor is
        // ≤ the value, and bucket indexes are monotone in the value.
        let mut last = 0usize;
        for v in (0..200u64).chain([255, 256, 1000, 65_535, 1 << 20, 1 << 35, u64::MAX]) {
            let i = Histogram::bucket_index(v);
            assert!(i < NUM_BUCKETS, "v={v} i={i}");
            assert!(i >= last, "bucket index must not decrease: v={v}");
            assert!(Histogram::bucket_floor(i) <= v, "floor > value for {v}");
            last = i;
        }
        // Sub-64µs values are exact.
        for v in 0..LINEAR_MAX {
            let i = Histogram::bucket_index(v);
            assert_eq!(Histogram::bucket_floor(i), v);
        }
    }

    #[test]
    fn percentiles_exact_in_linear_range() {
        let h = Histogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 50);
        assert_eq!(h.sum(), 25 * 51);
        assert_eq!(h.percentile(0.5), 25);
        assert_eq!(h.percentile(0.02), 1);
        assert_eq!(h.percentile(1.0), 50);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 25.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_bounded_error_in_log_range() {
        let h = Histogram::new();
        // Uniform 1..=100_000 µs: p50 ≈ 50_000, p99 ≈ 99_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let got = h.percentile(q) as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.04, "q={q}: got {got}, want ~{want} (rel {rel:.3})");
        }
        assert_eq!(h.percentile(1.0 / 100_000.0), 1);
    }

    #[test]
    fn huge_values_clamp_instead_of_indexing_out_of_bounds() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 50);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(0.5) >= 1 << MAX_EXP);
    }

    #[test]
    fn registry_get_or_register_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("tsfm_test_total", "a test counter");
        let b = r.counter("tsfm_test_total", "ignored duplicate help");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "both handles hit the same counter");
        assert_eq!(r.names(), vec!["tsfm_test_total".to_string()]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("tsfm_test_total", "a counter");
        r.gauge("tsfm_test_total", "now a gauge?");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_invalid_names() {
        Registry::new().counter("not a metric name", "spaces are invalid");
    }

    #[test]
    fn prometheus_text_renders_every_kind() {
        let r = Registry::new();
        r.counter("tsfm_events_total", "events").add(7);
        r.gauge("tsfm_queue_depth", "queue depth").set(-2);
        let h = r.histogram("tsfm_latency_us", "latency");
        h.record(10);
        h.record(30);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE tsfm_events_total counter\ntsfm_events_total 7\n"));
        assert!(text.contains("# TYPE tsfm_queue_depth gauge\ntsfm_queue_depth -2\n"));
        assert!(text.contains("# TYPE tsfm_latency_us summary\n"));
        assert!(text.contains("tsfm_latency_us{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("tsfm_latency_us_sum 40\n"));
        assert!(text.contains("tsfm_latency_us_count 2\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
            assert!(parts.next().is_some(), "no name in {line:?}");
        }
    }
}
