//! A bounded log of the slowest operations, with per-stage breakdowns.
//!
//! The serve frontend records every completed request here; the
//! `{"op":"slowlog"}` wire verb reports the current contents. The buffer
//! keeps the `cap` slowest entries seen so far, sorted slowest-first.
//!
//! The hot path is [`Slowlog::record`]: once the buffer is full, an
//! atomic admission floor (the smallest total currently kept) lets
//! fast requests bail with one relaxed load and no lock — only requests
//! slow enough to displace an entry pay for the mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One slow operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// What ran (for serve: the query id).
    pub label: String,
    /// Free-form context (for serve: the query mode).
    pub detail: String,
    /// End-to-end duration, microseconds.
    pub total_us: u64,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Per-stage breakdown `(stage, µs)`, in execution order.
    pub stages: Vec<(String, u64)>,
}

/// Milliseconds since the Unix epoch, for stamping [`SlowEntry::unix_ms`].
pub fn unix_ms_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

/// A bounded slowest-first log. All methods are `&self`; share behind an
/// `Arc` (or embed in an already-shared struct).
pub struct Slowlog {
    cap: usize,
    /// Admission floor: once full, entries at or below this total are
    /// rejected without taking the lock. 0 while the buffer has room.
    floor: AtomicU64,
    /// Sorted descending by `total_us`.
    entries: Mutex<Vec<SlowEntry>>,
}

impl Slowlog {
    /// A log keeping the `cap` (≥ 1) slowest entries.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Offer one entry; kept only if it ranks among the slowest seen.
    pub fn record(&self, e: SlowEntry) {
        // Fast reject: the floor is only non-zero once the buffer is
        // full, and it only ever rises, so a stale read can at worst let
        // a borderline entry in — never wrongly keep one out.
        if e.total_us <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut v = crate::sync::lock_unpoisoned(&self.entries);
        let pos = v.partition_point(|x| x.total_us >= e.total_us);
        if pos >= self.cap {
            return; // raced below the floor while waiting for the lock
        }
        v.insert(pos, e);
        if v.len() > self.cap {
            v.pop();
        }
        if v.len() == self.cap {
            if let Some(last) = v.last() {
                self.floor.store(last.total_us, Ordering::Relaxed);
            }
        }
    }

    /// Current contents, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        crate::sync::lock_unpoisoned(&self.entries).clone()
    }

    pub fn len(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.entries).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, total_us: u64) -> SlowEntry {
        SlowEntry {
            label: label.to_string(),
            detail: "join".to_string(),
            total_us,
            unix_ms: unix_ms_now(),
            stages: vec![("beam".to_string(), total_us / 2)],
        }
    }

    #[test]
    fn keeps_the_slowest_sorted() {
        let log = Slowlog::new(3);
        for (label, us) in [("a", 10), ("b", 50), ("c", 30), ("d", 40), ("e", 5)] {
            log.record(entry(label, us));
        }
        let snap = log.snapshot();
        let got: Vec<(&str, u64)> =
            snap.iter().map(|e| (e.label.as_str(), e.total_us)).collect();
        assert_eq!(got, vec![("b", 50), ("d", 40), ("c", 30)]);
    }

    #[test]
    fn fast_requests_are_rejected_by_the_floor_once_full() {
        let log = Slowlog::new(2);
        log.record(entry("slow1", 1000));
        log.record(entry("slow2", 2000));
        assert_eq!(log.len(), 2);
        // Floor is now 1000: a 500µs entry must not displace anything.
        log.record(entry("fast", 500));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().all(|e| e.label != "fast"));
        // A slower one still gets in and evicts the old minimum.
        log.record(entry("slower", 1500));
        let snap = log.snapshot();
        let labels: Vec<&str> = snap.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["slow2", "slower"]);
    }

    #[test]
    fn concurrent_records_keep_the_true_top_k() {
        let log = std::sync::Arc::new(Slowlog::new(8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        log.record(entry(&format!("t{t}-{i}"), i * 4 + t));
                    }
                });
            }
        });
        let snap = log.snapshot();
        assert_eq!(snap.len(), 8);
        // The 8 slowest offered totals are 499*4+3 down to 498*4+0.
        let totals: Vec<u64> = snap.iter().map(|e| e.total_us).collect();
        let want: Vec<u64> = (0..8).map(|i| 1999 - i).collect();
        assert_eq!(totals, want);
    }
}
