//! Poison-tolerant lock helpers.
//!
//! A poisoned `Mutex`/`RwLock` means some thread panicked while holding
//! the guard — it says nothing about the integrity of the data for our
//! uses (counters, ring buffers, registries, swap-on-reload snapshots),
//! all of which are valid at every intermediate state. Propagating the
//! poison would instead cascade one worker's panic into every thread
//! that touches the lock afterwards, which is exactly the failure mode
//! the serve pool must contain. These helpers recover the guard and
//! keep going.
//!
//! Use these instead of `.lock().unwrap()` / `.expect("...")` anywhere
//! outside tests; the `no-unwrap-in-lib` lint enforces it.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult};
use std::time::Duration;

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock an `RwLock`, recovering the guard if a writer panicked.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock an `RwLock`, recovering the guard if a holder panicked.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout` that recovers the guard on poison.
pub fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn rwlock_survives_poison() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(read_unpoisoned(&l).len(), 2);
        write_unpoisoned(&l).push(3);
        assert_eq!(read_unpoisoned(&l).len(), 3);
    }

    #[test]
    fn wait_timeout_returns_guard() {
        let m = Mutex::new(0u8);
        let cv = Condvar::new();
        let g = lock_unpoisoned(&m);
        let (g, res) = wait_timeout_unpoisoned(&cv, g, Duration::from_millis(1));
        assert!(res.timed_out());
        assert_eq!(*g, 0);
    }
}
