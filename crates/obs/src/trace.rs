//! Cheap structured tracing: thread-local span stacks, bounded
//! per-thread collection, Chrome `trace_event` export.
//!
//! ## Design
//!
//! The hot path is [`Span::enter`] / [`Span`]'s `Drop`. When tracing is
//! disabled (the default) `enter` is one relaxed atomic load and `Drop`
//! is a branch on a `None` — cheap enough to leave in sketch builds and
//! HNSW beams permanently. When enabled, a span costs roughly two
//! `Instant::now()` calls plus one push into a **per-thread** buffer:
//! recording never touches a lock another recording thread could hold
//! (each thread owns its buffer; the buffer's mutex is only contended by
//! [`drain`], and even then the recorder uses `try_lock` and drops the
//! record rather than block).
//!
//! Buffers are bounded ([`enable_with_capacity`]); once a thread's
//! buffer is full further spans are counted in [`dropped`] instead of
//! growing memory — a trace of a 100k-table ingest degrades gracefully
//! instead of OOMing. Buffers of exited threads stay registered (the
//! `Arc` keeps them alive) so their spans still appear in the export;
//! the registry grows with the number of threads that ever traced,
//! which is bounded by the worker pools in this workspace.
//!
//! Timestamps are offsets from a process-wide monotonic epoch pinned at
//! the first [`enable`], so spans from different threads line up on one
//! Chrome-trace timeline.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread span capacity (~1.5 MiB of records per thread at
/// 48 bytes each).
pub const DEFAULT_CAPACITY: usize = 1 << 15;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// One completed span, as recorded by a [`Span`] guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static stage name (e.g. `"query.join"`, `"hnsw.beam"`).
    pub name: &'static str,
    /// Small dense id of the recording thread (assigned on first span).
    pub tid: u32,
    /// Start offset from the trace epoch, microseconds.
    pub ts_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Nesting depth at entry (1 = top-level span on its thread).
    pub depth: u16,
}

/// The process-wide monotonic zero of the trace timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct ThreadBuf {
    records: Mutex<Vec<SpanRecord>>,
}

/// Every per-thread buffer ever registered, for [`drain`] to sweep.
fn sinks() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Current span nesting depth on this thread (the span "stack").
    static DEPTH: Cell<u16> = const { Cell::new(0) };
    /// This thread's dense trace id; 0 = not yet assigned.
    static TID: Cell<u32> = const { Cell::new(0) };
    /// This thread's record buffer, registered in [`sinks`] on first use.
    static BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

/// Turn tracing on with [`DEFAULT_CAPACITY`] records per thread.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Turn tracing on, bounding each thread's buffer to `per_thread`
/// records (spans past the bound are counted in [`dropped`], not kept).
pub fn enable_with_capacity(per_thread: usize) {
    let _ = epoch(); // pin the timeline zero before the first span
    CAPACITY.store(per_thread.max(1), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off. Spans already in flight still record on drop;
/// buffered records stay available to [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Spans discarded because a thread buffer was full (or being drained).
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn current_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

fn record(rec: SpanRecord) {
    let stored = BUF.with(|b| {
        let mut slot = b.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf { records: Mutex::new(Vec::new()) });
            crate::sync::lock_unpoisoned(sinks()).push(buf.clone());
            buf
        });
        // try_lock: the only other holder is a concurrent drain/export;
        // dropping one record beats blocking a hot path on it.
        let stored = match buf.records.try_lock() {
            Ok(mut v) => {
                if v.len() < CAPACITY.load(Ordering::Relaxed) {
                    v.push(rec);
                    true
                } else {
                    false
                }
            }
            Err(_) => false,
        };
        stored
    });
    if !stored {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// An RAII span guard — construct via the [`crate::span!`] macro. When
/// tracing is disabled at entry this is inert (no timestamp, no record).
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !ENABLED.load(Ordering::Relaxed) {
            return Span { name, start: None };
        }
        Self::enter_enabled(name)
    }

    #[cold]
    fn enter_enabled(name: &'static str) -> Span {
        DEPTH.with(|d| d.set(d.get().saturating_add(1)));
        Span { name, start: Some(Instant::now()) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        let ts_us = start.saturating_duration_since(epoch()).as_micros() as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_sub(1));
            v
        });
        record(SpanRecord { name: self.name, tid: current_tid(), ts_us, dur_us, depth });
    }
}

/// Take every buffered record out of every thread buffer, oldest first.
/// Recording may continue concurrently; records landing during the sweep
/// are picked up by the next drain (or dropped via `try_lock` if they
/// race the sweep of their own buffer).
pub fn drain() -> Vec<SpanRecord> {
    let sinks = crate::sync::lock_unpoisoned(sinks());
    let mut out = Vec::new();
    for s in sinks.iter() {
        out.append(&mut crate::sync::lock_unpoisoned(&s.records));
    }
    // Chronological, parents before their children (a parent shares its
    // child's start to the microsecond but lasts longer).
    out.sort_by(|a, b| {
        (a.ts_us, a.tid, b.dur_us, a.depth).cmp(&(b.ts_us, b.tid, a.dur_us, b.depth))
    });
    out
}

fn escape(s: &str) -> String {
    // Span names are static identifiers; escaping quote/backslash keeps
    // the output valid JSON even for an unusual name.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render records as Chrome `trace_event` JSON (the
/// `{"traceEvents":[...]}` object form): complete events (`"ph":"X"`)
/// with microsecond `ts`/`dur`, one Chrome "thread" per recording
/// thread. Loads directly into `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut events = String::with_capacity(records.len() * 96 + 64);
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            events.push(',');
        }
        events.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"tsfm\",\"ph\":\"X\",\"pid\":1,\
             \"tid\":{},\"ts\":{},\"dur\":{}}}",
            escape(r.name),
            r.tid,
            r.ts_us,
            r.dur_us
        ));
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{events}]}}")
}

/// [`drain`] + [`chrome_trace_json`] in one call.
pub fn export_chrome_trace() -> String {
    chrome_trace_json(&drain())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that flip it or drain must
    /// not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        disable();
        drain();
        {
            let _s = crate::span!("test.disabled");
        }
        assert!(
            drain().iter().all(|r| r.name != "test.disabled"),
            "disabled span must not be recorded"
        );
    }

    #[test]
    fn enabled_spans_nest_and_time() {
        let _g = lock();
        enable();
        drain();
        {
            let _outer = crate::span!("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        disable();
        let recs = drain();
        let outer = recs.iter().find(|r| r.name == "test.outer").expect("outer recorded");
        let inner = recs.iter().find(|r| r.name == "test.inner").expect("inner recorded");
        assert_eq!(inner.depth, outer.depth + 1, "inner nests under outer");
        assert!(outer.dur_us >= inner.dur_us, "outer contains inner");
        assert!(inner.ts_us >= outer.ts_us, "inner starts after outer");
        assert!(outer.dur_us >= 3_000, "outer spans both sleeps: {}µs", outer.dur_us);
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn threads_get_distinct_tids_and_all_records_survive() {
        let _g = lock();
        enable();
        drain();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _s = crate::span!("test.mt");
                    }
                });
            }
        });
        disable();
        let recs: Vec<SpanRecord> =
            drain().into_iter().filter(|r| r.name == "test.mt").collect();
        assert_eq!(recs.len(), 200);
        let tids: std::collections::BTreeSet<u32> = recs.iter().map(|r| r.tid).collect();
        assert_eq!(tids.len(), 4, "one trace tid per thread: {tids:?}");
    }

    #[test]
    fn capacity_bounds_memory_and_counts_drops() {
        let _g = lock();
        enable_with_capacity(8);
        drain();
        let before = dropped();
        for _ in 0..100 {
            let _s = crate::span!("test.bounded");
        }
        disable();
        let kept = drain().into_iter().filter(|r| r.name == "test.bounded").count();
        assert_eq!(kept, 8, "buffer bounded at capacity");
        assert!(dropped() >= before + 92, "overflow counted");
        enable_with_capacity(DEFAULT_CAPACITY);
        disable();
    }

    #[test]
    fn chrome_export_shape() {
        let recs = vec![
            SpanRecord { name: "a", tid: 1, ts_us: 0, dur_us: 10, depth: 1 },
            SpanRecord { name: "b\"q", tid: 2, ts_us: 5, dur_us: 2, depth: 1 },
        ];
        let json = chrome_trace_json(&recs);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"a\""));
        assert!(json.contains("\"name\":\"b\\\"q\""), "names are escaped: {json}");
        assert!(json.contains("\"tid\":2"));
        assert!(json.ends_with("]}"));
    }
}
