//! Concurrency guarantees of the metrics registry: get-or-register from
//! many threads must hand every caller the *same* instrument (no lost
//! registrations), and concurrent recording must lose no counts — these
//! are the properties the hot-path instrumentation in `tsfm_sketch`,
//! `tsfm_search`, and `tsfm_store` leans on.

use std::sync::Arc;
use tsfm_obs::metrics::Registry;

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 10_000;

#[test]
fn racing_registrations_converge_on_one_counter() {
    let r = Arc::new(Registry::new());
    // Every thread get-or-registers the same name and bumps through its
    // own handle; a lost registration would shear the total.
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let r = r.clone();
            s.spawn(move || {
                let c = r.counter("tsfm_race_total", "raced registration");
                for _ in 0..OPS_PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    let total = r.counter("tsfm_race_total", "").get();
    assert_eq!(total, THREADS as u64 * OPS_PER_THREAD);
    assert_eq!(r.names(), vec!["tsfm_race_total".to_string()]);
}

#[test]
fn mixed_instrument_kinds_register_and_record_in_parallel() {
    let r = Arc::new(Registry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let r = r.clone();
            s.spawn(move || {
                // Interleave three kinds plus a per-thread name so the
                // registry takes both its read fast path and write path
                // under contention.
                let c = r.counter("tsfm_mixed_total", "shared counter");
                let g = r.gauge("tsfm_mixed_depth", "shared gauge");
                let h = r.histogram("tsfm_mixed_us", "shared histogram");
                let own = r.counter(&format!("tsfm_thread_{t}_total"), "per-thread");
                for i in 0..OPS_PER_THREAD {
                    c.inc();
                    g.add(1);
                    h.record(i % 512);
                    own.inc();
                }
            });
        }
    });
    let n = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(r.counter("tsfm_mixed_total", "").get(), n);
    assert_eq!(r.gauge("tsfm_mixed_depth", "").get(), n as i64);
    let h = r.histogram("tsfm_mixed_us", "");
    assert_eq!(h.count(), n);
    assert_eq!(h.sum(), THREADS as u64 * (0..OPS_PER_THREAD).map(|i| i % 512).sum::<u64>());
    for t in 0..THREADS {
        assert_eq!(r.counter(&format!("tsfm_thread_{t}_total"), "").get(), OPS_PER_THREAD);
    }
    // 3 shared + THREADS per-thread instruments, nothing lost or doubled.
    assert_eq!(r.names().len(), 3 + THREADS);
}

#[test]
fn exposition_renders_while_recorders_run() {
    let r = Arc::new(Registry::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (r, stop) = (r.clone(), stop.clone());
            s.spawn(move || {
                let c = r.counter("tsfm_live_total", "live");
                let h = r.histogram("tsfm_live_us", "live");
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    c.inc();
                    h.record(100);
                }
            });
        }
        // Render exposition concurrently with the writers: must not
        // deadlock or panic, and every snapshot must be parseable.
        for _ in 0..50 {
            let text = r.prometheus_text();
            for line in text.lines().filter(|l| !l.starts_with('#')) {
                let value = line.rsplit(' ').next().unwrap();
                assert!(value.parse::<f64>().is_ok(), "unparseable line {line:?}");
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}
