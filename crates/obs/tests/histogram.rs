//! Edge-case and property coverage for [`tsfm_obs::metrics::Histogram`] —
//! the instrument `tsfm_store` re-exports as `LatencyHistogram`, so its
//! quantiles back both the `stats` verb and Prometheus exposition.
//!
//! The accuracy contract under test: quantiles are reported from bucket
//! *lower edges*, so they are exact below 64µs and within one log
//! sub-bucket (1/32 ≈ 3.2% relative) above — and they never over-state a
//! latency.

use proptest::prelude::*;
use tsfm_obs::metrics::Histogram;

#[test]
fn empty_histogram_reports_zeros() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0.0);
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(h.percentile(q), 0, "empty histogram, q={q}");
    }
}

#[test]
fn quantile_bounds_clamp_to_min_and_max_sample() {
    let h = Histogram::new();
    for v in [3u64, 17, 40, 59] {
        h.record(v);
    }
    // q=0.0 has rank ceil(0) = 0, clamped up to rank 1: the minimum.
    assert_eq!(h.percentile(0.0), 3);
    // q=1.0 is rank n: the maximum (exact — all samples sub-64µs).
    assert_eq!(h.percentile(1.0), 59);
    // Out-of-range q values clamp rather than indexing out of bounds.
    assert_eq!(h.percentile(-1.0), 3);
    assert_eq!(h.percentile(2.0), 59);
}

#[test]
fn single_sample_is_every_quantile() {
    let h = Histogram::new();
    h.record(42);
    for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
        assert_eq!(h.percentile(q), 42, "q={q}");
    }
    assert_eq!(h.mean(), 42.0);
    assert_eq!(h.max(), 42);
}

#[test]
fn values_past_the_top_bucket_clamp() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(1 << 55);
    h.record(7); // one small value so the walk crosses bucket ranges
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.percentile(0.0), 7);
    // Both huge values share the final clamp bucket; its floor is still
    // astronomically large (≥ 2^40µs ≈ 13 days) and ≤ the true value.
    let top = h.percentile(1.0);
    assert!(top >= 1 << 40, "clamp bucket floor: {top}");
}

/// Exact reference: the `q`-quantile of the sorted samples under the
/// histogram's own rank rule (1-based `ceil(q·n)`, clamped to `[1, n]`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    /// Against arbitrary sample sets and quantiles, the histogram answer
    /// is never above the exact answer and never more than one log
    /// sub-bucket (~3.2%) below it; sub-64µs answers are exact.
    #[test]
    fn prop_quantiles_track_exact_sorted_reference(
        values in proptest::collection::vec(0u64..2_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let got = h.percentile(q);
        prop_assert!(got <= exact, "reported {got} over-states exact {exact}");
        if exact < 64 {
            prop_assert_eq!(got, exact, "sub-64µs quantiles are exact");
        } else {
            let rel = (exact - got) as f64 / exact as f64;
            prop_assert!(
                rel <= 1.0 / 32.0 + 1e-12,
                "got {got}, exact {exact}: relative error {rel:.4} > 1/32"
            );
        }
    }

    /// Count/sum/max always match the raw samples regardless of bucketing.
    #[test]
    fn prop_count_sum_max_are_exact(
        values in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
    }
}
