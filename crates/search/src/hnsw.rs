//! Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2020) —
//! the ANN index DeepJoin uses for joinable-column search.
//!
//! Standard construction: each node draws a level from a geometric
//! distribution; greedy search descends from the top layer to layer 1 and
//! a best-first beam (`ef`) explores layer 0. Neighbour lists keep the `M`
//! closest candidates (simple selection, no pruning heuristic — adequate
//! for the corpus sizes here and easier to validate against brute force).
//!
//! ## Hot-path layout
//!
//! Node vectors live in one contiguous row-major `f32` arena with a cached
//! squared norm per row, so a cosine distance is a single fused dot
//! product over adjacent memory ([`Metric::distance_prenorm`]). Queries
//! track visited nodes with an epoch-stamped list and reuse their
//! candidate/result heaps via [`SearchScratch`]; [`Hnsw::search`] hands
//! scratch out from a per-thread pool, so batched fan-outs (e.g.
//! `tsfm_store`'s `search_batch`) allocate nothing per query after warmup.
//! All of this is bit-for-bit behavior-preserving — graphs and query
//! results are pinned by `tests/determinism.rs`, and the `TSFMHNS1`
//! serialization (which never stored norms) is unchanged.

use crate::knn::Metric;
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};

/// Registry handles resolved once so the insert/search hot paths pay one
/// atomic add per call instead of a name lookup in the global registry.
struct HnswCounters {
    inserts: Arc<tsfm_obs::metrics::Counter>,
    searches: Arc<tsfm_obs::metrics::Counter>,
}

fn hnsw_counters() -> &'static HnswCounters {
    static C: OnceLock<HnswCounters> = OnceLock::new();
    C.get_or_init(|| {
        let reg = tsfm_obs::metrics::global();
        HnswCounters {
            inserts: reg.counter("tsfm_hnsw_inserts_total", "HNSW vectors inserted"),
            searches: reg.counter("tsfm_hnsw_searches_total", "HNSW beam searches"),
        }
    })
}

/// Ordered (distance, id) pair for the results max-heap: the greatest item
/// is the farthest candidate, and among equal distances the *largest* id,
/// so popping the overflow always discards the same element regardless of
/// heap-internal ordering.
#[derive(PartialEq)]
struct HeapItem(f32, usize);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

/// Ordered (distance, id) pair for the candidates min-heap: the greatest
/// item is the *closest* candidate, and among equal distances the
/// *smallest* id. `Reverse<HeapItem>` would flip the id tie-break too,
/// expanding equal-distance nodes in descending-id order; this wrapper
/// keeps exploration order ascending by id so neighbour lists are a pure
/// function of insertion order (see `tests/determinism.rs`).
#[derive(PartialEq)]
struct MinItem(f32, usize);

impl Eq for MinItem {}

impl PartialOrd for MinItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(other.1.cmp(&self.1))
    }
}

/// HNSW construction/search parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbours per node on layers ≥ 1 (layer 0 keeps `2·m`).
    pub m: usize,
    pub ef_construction: usize,
    pub ef_search: usize,
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self { m: 12, ef_construction: 64, ef_search: 48, seed: 0x45f7 }
    }
}

struct Node {
    /// Neighbour lists per layer, `neighbors[l]` for layer `l`.
    neighbors: Vec<Vec<usize>>,
}

/// A complete, serializable copy of an [`Hnsw`]'s state (`tsfm_store`
/// persists it as the `TSFMHNS1` section of the index cache).
#[derive(Debug, Clone, PartialEq)]
pub struct HnswSnapshot {
    pub cfg: HnswConfig,
    pub dim: usize,
    pub metric: Metric,
    /// Row-major vector buffer, `dim` floats per node.
    pub data: Vec<f32>,
    /// `neighbors[id][layer]` = neighbour ids of `id` on `layer`.
    pub neighbors: Vec<Vec<Vec<usize>>>,
    pub entry: Option<usize>,
    pub max_level: usize,
    pub rng_state: u64,
}

/// Reusable per-query search state: the epoch-stamped visited list and
/// the candidate/result heaps. One `begin` bumps the epoch, which marks
/// every previous query's stamps stale in O(1) — no clearing, no
/// rehashing, no allocation once the list has grown to the index size.
///
/// [`Hnsw::search`] takes scratch from a per-thread pool automatically;
/// callers that manage their own threads can hold a `SearchScratch` and
/// use [`Hnsw::search_with_scratch`] directly. A scratch may be reused
/// freely across queries and across indexes.
#[derive(Default)]
pub struct SearchScratch {
    /// `stamps[id] == epoch` ⇔ `id` visited by the current query.
    stamps: Vec<u32>,
    epoch: u32,
    candidates: BinaryHeap<MinItem>,
    results: BinaryHeap<HeapItem>,
}

impl SearchScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new query over an index of `n` nodes.
    fn begin(&mut self, n: usize) {
        self.candidates.clear();
        self.results.clear();
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrapped: old stamps could alias the new epoch.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// Mark `id` visited; `true` if it was not already.
    #[inline]
    fn visit(&mut self, id: usize) -> bool {
        if self.stamps[id] == self.epoch {
            false
        } else {
            self.stamps[id] = self.epoch;
            true
        }
    }
}

thread_local! {
    /// The per-thread scratch pool behind [`Hnsw::search`]: each worker
    /// thread of a batch fan-out reuses one visited list and one pair of
    /// heaps across all its queries.
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// The index. Ids are dense insertion order, matching
/// [`crate::knn::BruteForceIndex`] so the two are interchangeable.
pub struct Hnsw {
    cfg: HnswConfig,
    dim: usize,
    metric: Metric,
    /// Row-major vector arena, `dim` floats per node.
    data: Vec<f32>,
    /// Cached squared norm per node (see [`Metric::norm_cache`]); not
    /// serialized — recomputed on snapshot import.
    norms: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<usize>,
    max_level: usize,
    rng_state: u64,
}

impl Hnsw {
    pub fn new(dim: usize, metric: Metric, cfg: HnswConfig) -> Self {
        let rng_state = cfg.seed | 1;
        Self {
            cfg,
            dim,
            metric,
            data: Vec::new(),
            norms: Vec::new(),
            nodes: Vec::new(),
            entry: None,
            max_level: 0,
            rng_state,
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn vector(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Distance from a query (with its precomputed squared norm) to a
    /// stored node: one dot product over the arena row plus the cached
    /// node norm.
    #[inline]
    fn dist(&self, q: &[f32], q_norm: f32, id: usize) -> f32 {
        self.metric.distance_prenorm(q, q_norm, self.vector(id), self.norms[id])
    }

    /// Distance between two stored nodes, both norms cached.
    #[inline]
    fn dist_nodes(&self, a: usize, b: usize) -> f32 {
        self.metric.distance_prenorm(self.vector(a), self.norms[a], self.vector(b), self.norms[b])
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn random_level(&mut self) -> usize {
        // Geometric with p related to 1/ln(M): level = floor(-ln(u)·mL).
        let u = ((self.next_rand() >> 40) as f64 + 0.5) / (1u64 << 24) as f64;
        let ml = 1.0 / (self.cfg.m.max(2) as f64).ln();
        (-u.ln() * ml).floor() as usize
    }

    /// Greedy descent on one layer: move to the closest neighbour until no
    /// improvement.
    fn greedy(&self, q: &[f32], q_norm: f32, mut cur: usize, layer: usize) -> usize {
        let mut cur_d = self.dist(q, q_norm, cur);
        loop {
            let mut improved = false;
            for &n in &self.nodes[cur].neighbors[layer] {
                let d = self.dist(q, q_norm, n);
                if d < cur_d {
                    cur = n;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Best-first beam search on one layer; returns up to `ef` closest.
    /// Identical exploration order and results to the original
    /// `HashSet`-visited implementation: the epoch stamps replicate
    /// `insert`-returns-false semantics exactly, and the heaps see the
    /// same push/pop sequence.
    fn search_layer(
        &self,
        q: &[f32],
        q_norm: f32,
        entry: usize,
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<(usize, f32)> {
        let entry_d = self.dist(q, q_norm, entry);
        scratch.begin(self.nodes.len());
        scratch.visit(entry);
        // candidates: min-heap by (distance, id); results: max-heap.
        scratch.candidates.push(MinItem(entry_d, entry));
        scratch.results.push(HeapItem(entry_d, entry));
        while let Some(MinItem(cd, c)) = scratch.candidates.pop() {
            // results holds at least the entry point; an empty heap (only
            // reachable with ef == 0) must not terminate the whole query.
            let worst = scratch.results.peek().map_or(f32::INFINITY, |h| h.0);
            if cd > worst && scratch.results.len() >= ef {
                break;
            }
            let neighbors = &self.nodes[c].neighbors[layer];
            // Touch the first cache line of every unvisited neighbour's
            // arena row before the distance loop: the loads overlap
            // instead of serializing on one miss per distance call. Pure
            // reads — results are unchanged. (dim 0 has no rows to touch.)
            if self.dim > 0 {
                for &n in neighbors {
                    if scratch.stamps[n] != scratch.epoch {
                        std::hint::black_box(self.data[n * self.dim]);
                    }
                }
            }
            for &n in neighbors {
                if !scratch.visit(n) {
                    continue;
                }
                let d = self.dist(q, q_norm, n);
                let worst = scratch.results.peek().map_or(f32::INFINITY, |h| h.0);
                if scratch.results.len() < ef || d < worst {
                    scratch.candidates.push(MinItem(d, n));
                    scratch.results.push(HeapItem(d, n));
                    if scratch.results.len() > ef {
                        scratch.results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(usize, f32)> =
            scratch.results.drain().map(|HeapItem(d, i)| (i, d)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        out
    }

    /// Insert a vector, returning its id.
    pub fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector dim");
        let _g = tsfm_obs::span!("hnsw.insert");
        hnsw_counters().inserts.inc();
        let id = self.nodes.len();
        let level = self.random_level();
        self.data.extend_from_slice(v);
        self.norms.push(self.metric.norm_cache(v));
        self.nodes.push(Node { neighbors: vec![Vec::new(); level + 1] });

        let Some(mut cur) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return id;
        };

        let q = v.to_vec();
        let q_norm = self.norms[id];
        // Descend layers above the new node's level greedily.
        for l in ((level + 1)..=self.max_level).rev() {
            cur = self.greedy(&q, q_norm, cur, l);
        }
        // Connect on each layer from min(level, max_level) down to 0.
        for l in (0..=level.min(self.max_level)).rev() {
            let found = SCRATCH.with(|s| {
                self.search_layer(&q, q_norm, cur, self.cfg.ef_construction, l, &mut s.borrow_mut())
            });
            let m_max = if l == 0 { self.cfg.m * 2 } else { self.cfg.m };
            let chosen: Vec<usize> =
                found.iter().take(m_max).map(|&(i, _)| i).collect();
            for &n in &chosen {
                self.nodes[id].neighbors[l].push(n);
                self.nodes[n].neighbors[l].push(id);
                // Trim the neighbour's list if it overflowed.
                if self.nodes[n].neighbors[l].len() > m_max {
                    let mut withd: Vec<(usize, f32)> = self.nodes[n].neighbors[l]
                        .iter()
                        .map(|&x| (x, self.dist_nodes(n, x)))
                        .collect();
                    withd.sort_by(|a, b| {
                        a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
                    });
                    withd.truncate(m_max);
                    self.nodes[n].neighbors[l] = withd.into_iter().map(|(x, _)| x).collect();
                }
            }
            if let Some(&(best, _)) = found.first() {
                cur = best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        id
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn metric(&self) -> Metric {
        self.metric
    }

    pub fn config(&self) -> &HnswConfig {
        &self.cfg
    }

    /// Export the full graph state for persistence. Together with
    /// [`Hnsw::from_snapshot`] this round-trips exactly: an imported index
    /// answers every query identically and continues inserting with the
    /// same RNG stream as the original.
    pub fn snapshot(&self) -> HnswSnapshot {
        HnswSnapshot {
            cfg: self.cfg.clone(),
            dim: self.dim,
            metric: self.metric,
            data: self.data.clone(),
            neighbors: self.nodes.iter().map(|n| n.neighbors.clone()).collect(),
            entry: self.entry,
            max_level: self.max_level,
            rng_state: self.rng_state,
        }
    }

    /// Rebuild an index from an exported snapshot, validating internal
    /// consistency (vector buffer size, neighbour ids, entry point) so a
    /// corrupt snapshot is rejected instead of panicking later.
    pub fn from_snapshot(s: HnswSnapshot) -> Result<Self, String> {
        if s.dim == 0 {
            return Err("snapshot dim must be positive".into());
        }
        if s.data.len() % s.dim != 0 {
            return Err(format!(
                "vector buffer length {} is not a multiple of dim {}",
                s.data.len(),
                s.dim
            ));
        }
        let n = s.data.len() / s.dim;
        if s.neighbors.len() != n {
            return Err(format!("{} nodes but {} neighbour lists", n, s.neighbors.len()));
        }
        for (id, layers) in s.neighbors.iter().enumerate() {
            if layers.is_empty() {
                return Err(format!("node {id} has no layers"));
            }
            for (l, layer) in layers.iter().enumerate() {
                if let Some(&bad) = layer.iter().find(|&&x| x >= n) {
                    return Err(format!("node {id} links to out-of-range node {bad}"));
                }
                // Search follows layer-l links assuming the target also has
                // a layer l; a link to a shorter node would panic later.
                if let Some(&bad) =
                    layer.iter().find(|&&x| s.neighbors[x].len() <= l)
                {
                    return Err(format!(
                        "node {id} links to node {bad} on layer {l}, which it lacks"
                    ));
                }
            }
        }
        match (s.entry, n) {
            (None, 0) => {}
            (Some(e), n) if n > 0 && e < n => {
                // Greedy descent starts at `entry` on layer `max_level`.
                if s.neighbors[e].len() <= s.max_level {
                    return Err(format!(
                        "entry node {e} has {} layers but max_level is {}",
                        s.neighbors[e].len(),
                        s.max_level
                    ));
                }
            }
            (entry, n) => return Err(format!("entry {entry:?} invalid for {n} nodes")),
        }
        // Norms are an in-memory cache only — `TSFMHNS1` never stores
        // them — so recompute from the arena.
        let norms = (0..n).map(|i| s.metric.norm_cache(&s.data[i * s.dim..(i + 1) * s.dim])).collect();
        Ok(Self {
            cfg: s.cfg,
            dim: s.dim,
            metric: s.metric,
            data: s.data,
            norms,
            nodes: s.neighbors.into_iter().map(|neighbors| Node { neighbors }).collect(),
            entry: s.entry,
            max_level: s.max_level,
            rng_state: s.rng_state,
        })
    }

    /// Approximate top-k by ascending distance, using the calling
    /// thread's scratch pool.
    pub fn search(&self, q: &[f32], k: usize) -> Vec<(usize, f32)> {
        SCRATCH.with(|s| self.search_with_scratch(q, k, &mut s.borrow_mut()))
    }

    /// [`Hnsw::search`] with caller-managed scratch. Results are
    /// identical regardless of the scratch's history; reusing one scratch
    /// across queries (and indexes) just avoids the per-query allocations.
    pub fn search_with_scratch(
        &self,
        q: &[f32],
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<(usize, f32)> {
        let _g = tsfm_obs::span!("hnsw.search");
        hnsw_counters().searches.inc();
        let Some(mut cur) = self.entry else {
            return Vec::new();
        };
        let q_norm = self.metric.norm_cache(q);
        for l in (1..=self.max_level).rev() {
            cur = self.greedy(q, q_norm, cur, l);
        }
        let ef = self.cfg.ef_search.max(k);
        let mut out = self.search_layer(q, q_norm, cur, ef, 0, scratch);
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BruteForceIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vecs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    #[test]
    fn dim_zero_degenerate_but_safe() {
        // A zero-dimensional index is useless but must not panic (the
        // prefetch touch has no arena row to read).
        let mut h = Hnsw::new(0, Metric::Euclidean, HnswConfig::default());
        for _ in 0..3 {
            h.add(&[]);
        }
        let hits = h.search(&[], 2);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    fn empty_and_single() {
        let mut h = Hnsw::new(3, Metric::Euclidean, HnswConfig::default());
        assert!(h.search(&[0.0; 3], 5).is_empty());
        h.add(&[1.0, 2.0, 3.0]);
        let hits = h.search(&[1.0, 2.0, 3.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn exact_on_small_sets() {
        // With ef >= n the beam search must be exact.
        let vecs = random_vecs(40, 8, 1);
        let mut h = Hnsw::new(
            8,
            Metric::Euclidean,
            HnswConfig { ef_search: 64, ef_construction: 64, ..Default::default() },
        );
        let mut bf = BruteForceIndex::new(8, Metric::Euclidean);
        for v in &vecs {
            h.add(v);
            bf.add(v);
        }
        for q in random_vecs(10, 8, 2) {
            let a: Vec<usize> = h.search(&q, 5).into_iter().map(|(i, _)| i).collect();
            let b: Vec<usize> = bf.search(&q, 5).into_iter().map(|(i, _)| i).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn high_recall_on_larger_sets() {
        let vecs = random_vecs(800, 16, 3);
        let mut h = Hnsw::new(16, Metric::Cosine, HnswConfig::default());
        let mut bf = BruteForceIndex::new(16, Metric::Cosine);
        for v in &vecs {
            h.add(v);
            bf.add(v);
        }
        let queries = random_vecs(30, 16, 4);
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let approx: std::collections::HashSet<usize> =
                h.search(q, 10).into_iter().map(|(i, _)| i).collect();
            for (i, _) in bf.search(q, 10) {
                total += 1;
                if approx.contains(&i) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.9, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn distances_ascending() {
        let vecs = random_vecs(100, 4, 5);
        let mut h = Hnsw::new(4, Metric::Euclidean, HnswConfig::default());
        for v in &vecs {
            h.add(v);
        }
        let hits = h.search(&[0.0; 4], 10);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
