//! Exact (brute-force) k-nearest-neighbour index over dense vectors.
//!
//! The corpora in this reproduction are thousands of vectors, where exact
//! scan is both fastest to build and a correctness oracle for the
//! approximate indexes ([`crate::hnsw`], [`crate::simhash`]).

/// Inner product, unrolled four lanes per iteration with a **single**
/// accumulator so the addition sequence — and therefore every bit of the
/// `f32` result — matches the naive element-by-element loop. (Multiple
/// partial accumulators would be faster still but change float rounding,
/// which would silently invalidate every persisted HNSW graph.)
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        acc += x[0] * y[0];
        acc += x[1] * y[1];
        acc += x[2] * y[2];
        acc += x[3] * y[3];
    }
    for (&x, &y) in ra.iter().zip(rb) {
        acc += x * y;
    }
    acc
}

/// Squared L2 norm — `dot(a, a)` with the same single-accumulator
/// unrolling, bit-identical to the naive sum of squares.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Squared Euclidean distance, single-accumulator unroll (bit-identical
/// to the naive loop).
#[inline]
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        let d0 = x[0] - y[0];
        acc += d0 * d0;
        let d1 = x[1] - y[1];
        acc += d1 * d1;
        let d2 = x[2] - y[2];
        acc += d2 * d2;
        let d3 = x[3] - y[3];
        acc += d3 * d3;
    }
    for (&x, &y) in ra.iter().zip(rb) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Distance metric for dense indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Cosine distance `1 − cos(a, b)`.
    Cosine,
    /// Squared Euclidean distance.
    Euclidean,
}

impl Metric {
    /// Stable on-disk tag (used by `tsfm_store`'s binary formats). Never
    /// renumber existing variants.
    pub fn tag(self) -> u8 {
        match self {
            Metric::Cosine => 0,
            Metric::Euclidean => 1,
        }
    }

    /// Inverse of [`Metric::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Metric> {
        match tag {
            0 => Some(Metric::Cosine),
            1 => Some(Metric::Euclidean),
            _ => None,
        }
    }

    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => self.distance_prenorm(a, norm_sq(a), b, norm_sq(b)),
            Metric::Euclidean => sq_euclidean(a, b),
        }
    }

    /// [`Metric::distance`] with both squared norms supplied by the
    /// caller. This is the hot-path kernel: indexes cache `norm_sq` per
    /// stored vector and per query, so a cosine distance costs one fused
    /// dot product over adjacent memory instead of three accumulations.
    /// Bit-identical to `distance` (each accumulator of the old fused
    /// loop summed independently, so hoisting the norms out does not
    /// change any rounding).
    #[inline]
    pub fn distance_prenorm(self, a: &[f32], a_norm_sq: f32, b: &[f32], b_norm_sq: f32) -> f32 {
        match self {
            Metric::Cosine => {
                if a_norm_sq == 0.0 || b_norm_sq == 0.0 {
                    1.0
                } else {
                    1.0 - dot(a, b) / (a_norm_sq.sqrt() * b_norm_sq.sqrt())
                }
            }
            Metric::Euclidean => sq_euclidean(a, b),
        }
    }

    /// The squared-norm cache entry for one vector under this metric:
    /// only cosine consumes it, so Euclidean indexes store zeros.
    #[inline]
    pub fn norm_cache(self, v: &[f32]) -> f32 {
        match self {
            Metric::Cosine => norm_sq(v),
            Metric::Euclidean => 0.0,
        }
    }
}

/// A brute-force index: ids are assigned densely in insertion order.
/// Vectors live in one contiguous row-major arena with per-row cached
/// squared norms, so a scan is a straight sweep of adjacent memory.
pub struct BruteForceIndex {
    dim: usize,
    metric: Metric,
    data: Vec<f32>,
    norms: Vec<f32>,
}

impl BruteForceIndex {
    pub fn new(dim: usize, metric: Metric) -> Self {
        Self { dim, metric, data: Vec::new(), norms: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert a vector, returning its id.
    pub fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector dim");
        self.data.extend_from_slice(v);
        self.norms.push(self.metric.norm_cache(v));
        self.len() - 1
    }

    pub fn get(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Exact top-k by ascending distance. Ties break by id for
    /// reproducibility.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        assert_eq!(query.len(), self.dim, "query dim");
        let qn = self.metric.norm_cache(query);
        let mut hits: Vec<(usize, f32)> = (0..self.len())
            .map(|i| (i, self.metric.distance_prenorm(query, qn, self.get(i), self.norms[i])))
            .collect();
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_distance_basics() {
        let m = Metric::Cosine;
        assert!(m.distance(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-6);
        assert!((m.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((m.distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        assert_eq!(m.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0, "zero vector safe");
    }

    #[test]
    fn euclidean_distance() {
        let m = Metric::Euclidean;
        assert_eq!(m.distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn search_orders_by_distance() {
        let mut idx = BruteForceIndex::new(2, Metric::Euclidean);
        idx.add(&[0.0, 0.0]);
        idx.add(&[1.0, 0.0]);
        idx.add(&[5.0, 0.0]);
        let hits = idx.search(&[0.9, 0.0], 3);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 0);
        assert_eq!(hits[2].0, 2);
        assert_eq!(idx.search(&[0.0, 0.0], 1).len(), 1);
    }

    /// The pre-optimization distance kernels, verbatim: one fused loop
    /// accumulating dot and both norms (cosine), and the element-wise
    /// squared-difference sum (Euclidean).
    fn reference_distance(metric: Metric, a: &[f32], b: &[f32]) -> f32 {
        match metric {
            Metric::Cosine => {
                let mut dot = 0.0f32;
                let mut na = 0.0f32;
                let mut nb = 0.0f32;
                for (&x, &y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - dot / (na.sqrt() * nb.sqrt())
                }
            }
            Metric::Euclidean => {
                let mut s = 0.0f32;
                for (&x, &y) in a.iter().zip(b) {
                    let d = x - y;
                    s += d * d;
                }
                s
            }
        }
    }

    /// The unrolled cached-norm kernels must agree with the reference
    /// fused loops to the last bit — the arena HNSW persists graphs built
    /// from these distances. Exercises every unroll remainder (len % 4).
    #[test]
    fn unrolled_kernels_bit_identical_to_reference() {
        use tsfm_table::hash::splitmix64;
        for dim in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33] {
            for seed in 0u64..20 {
                let v = |salt: u64| -> Vec<f32> {
                    (0..dim)
                        .map(|j| {
                            let h = splitmix64(seed ^ salt ^ ((j as u64) << 32));
                            (h % 1000) as f32 / 250.0 - 2.0
                        })
                        .collect()
                };
                let (a, b) = (v(0x1111), v(0x2222));
                for metric in [Metric::Cosine, Metric::Euclidean] {
                    let fast = metric.distance(&a, &b);
                    let prenorm = metric.distance_prenorm(
                        &a,
                        metric.norm_cache(&a),
                        &b,
                        metric.norm_cache(&b),
                    );
                    let reference = reference_distance(metric, &a, &b);
                    assert_eq!(
                        fast.to_bits(),
                        reference.to_bits(),
                        "{metric:?} dim={dim} seed={seed}: distance() drifted"
                    );
                    assert_eq!(
                        prenorm.to_bits(),
                        reference.to_bits(),
                        "{metric:?} dim={dim} seed={seed}: distance_prenorm() drifted"
                    );
                }
                // Zero-vector guard unchanged.
                let z = vec![0.0f32; dim];
                assert_eq!(
                    Metric::Cosine.distance(&a, &z),
                    reference_distance(Metric::Cosine, &a, &z)
                );
            }
        }
    }

    #[test]
    fn deterministic_tie_break() {
        let mut idx = BruteForceIndex::new(1, Metric::Euclidean);
        idx.add(&[1.0]);
        idx.add(&[1.0]);
        let hits = idx.search(&[1.0], 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}
