//! Exact (brute-force) k-nearest-neighbour index over dense vectors.
//!
//! The corpora in this reproduction are thousands of vectors, where exact
//! scan is both fastest to build and a correctness oracle for the
//! approximate indexes ([`crate::hnsw`], [`crate::simhash`]).

/// Distance metric for dense indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Cosine distance `1 − cos(a, b)`.
    Cosine,
    /// Squared Euclidean distance.
    Euclidean,
}

impl Metric {
    /// Stable on-disk tag (used by `tsfm_store`'s binary formats). Never
    /// renumber existing variants.
    pub fn tag(self) -> u8 {
        match self {
            Metric::Cosine => 0,
            Metric::Euclidean => 1,
        }
    }

    /// Inverse of [`Metric::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Metric> {
        match tag {
            0 => Some(Metric::Cosine),
            1 => Some(Metric::Euclidean),
            _ => None,
        }
    }

    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => {
                let mut dot = 0.0f32;
                let mut na = 0.0f32;
                let mut nb = 0.0f32;
                for (&x, &y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    1.0
                } else {
                    1.0 - dot / (na.sqrt() * nb.sqrt())
                }
            }
            Metric::Euclidean => {
                let mut s = 0.0f32;
                for (&x, &y) in a.iter().zip(b) {
                    let d = x - y;
                    s += d * d;
                }
                s
            }
        }
    }
}

/// A brute-force index: ids are assigned densely in insertion order.
pub struct BruteForceIndex {
    dim: usize,
    metric: Metric,
    data: Vec<f32>,
}

impl BruteForceIndex {
    pub fn new(dim: usize, metric: Metric) -> Self {
        Self { dim, metric, data: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert a vector, returning its id.
    pub fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector dim");
        self.data.extend_from_slice(v);
        self.len() - 1
    }

    pub fn get(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Exact top-k by ascending distance. Ties break by id for
    /// reproducibility.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        assert_eq!(query.len(), self.dim, "query dim");
        let mut hits: Vec<(usize, f32)> = (0..self.len())
            .map(|i| (i, self.metric.distance(query, self.get(i))))
            .collect();
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_distance_basics() {
        let m = Metric::Cosine;
        assert!(m.distance(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-6);
        assert!((m.distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-6);
        assert!((m.distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        assert_eq!(m.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0, "zero vector safe");
    }

    #[test]
    fn euclidean_distance() {
        let m = Metric::Euclidean;
        assert_eq!(m.distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn search_orders_by_distance() {
        let mut idx = BruteForceIndex::new(2, Metric::Euclidean);
        idx.add(&[0.0, 0.0]);
        idx.add(&[1.0, 0.0]);
        idx.add(&[5.0, 0.0]);
        let hits = idx.search(&[0.9, 0.0], 3);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 0);
        assert_eq!(hits[2].0, 2);
        assert_eq!(idx.search(&[0.0, 0.0], 1).len(), 1);
    }

    #[test]
    fn deterministic_tie_break() {
        let mut idx = BruteForceIndex::new(1, Metric::Euclidean);
        idx.add(&[1.0]);
        idx.add(&[1.0]);
        let hits = idx.search(&[1.0], 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}
