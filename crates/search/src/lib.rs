//! Search infrastructure for data discovery: exact and approximate
//! nearest-neighbour indexes, set-overlap search, the paper's Fig.-6
//! table-ranking algorithm, and the evaluation metrics of §IV.

#![forbid(unsafe_code)]

pub mod hnsw;
pub mod knn;
pub mod metrics;
pub mod overlap;
pub mod rank;
pub mod simhash;

pub use hnsw::{Hnsw, HnswConfig, HnswSnapshot, SearchScratch};
pub use knn::{BruteForceIndex, Metric};
pub use metrics::{
    evaluate_search, f1_at_k, f1_curve, multilabel_weighted_f1, precision_at_k, r2_score,
    recall_at_k, weighted_f1, SearchScores,
};
pub use overlap::{JosieIndex, LshForest, MinHashLsh};
pub use rank::{
    column_near_tables, near_tables, near_tables_with_provenance, ranked_table_ids, ColumnHit,
    ColumnProvenance, RankedTable, RankedTableDetail,
};
pub use simhash::{SimHashConfig, SimHashLsh};
