//! Evaluation metrics: P@k / R@k / F1@k for search (paper Tables V–VIII,
//! Fig. 4/8), weighted F1 for classification (Table II), and R² for
//! regression tasks.

use std::collections::BTreeSet;

/// Precision@k: fraction of the top-k retrieved that are relevant.
pub fn precision_at_k(retrieved: &[usize], gold: &BTreeSet<usize>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = retrieved.iter().take(k).filter(|id| gold.contains(id)).count();
    hits as f64 / k as f64
}

/// Recall@k: fraction of the gold set found in the top-k.
pub fn recall_at_k(retrieved: &[usize], gold: &BTreeSet<usize>, k: usize) -> f64 {
    if gold.is_empty() {
        return 0.0;
    }
    let hits = retrieved.iter().take(k).filter(|id| gold.contains(id)).count();
    hits as f64 / gold.len() as f64
}

/// F1@k (harmonic mean of P@k and R@k).
pub fn f1_at_k(retrieved: &[usize], gold: &BTreeSet<usize>, k: usize) -> f64 {
    let p = precision_at_k(retrieved, gold, k);
    let r = recall_at_k(retrieved, gold, k);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Search results over a query set at a fixed k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchScores {
    pub mean_f1: f64,
    pub mean_precision: f64,
    pub mean_recall: f64,
}

/// Mean F1 / P / R at `k` over all queries.
pub fn evaluate_search(
    retrieved: &[Vec<usize>],
    gold: &[BTreeSet<usize>],
    k: usize,
) -> SearchScores {
    assert_eq!(retrieved.len(), gold.len(), "one result list per query");
    let n = retrieved.len().max(1) as f64;
    let mut f1 = 0.0;
    let mut p = 0.0;
    let mut r = 0.0;
    for (ret, g) in retrieved.iter().zip(gold) {
        f1 += f1_at_k(ret, g, k);
        p += precision_at_k(ret, g, k);
        r += recall_at_k(ret, g, k);
    }
    SearchScores { mean_f1: f1 / n, mean_precision: p / n, mean_recall: r / n }
}

/// F1@k series over a k sweep (the Fig. 4/8 curves).
pub fn f1_curve(retrieved: &[Vec<usize>], gold: &[BTreeSet<usize>], ks: &[usize]) -> Vec<f64> {
    ks.iter().map(|&k| evaluate_search(retrieved, gold, k).mean_f1).collect()
}

/// Weighted F1 over arbitrary class labels (the paper's classification
/// metric, handling class skew): per-class F1 weighted by gold support.
pub fn weighted_f1(pred: &[usize], gold: &[usize]) -> f64 {
    assert_eq!(pred.len(), gold.len());
    if gold.is_empty() {
        return 0.0;
    }
    let classes: BTreeSet<usize> = gold.iter().chain(pred.iter()).copied().collect();
    let mut total = 0.0;
    for &c in &classes {
        let tp = pred
            .iter()
            .zip(gold)
            .filter(|(p, g)| **p == c && **g == c)
            .count() as f64;
        let fp = pred
            .iter()
            .zip(gold)
            .filter(|(p, g)| **p == c && **g != c)
            .count() as f64;
        let fn_ = pred
            .iter()
            .zip(gold)
            .filter(|(p, g)| **p != c && **g == c)
            .count() as f64;
        let support = gold.iter().filter(|&&g| g == c).count() as f64;
        let prec = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let rec = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        let f1 = if prec + rec > 0.0 { 2.0 * prec * rec / (prec + rec) } else { 0.0 };
        total += f1 * support;
    }
    total / gold.len() as f64
}

/// Multi-label weighted F1: one binary judgment per (example, class),
/// weighted by per-class positive support (scikit-learn's `weighted`
/// average over labels).
pub fn multilabel_weighted_f1(pred: &[Vec<bool>], gold: &[Vec<bool>]) -> f64 {
    assert_eq!(pred.len(), gold.len());
    if gold.is_empty() {
        return 0.0;
    }
    let classes = gold[0].len();
    let mut total = 0.0;
    let mut weight = 0.0;
    for c in 0..classes {
        let tp = pred
            .iter()
            .zip(gold)
            .filter(|(p, g)| p[c] && g[c])
            .count() as f64;
        let fp = pred
            .iter()
            .zip(gold)
            .filter(|(p, g)| p[c] && !g[c])
            .count() as f64;
        let fn_ = pred
            .iter()
            .zip(gold)
            .filter(|(p, g)| !p[c] && g[c])
            .count() as f64;
        let support = tp + fn_;
        let prec = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let rec = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        let f1 = if prec + rec > 0.0 { 2.0 * prec * rec / (prec + rec) } else { 0.0 };
        total += f1 * support;
        weight += support;
    }
    if weight == 0.0 {
        0.0
    } else {
        total / weight
    }
}

/// Coefficient of determination R² (regression tasks).
pub fn r2_score(pred: &[f64], gold: &[f64]) -> f64 {
    assert_eq!(pred.len(), gold.len());
    if gold.is_empty() {
        return 0.0;
    }
    let mean = gold.iter().sum::<f64>() / gold.len() as f64;
    let ss_tot: f64 = gold.iter().map(|g| (g - mean) * (g - mean)).sum();
    let ss_res: f64 = pred.iter().zip(gold).map(|(p, g)| (p - g) * (p - g)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gold(ids: &[usize]) -> BTreeSet<usize> {
        ids.iter().copied().collect()
    }

    #[test]
    fn pk_rk_f1() {
        let retrieved = vec![1, 2, 3, 4, 5];
        let g = gold(&[1, 3, 9, 10]);
        assert_eq!(precision_at_k(&retrieved, &g, 5), 0.4);
        assert_eq!(recall_at_k(&retrieved, &g, 5), 0.5);
        let f1 = f1_at_k(&retrieved, &g, 5);
        assert!((f1 - 2.0 * 0.4 * 0.5 / 0.9).abs() < 1e-12);
        // Perfect retrieval at k = |gold|.
        let r2 = vec![1, 3, 9, 10];
        assert_eq!(f1_at_k(&r2, &g, 4), 1.0);
    }

    #[test]
    fn degenerate_cases() {
        let g = gold(&[]);
        assert_eq!(recall_at_k(&[1, 2], &g, 2), 0.0);
        assert_eq!(f1_at_k(&[1, 2], &g, 2), 0.0);
        assert_eq!(precision_at_k(&[1], &gold(&[1]), 0), 0.0);
    }

    #[test]
    fn evaluate_search_averages() {
        let retrieved = vec![vec![1, 2], vec![3, 4]];
        let golds = vec![gold(&[1, 2]), gold(&[9, 10])];
        let s = evaluate_search(&retrieved, &golds, 2);
        assert!((s.mean_f1 - 0.5).abs() < 1e-12);
        assert!((s.mean_precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_curve_monotone_recall() {
        let retrieved = vec![vec![1, 2, 3, 4]];
        let golds = vec![gold(&[1, 2, 3, 4])];
        let curve = f1_curve(&retrieved, &golds, &[1, 2, 4]);
        assert!(curve[0] < curve[1] && curve[1] < curve[2]);
        assert_eq!(curve[2], 1.0);
    }

    #[test]
    fn weighted_f1_perfect_and_skewed() {
        assert_eq!(weighted_f1(&[0, 1, 1], &[0, 1, 1]), 1.0);
        // All-zero predictor on skewed labels: F1(class0) weighted high.
        let pred = vec![0; 10];
        let mut g = vec![0; 9];
        g.push(1);
        let w = weighted_f1(&pred, &g);
        assert!(w > 0.8 && w < 1.0, "{w}");
        assert_eq!(weighted_f1(&[], &[]), 0.0);
    }

    #[test]
    fn multilabel_f1() {
        let pred = vec![vec![true, false], vec![true, true]];
        let gold = vec![vec![true, false], vec![true, true]];
        assert_eq!(multilabel_weighted_f1(&pred, &gold), 1.0);
        let bad = vec![vec![false, false], vec![false, false]];
        assert_eq!(multilabel_weighted_f1(&bad, &gold), 0.0);
    }

    #[test]
    fn r2_properties() {
        let gold = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2_score(&gold, &gold), 1.0);
        // Predicting the mean gives R² = 0.
        let mean = vec![2.5; 4];
        assert!(r2_score(&mean, &gold).abs() < 1e-12);
        // Worse than the mean is negative.
        let bad = vec![4.0, 3.0, 2.0, 1.0];
        assert!(r2_score(&bad, &gold) < 0.0);
    }
}
