//! Set-overlap search: a Josie-style exact top-k engine and MinHash-based
//! approximate indexes (banded LSH and an LSH Forest).
//!
//! * [`JosieIndex`] — exact top-k set overlap/containment via an inverted
//!   index over value hashes (JOSIE's result semantics; its cost-based
//!   candidate pruning is unnecessary at this corpus scale).
//! * [`MinHashLsh`] — classic banded LSH over MinHash signatures, candidate
//!   generation + exact-signature re-ranking (the LSH Ensemble stand-in).
//! * [`LshForest`] — prefix-tree LSH Forest (Bawa et al.) supporting top-k
//!   without a similarity threshold, as used by the paper's LSHForest
//!   baseline.

use std::collections::{BTreeMap, HashMap, HashSet};
use tsfm_sketch::MinHash;

/// Exact top-k overlap search over sets of hashed values.
pub struct JosieIndex {
    postings: HashMap<u64, Vec<u32>>,
    set_sizes: Vec<usize>,
}

impl Default for JosieIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl JosieIndex {
    pub fn new() -> Self {
        Self { postings: HashMap::new(), set_sizes: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.set_sizes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set_sizes.is_empty()
    }

    /// Add a set (deduplicated internally), returning its id.
    pub fn add<I: IntoIterator<Item = u64>>(&mut self, elements: I) -> usize {
        let id = self.set_sizes.len() as u32;
        let set: HashSet<u64> = elements.into_iter().collect();
        for &e in &set {
            self.postings.entry(e).or_default().push(id);
        }
        self.set_sizes.push(set.len());
        id as usize
    }

    /// Exact top-k by overlap `|Q ∩ S|` (descending; ties by id).
    pub fn top_k_overlap<I: IntoIterator<Item = u64>>(
        &self,
        query: I,
        k: usize,
    ) -> Vec<(usize, usize)> {
        let q: HashSet<u64> = query.into_iter().collect();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for e in &q {
            if let Some(post) = self.postings.get(e) {
                for &id in post {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut hits: Vec<(usize, usize)> =
            counts.into_iter().map(|(id, c)| (id as usize, c)).collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }

    /// Exact top-k by containment `|Q ∩ S| / |Q|` of the query in each set
    /// — LSH Ensemble's relevance notion for joinable-table search.
    pub fn top_k_containment<I: IntoIterator<Item = u64>>(
        &self,
        query: I,
        k: usize,
    ) -> Vec<(usize, f64)> {
        let q: Vec<u64> = query.into_iter().collect::<HashSet<_>>().into_iter().collect();
        let qn = q.len().max(1) as f64;
        self.top_k_overlap(q, k)
            .into_iter()
            .map(|(id, c)| (id, c as f64 / qn))
            .collect()
    }
}

/// Banded MinHash LSH: signatures are split into `bands` bands of `rows`
/// slots; sets sharing any band bucket become candidates, then candidates
/// are re-ranked by full-signature Jaccard estimate.
pub struct MinHashLsh {
    bands: usize,
    rows: usize,
    buckets: Vec<HashMap<u64, Vec<u32>>>,
    sigs: Vec<MinHash>,
}

impl MinHashLsh {
    /// `bands * rows` must equal the signature width.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0);
        Self { bands, rows, buckets: vec![HashMap::new(); bands], sigs: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    fn band_key(&self, sig: &MinHash, band: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &v in &sig.sig[band * self.rows..(band + 1) * self.rows] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn add(&mut self, sig: MinHash) -> usize {
        assert_eq!(sig.k(), self.bands * self.rows, "signature width");
        let id = self.sigs.len() as u32;
        for b in 0..self.bands {
            let key = self.band_key(&sig, b);
            self.buckets[b].entry(key).or_default().push(id);
        }
        self.sigs.push(sig);
        id as usize
    }

    /// Candidate ids sharing at least one band bucket with the query.
    pub fn candidates(&self, sig: &MinHash) -> HashSet<usize> {
        let mut out = HashSet::new();
        for b in 0..self.bands {
            if let Some(ids) = self.buckets[b].get(&self.band_key(sig, b)) {
                out.extend(ids.iter().map(|&i| i as usize));
            }
        }
        out
    }

    /// Top-k candidates re-ranked by estimated Jaccard (descending).
    pub fn search(&self, sig: &MinHash, k: usize) -> Vec<(usize, f64)> {
        let mut hits: Vec<(usize, f64)> = self
            .candidates(sig)
            .into_iter()
            .map(|id| (id, self.sigs[id].jaccard(sig)))
            .collect();
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

/// LSH Forest: `trees` independent prefix orderings of the signature;
/// top-k candidates are collected by descending longest-common-prefix
/// depth, then re-ranked by full-signature Jaccard.
pub struct LshForest {
    trees: Vec<Tree>,
    sigs: Vec<MinHash>,
    depth: usize,
}

struct Tree {
    /// Which signature slots this tree reads, in order.
    perm: Vec<usize>,
    /// Sorted (key, id); key = permuted signature prefix of `depth` slots.
    entries: BTreeMap<Vec<u64>, Vec<u32>>,
}

impl LshForest {
    pub fn new(trees: usize, depth: usize, sig_width: usize, seed: u64) -> Self {
        assert!(depth <= sig_width);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let trees = (0..trees)
            .map(|_| {
                let mut perm: Vec<usize> = (0..sig_width).collect();
                // Fisher-Yates with the local xorshift.
                for i in (1..perm.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    perm.swap(i, j);
                }
                perm.truncate(depth);
                Tree { perm, entries: BTreeMap::new() }
            })
            .collect();
        Self { trees, sigs: Vec::new(), depth }
    }

    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    fn key_for(tree: &Tree, sig: &MinHash) -> Vec<u64> {
        tree.perm.iter().map(|&i| sig.sig[i]).collect()
    }

    pub fn add(&mut self, sig: MinHash) -> usize {
        let id = self.sigs.len() as u32;
        for t in &mut self.trees {
            let key = Self::key_for(t, &sig);
            t.entries.entry(key).or_default().push(id);
        }
        self.sigs.push(sig);
        id as usize
    }

    /// Top-k by longest-prefix candidacy, re-ranked by Jaccard estimate.
    pub fn search(&self, sig: &MinHash, k: usize) -> Vec<(usize, f64)> {
        let mut cands: HashSet<usize> = HashSet::new();
        // Descend from the full depth; stop once enough candidates.
        for d in (0..=self.depth).rev() {
            for t in &self.trees {
                let prefix = &Self::key_for(t, sig)[..d];
                // Range scan over keys sharing the prefix.
                let lo = prefix.to_vec();
                let mut hi = prefix.to_vec();
                hi.push(u64::MAX);
                for (_, ids) in t.entries.range(lo..=hi) {
                    cands.extend(ids.iter().map(|&i| i as usize));
                }
            }
            if cands.len() >= k * 3 {
                break;
            }
        }
        let mut hits: Vec<(usize, f64)> =
            cands.into_iter().map(|id| (id, self.sigs[id].jaccard(sig))).collect();
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_sketch::MinHasher;
    use tsfm_table::hash::hash_str;

    fn hashes(prefix: &str, range: std::ops::Range<usize>) -> Vec<u64> {
        range.map(|i| hash_str(&format!("{prefix}{i}"))).collect()
    }

    #[test]
    fn josie_exact_topk() {
        let mut idx = JosieIndex::new();
        idx.add(hashes("x", 0..100)); // overlap 50
        idx.add(hashes("x", 25..75)); // overlap 50
        idx.add(hashes("y", 0..100)); // overlap 0
        idx.add(hashes("x", 40..60)); // overlap 10
        let hits = idx.top_k_overlap(hashes("x", 0..50), 3);
        assert_eq!(hits[0], (0, 50));
        assert_eq!(hits[1], (1, 25));
        assert_eq!(hits[2], (3, 10));
    }

    #[test]
    fn josie_containment() {
        let mut idx = JosieIndex::new();
        idx.add(hashes("x", 0..100));
        let hits = idx.top_k_containment(hashes("x", 0..50), 1);
        assert_eq!(hits[0].0, 0);
        assert!((hits[0].1 - 1.0).abs() < 1e-12, "query fully contained");
    }

    #[test]
    fn josie_empty_query() {
        let mut idx = JosieIndex::new();
        idx.add(hashes("x", 0..10));
        assert!(idx.top_k_overlap(Vec::new(), 5).is_empty());
    }

    #[test]
    fn minhash_lsh_finds_similar() {
        let mh = MinHasher::new(64, 0);
        let mut idx = MinHashLsh::new(16, 4);
        // 20 similar sets and 50 dissimilar.
        for i in 0..20 {
            let sig = mh.signature((0..100).map(|j| {
                if j < 90 {
                    format!("shared{j}")
                } else {
                    format!("own{i}_{j}")
                }
            }));
            idx.add(sig);
        }
        for i in 0..50 {
            idx.add(mh.signature((0..100).map(|j| format!("noise{i}_{j}"))));
        }
        let q = mh.signature((0..90).map(|j| format!("shared{j}")));
        let hits = idx.search(&q, 20);
        assert!(hits.len() >= 15, "most similar sets retrieved: {}", hits.len());
        for (id, j) in &hits[..10] {
            assert!(*id < 20, "top hits are the similar sets");
            assert!(*j > 0.5);
        }
    }

    #[test]
    fn lsh_forest_topk_without_threshold() {
        let mh = MinHasher::new(64, 0);
        let mut forest = LshForest::new(6, 8, 64, 9);
        // Graded similarity: set i shares 100-i elements with the query.
        for i in 0..30 {
            let sig = mh.signature((0..100).map(|j| {
                if j < 100 - i * 3 {
                    format!("q{j}")
                } else {
                    format!("o{i}_{j}")
                }
            }));
            forest.add(sig);
        }
        let q = mh.signature((0..100).map(|j| format!("q{j}")));
        let hits = forest.search(&q, 5);
        assert_eq!(hits.len(), 5);
        // The most-overlapping sets (small i) should dominate the top.
        assert!(hits[0].0 <= 2, "top hit {:?}", hits[0]);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending similarity");
        }
    }

    #[test]
    fn lsh_banding_width_enforced() {
        let mh = MinHasher::new(32, 0);
        let mut idx = MinHashLsh::new(8, 4);
        idx.add(mh.signature(["a", "b"]));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    #[should_panic(expected = "signature width")]
    fn lsh_wrong_width_panics() {
        let mh = MinHasher::new(16, 0);
        let mut idx = MinHashLsh::new(8, 4);
        idx.add(mh.signature(["a"]));
    }
}
