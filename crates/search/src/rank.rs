//! The paper's table-ranking algorithm (Fig. 6).
//!
//! Given per-query-column nearest-column hits (`KNNSEARCH` with `k·3`
//! over-retrieval), the algorithm:
//! 1. `COLUMNNEARTABLES` — per column, collapse hits to tables keeping each
//!    table's *closest* matching column distance;
//! 2. `NEARTABLES` — union the per-column table sets;
//! 3. `RANK1` — prefer tables matching more query columns;
//! 4. `RANK2` — break ties by the smaller sum of column distances.

use std::collections::HashMap;

/// One retrieved column: which table owns it and the embedding distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnHit {
    pub table: usize,
    pub distance: f32,
}

/// Aggregated candidate table.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTable {
    pub table: usize,
    /// RANK1 key: number of query columns with a match in this table.
    pub matching_columns: usize,
    /// RANK2 key: sum of the per-column minimum distances.
    pub distance_sum: f32,
}

/// `COLUMNNEARTABLES` for one query column: table → min distance.
pub fn column_near_tables(hits: &[ColumnHit]) -> HashMap<usize, f32> {
    let mut best: HashMap<usize, f32> = HashMap::new();
    for h in hits {
        best.entry(h.table)
            .and_modify(|d| {
                if h.distance < *d {
                    *d = h.distance;
                }
            })
            .or_insert(h.distance);
    }
    best
}

/// `NEARTABLES` + `RANK1`/`RANK2`: rank candidate tables for a query table
/// given each of its columns' hits. `exclude` drops the query table itself
/// from the ranking (a query trivially matches itself).
pub fn near_tables(per_column_hits: &[Vec<ColumnHit>], exclude: Option<usize>) -> Vec<RankedTable> {
    let mut counts: HashMap<usize, (usize, f32)> = HashMap::new();
    for hits in per_column_hits {
        for (table, d) in column_near_tables(hits) {
            if Some(table) == exclude {
                continue;
            }
            let e = counts.entry(table).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += d;
        }
    }
    let mut out: Vec<RankedTable> = counts
        .into_iter()
        .map(|(table, (matching_columns, distance_sum))| RankedTable {
            table,
            matching_columns,
            distance_sum,
        })
        .collect();
    out.sort_by(|a, b| {
        b.matching_columns
            .cmp(&a.matching_columns)
            .then(a.distance_sum.partial_cmp(&b.distance_sum).expect("finite"))
            .then(a.table.cmp(&b.table))
    });
    out
}

/// Convenience: ranked table ids only.
pub fn ranked_table_ids(per_column_hits: &[Vec<ColumnHit>], exclude: Option<usize>) -> Vec<usize> {
    near_tables(per_column_hits, exclude).into_iter().map(|r| r.table).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(table: usize, distance: f32) -> ColumnHit {
        ColumnHit { table, distance }
    }

    #[test]
    fn column_near_tables_keeps_min() {
        let hits = vec![hit(1, 0.5), hit(1, 0.2), hit(2, 0.3)];
        let m = column_near_tables(&hits);
        assert_eq!(m[&1], 0.2);
        assert_eq!(m[&2], 0.3);
    }

    #[test]
    fn rank1_prefers_more_matching_columns() {
        // Table 5 matches both query columns (faraway); table 7 matches one
        // (very close). RANK1 puts 5 first.
        let per_col = vec![
            vec![hit(5, 0.9), hit(7, 0.01)],
            vec![hit(5, 0.9)],
        ];
        let ranked = near_tables(&per_col, None);
        assert_eq!(ranked[0].table, 5);
        assert_eq!(ranked[0].matching_columns, 2);
        assert_eq!(ranked[1].table, 7);
    }

    #[test]
    fn rank2_breaks_ties_by_distance() {
        let per_col = vec![vec![hit(1, 0.5), hit(2, 0.1)]];
        let ranked = near_tables(&per_col, None);
        assert_eq!(ranked[0].table, 2);
        assert_eq!(ranked[1].table, 1);
    }

    #[test]
    fn excludes_query_table() {
        let per_col = vec![vec![hit(0, 0.0), hit(1, 0.5)]];
        let ids = ranked_table_ids(&per_col, Some(0));
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn multiple_columns_same_table_counted_once_per_query_column() {
        // Two corpus columns of table 3 match query column 0; table 3 must
        // count once for that query column, with the min distance.
        let per_col = vec![vec![hit(3, 0.4), hit(3, 0.1)]];
        let ranked = near_tables(&per_col, None);
        assert_eq!(ranked[0].matching_columns, 1);
        assert!((ranked[0].distance_sum - 0.1).abs() < 1e-6);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let per_col = vec![vec![hit(9, 0.5), hit(4, 0.5)]];
        let ids = ranked_table_ids(&per_col, None);
        assert_eq!(ids, vec![4, 9]);
    }
}
