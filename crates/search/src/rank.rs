//! The paper's table-ranking algorithm (Fig. 6).
//!
//! Given per-query-column nearest-column hits (`KNNSEARCH` with `k·3`
//! over-retrieval), the algorithm:
//! 1. `COLUMNNEARTABLES` — per column, collapse hits to tables keeping each
//!    table's *closest* matching column distance;
//! 2. `NEARTABLES` — union the per-column table sets;
//! 3. `RANK1` — prefer tables matching more query columns;
//! 4. `RANK2` — break ties by the smaller sum of column distances.

use std::collections::HashMap;

/// One retrieved column: which table owns it, which corpus column it is
/// (a dense index into the searched column space, kept for ranking
/// provenance), and the embedding distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnHit {
    pub table: usize,
    /// Dense index of the retrieved corpus column.
    pub column: usize,
    pub distance: f32,
}

/// Aggregated candidate table.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTable {
    pub table: usize,
    /// RANK1 key: number of query columns with a match in this table.
    pub matching_columns: usize,
    /// RANK2 key: sum of the per-column minimum distances.
    pub distance_sum: f32,
}

/// `COLUMNNEARTABLES` for one query column: table → min distance.
pub fn column_near_tables(hits: &[ColumnHit]) -> HashMap<usize, f32> {
    let mut best: HashMap<usize, f32> = HashMap::new();
    for h in hits {
        best.entry(h.table)
            .and_modify(|d| {
                if h.distance < *d {
                    *d = h.distance;
                }
            })
            .or_insert(h.distance);
    }
    best
}

/// `NEARTABLES` + `RANK1`/`RANK2`: rank candidate tables for a query table
/// given each of its columns' hits. `exclude` drops the query table itself
/// from the ranking (a query trivially matches itself).
pub fn near_tables(per_column_hits: &[Vec<ColumnHit>], exclude: Option<usize>) -> Vec<RankedTable> {
    let mut counts: HashMap<usize, (usize, f32)> = HashMap::new();
    for hits in per_column_hits {
        for (table, d) in column_near_tables(hits) {
            if Some(table) == exclude {
                continue;
            }
            let e = counts.entry(table).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += d;
        }
    }
    let mut out: Vec<RankedTable> = counts
        .into_iter()
        .map(|(table, (matching_columns, distance_sum))| RankedTable {
            table,
            matching_columns,
            distance_sum,
        })
        .collect();
    out.sort_by(|a, b| {
        b.matching_columns
            .cmp(&a.matching_columns)
            .then(a.distance_sum.partial_cmp(&b.distance_sum).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.table.cmp(&b.table))
    });
    out
}

/// Convenience: ranked table ids only.
pub fn ranked_table_ids(per_column_hits: &[Vec<ColumnHit>], exclude: Option<usize>) -> Vec<usize> {
    near_tables(per_column_hits, exclude).into_iter().map(|r| r.table).collect()
}

/// Provenance of one matching query column inside a ranked table: which
/// corpus column produced the per-column minimum distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnProvenance {
    /// Index of the query column (position in `per_column_hits`).
    pub query_column: usize,
    /// Dense index of the closest matching corpus column.
    pub corpus_column: usize,
    pub distance: f32,
}

/// A [`RankedTable`] plus the per-column matches behind its rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTableDetail {
    pub table: usize,
    pub matching_columns: usize,
    pub distance_sum: f32,
    /// One entry per matching query column, in query-column order.
    pub matches: Vec<ColumnProvenance>,
}

/// [`near_tables`] with full provenance: identical ranking (same RANK1 /
/// RANK2 / id tie-break ordering), but every candidate table also carries
/// which corpus column each matching query column collapsed to. Ties
/// between equally-distant corpus columns break toward the smaller dense
/// index so explanations are deterministic.
pub fn near_tables_with_provenance(
    per_column_hits: &[Vec<ColumnHit>],
    exclude: Option<usize>,
) -> Vec<RankedTableDetail> {
    let mut agg: HashMap<usize, RankedTableDetail> = HashMap::new();
    for (qc, hits) in per_column_hits.iter().enumerate() {
        // COLUMNNEARTABLES, keeping the winning corpus column per table.
        let mut best: HashMap<usize, (f32, usize)> = HashMap::new();
        for h in hits {
            best.entry(h.table)
                .and_modify(|(d, col)| {
                    if h.distance < *d || (h.distance == *d && h.column < *col) {
                        *d = h.distance;
                        *col = h.column;
                    }
                })
                .or_insert((h.distance, h.column));
        }
        for (table, (distance, corpus_column)) in best {
            if Some(table) == exclude {
                continue;
            }
            let e = agg.entry(table).or_insert_with(|| RankedTableDetail {
                table,
                matching_columns: 0,
                distance_sum: 0.0,
                matches: Vec::new(),
            });
            e.matching_columns += 1;
            e.distance_sum += distance;
            e.matches.push(ColumnProvenance { query_column: qc, corpus_column, distance });
        }
    }
    let mut out: Vec<RankedTableDetail> = agg.into_values().collect();
    out.sort_by(|a, b| {
        b.matching_columns
            .cmp(&a.matching_columns)
            .then(a.distance_sum.partial_cmp(&b.distance_sum).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.table.cmp(&b.table))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(table: usize, distance: f32) -> ColumnHit {
        ColumnHit { table, column: 0, distance }
    }

    fn hit_col(table: usize, column: usize, distance: f32) -> ColumnHit {
        ColumnHit { table, column, distance }
    }

    #[test]
    fn column_near_tables_keeps_min() {
        let hits = vec![hit(1, 0.5), hit(1, 0.2), hit(2, 0.3)];
        let m = column_near_tables(&hits);
        assert_eq!(m[&1], 0.2);
        assert_eq!(m[&2], 0.3);
    }

    #[test]
    fn rank1_prefers_more_matching_columns() {
        // Table 5 matches both query columns (faraway); table 7 matches one
        // (very close). RANK1 puts 5 first.
        let per_col = vec![
            vec![hit(5, 0.9), hit(7, 0.01)],
            vec![hit(5, 0.9)],
        ];
        let ranked = near_tables(&per_col, None);
        assert_eq!(ranked[0].table, 5);
        assert_eq!(ranked[0].matching_columns, 2);
        assert_eq!(ranked[1].table, 7);
    }

    #[test]
    fn rank2_breaks_ties_by_distance() {
        let per_col = vec![vec![hit(1, 0.5), hit(2, 0.1)]];
        let ranked = near_tables(&per_col, None);
        assert_eq!(ranked[0].table, 2);
        assert_eq!(ranked[1].table, 1);
    }

    #[test]
    fn excludes_query_table() {
        let per_col = vec![vec![hit(0, 0.0), hit(1, 0.5)]];
        let ids = ranked_table_ids(&per_col, Some(0));
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn multiple_columns_same_table_counted_once_per_query_column() {
        // Two corpus columns of table 3 match query column 0; table 3 must
        // count once for that query column, with the min distance.
        let per_col = vec![vec![hit(3, 0.4), hit(3, 0.1)]];
        let ranked = near_tables(&per_col, None);
        assert_eq!(ranked[0].matching_columns, 1);
        assert!((ranked[0].distance_sum - 0.1).abs() < 1e-6);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let per_col = vec![vec![hit(9, 0.5), hit(4, 0.5)]];
        let ids = ranked_table_ids(&per_col, None);
        assert_eq!(ids, vec![4, 9]);
    }

    #[test]
    fn provenance_matches_ranking_and_names_winning_columns() {
        // Query col 0 matches table 5 via corpus col 50 (0.2 beats 0.9 from
        // col 51); query col 1 matches table 5 via col 52 and table 7 via
        // col 70.
        let per_col = vec![
            vec![hit_col(5, 51, 0.9), hit_col(5, 50, 0.2)],
            vec![hit_col(5, 52, 0.3), hit_col(7, 70, 0.1)],
        ];
        let plain = near_tables(&per_col, None);
        let detailed = near_tables_with_provenance(&per_col, None);
        assert_eq!(plain.len(), detailed.len());
        for (p, d) in plain.iter().zip(&detailed) {
            assert_eq!((p.table, p.matching_columns), (d.table, d.matching_columns));
            assert!((p.distance_sum - d.distance_sum).abs() < 1e-6);
        }
        let t5 = detailed.iter().find(|d| d.table == 5).unwrap();
        assert_eq!(
            t5.matches,
            vec![
                ColumnProvenance { query_column: 0, corpus_column: 50, distance: 0.2 },
                ColumnProvenance { query_column: 1, corpus_column: 52, distance: 0.3 },
            ]
        );
        let t7 = detailed.iter().find(|d| d.table == 7).unwrap();
        assert_eq!(t7.matches.len(), 1);
        assert_eq!(t7.matches[0].corpus_column, 70);
    }

    #[test]
    fn provenance_tie_breaks_toward_smaller_corpus_column() {
        let per_col = vec![vec![hit_col(1, 12, 0.5), hit_col(1, 3, 0.5)]];
        let detailed = near_tables_with_provenance(&per_col, None);
        assert_eq!(detailed[0].matches[0].corpus_column, 3);
    }

    #[test]
    fn provenance_respects_exclude() {
        let per_col = vec![vec![hit_col(0, 1, 0.0), hit_col(1, 9, 0.5)]];
        let detailed = near_tables_with_provenance(&per_col, Some(0));
        assert_eq!(detailed.len(), 1);
        assert_eq!(detailed[0].table, 1);
    }
}
