//! SimHash LSH over dense embeddings — WarpGate's indexing scheme:
//! random-hyperplane bit signatures, banded buckets for candidate
//! generation, cosine re-ranking.

use crate::knn::Metric;
use std::collections::{HashMap, HashSet};

/// SimHash index parameters: `bits = bands * band_bits`.
#[derive(Debug, Clone)]
pub struct SimHashConfig {
    pub bands: usize,
    pub band_bits: usize,
    pub seed: u64,
}

impl Default for SimHashConfig {
    fn default() -> Self {
        Self { bands: 8, band_bits: 8, seed: 0x51a4 }
    }
}

pub struct SimHashLsh {
    cfg: SimHashConfig,
    dim: usize,
    /// `bits` hyperplanes, row-major `[bits, dim]`.
    planes: Vec<f32>,
    buckets: Vec<HashMap<u64, Vec<u32>>>,
    vecs: Vec<Vec<f32>>,
}

impl SimHashLsh {
    pub fn new(dim: usize, cfg: SimHashConfig) -> Self {
        let bits = cfg.bands * cfg.band_bits;
        // Deterministic pseudo-Gaussian hyperplanes (sum of uniforms).
        let mut state = cfg.seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f32 / (1u64 << 24) as f32
        };
        let planes = (0..bits * dim)
            .map(|_| (next() + next() + next() + next() - 2.0) * 1.732)
            .collect();
        Self {
            buckets: vec![HashMap::new(); cfg.bands],
            cfg,
            dim,
            planes,
            vecs: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.vecs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vecs.is_empty()
    }

    /// The bit signature of a vector.
    pub fn signature(&self, v: &[f32]) -> Vec<bool> {
        assert_eq!(v.len(), self.dim, "vector dim");
        let bits = self.cfg.bands * self.cfg.band_bits;
        (0..bits)
            .map(|b| {
                let row = &self.planes[b * self.dim..(b + 1) * self.dim];
                let dot: f32 = row.iter().zip(v).map(|(&p, &x)| p * x).sum();
                dot >= 0.0
            })
            .collect()
    }

    fn band_key(&self, sig: &[bool], band: usize) -> u64 {
        let mut key: u64 = 0;
        for &bit in &sig[band * self.cfg.band_bits..(band + 1) * self.cfg.band_bits] {
            key = (key << 1) | bit as u64;
        }
        key
    }

    pub fn add(&mut self, v: &[f32]) -> usize {
        let sig = self.signature(v);
        let id = self.vecs.len() as u32;
        for b in 0..self.cfg.bands {
            let key = self.band_key(&sig, b);
            self.buckets[b].entry(key).or_default().push(id);
        }
        self.vecs.push(v.to_vec());
        id as usize
    }

    /// Top-k candidates (band collisions) re-ranked by cosine distance
    /// (ascending). Falls back to scanning everything when the buckets
    /// yield fewer than `k` candidates.
    pub fn search(&self, q: &[f32], k: usize) -> Vec<(usize, f32)> {
        let sig = self.signature(q);
        let mut cands: HashSet<usize> = HashSet::new();
        for b in 0..self.cfg.bands {
            if let Some(ids) = self.buckets[b].get(&self.band_key(&sig, b)) {
                cands.extend(ids.iter().map(|&i| i as usize));
            }
        }
        if cands.len() < k {
            cands.extend(0..self.vecs.len());
        }
        let mut hits: Vec<(usize, f32)> = cands
            .into_iter()
            .map(|id| (id, Metric::Cosine.distance(q, &self.vecs[id])))
            .collect();
        hits.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn similar_vectors_share_signature_bits() {
        let idx = SimHashLsh::new(16, SimHashConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let v: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut near = v.clone();
        for x in &mut near {
            *x += rng.gen_range(-0.01..0.01);
        }
        let far: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let s = idx.signature(&v);
        let sn = idx.signature(&near);
        let sf = idx.signature(&far);
        let ham = |a: &[bool], b: &[bool]| a.iter().zip(b).filter(|(x, y)| x != y).count();
        assert!(ham(&s, &sn) < ham(&s, &sf), "near vector closer in hamming");
    }

    #[test]
    fn search_finds_planted_neighbor() {
        let mut idx = SimHashLsh::new(8, SimHashConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let target: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let tid = idx.add(&target);
        for _ in 0..200 {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            idx.add(&v);
        }
        let mut q = target.clone();
        for x in &mut q {
            *x *= 1.02;
        }
        let hits = idx.search(&q, 3);
        assert_eq!(hits[0].0, tid, "planted neighbor must rank first");
    }

    #[test]
    fn fallback_when_buckets_sparse() {
        let mut idx = SimHashLsh::new(4, SimHashConfig { bands: 2, band_bits: 16, seed: 1 });
        idx.add(&[1.0, 0.0, 0.0, 0.0]);
        idx.add(&[0.0, 1.0, 0.0, 0.0]);
        // A query in an empty bucket still returns k results.
        let hits = idx.search(&[-1.0, -1.0, 1.0, 1.0], 2);
        assert_eq!(hits.len(), 2);
    }
}
