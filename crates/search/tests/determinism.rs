//! Determinism guarantees for the ANN layer, mirroring
//! `crates/sketch/tests/determinism.rs`: an HNSW graph must be a pure
//! function of `(config, insertion sequence)` — independent of process,
//! hasher randomization, or platform — because `tsfm_store` persists the
//! graph and expects a rebuilt index to answer queries identically.

use tsfm_search::{Hnsw, HnswConfig, Metric, SearchScratch};
use tsfm_table::hash::splitmix64;

/// Deterministic pseudo-random vectors on a coarse grid. Grid coordinates
/// are exactly representable in f32, so every distance computation is
/// bit-identical across platforms; the coarse grid also forces frequent
/// exact distance ties, exercising the id tie-breaks.
fn grid_vecs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| {
                    let h = splitmix64(seed ^ ((i as u64) << 20) ^ j as u64);
                    (h % 8) as f32 / 4.0 - 1.0
                })
                .collect()
        })
        .collect()
}

fn build(vecs: &[Vec<f32>], dim: usize) -> Hnsw {
    let mut h = Hnsw::new(dim, Metric::Euclidean, HnswConfig::default());
    for v in vecs {
        h.add(v);
    }
    h
}

/// Fold the full graph structure into one u64.
fn fingerprint(h: &Hnsw) -> u64 {
    let s = h.snapshot();
    let mut acc: u64 = splitmix64(s.max_level as u64 ^ 0x6a09_e667);
    acc = splitmix64(acc ^ s.entry.map_or(u64::MAX, |e| e as u64));
    for layers in &s.neighbors {
        acc = splitmix64(acc ^ layers.len() as u64);
        for layer in layers {
            acc = splitmix64(acc ^ layer.len() as u64);
            for &n in layer {
                acc = splitmix64(acc ^ n as u64);
            }
        }
    }
    acc
}

#[test]
fn identical_graphs_across_independent_builds() {
    let vecs = grid_vecs(300, 8, 11);
    let a = build(&vecs, 8);
    let b = build(&vecs, 8);
    assert_eq!(a.snapshot(), b.snapshot(), "same inserts must give the same graph");
}

/// Pinned fingerprint: fails if hasher randomization, iteration order, or
/// an algorithm change alters the graph — any of which would silently
/// invalidate every HNSW graph `tsfm_store` has persisted.
#[test]
fn graph_fingerprint_pinned() {
    let h = build(&grid_vecs(300, 8, 11), 8);
    assert_eq!(
        fingerprint(&h),
        0x9e2b_2b46_6e48_b605,
        "HNSW construction changed — stored indexes would no longer match"
    );
}

/// Ties in distance (ubiquitous on the coarse grid) must resolve by id,
/// making search results reproducible across runs.
#[test]
fn search_results_pinned_under_ties() {
    let vecs = grid_vecs(300, 8, 11);
    let h = build(&vecs, 8);
    let queries = grid_vecs(10, 8, 99);
    let mut acc: u64 = 0;
    for q in &queries {
        for (id, _) in h.search(q, 10) {
            acc = splitmix64(acc ^ id as u64);
        }
    }
    assert_eq!(acc, 0xb1aa_d61d_484d_f142, "search order changed under distance ties");
}

#[test]
fn snapshot_roundtrip_preserves_everything() {
    let vecs = grid_vecs(200, 6, 5);
    let original = build(&vecs, 6);
    let restored = Hnsw::from_snapshot(original.snapshot()).expect("valid snapshot");
    assert_eq!(original.snapshot(), restored.snapshot());
    for q in grid_vecs(20, 6, 77) {
        assert_eq!(original.search(&q, 7), restored.search(&q, 7));
    }
    // Inserting after restore continues the identical RNG stream.
    let mut a = original;
    let mut b = restored;
    for v in grid_vecs(20, 6, 13) {
        a.add(&v);
        b.add(&v);
    }
    assert_eq!(a.snapshot(), b.snapshot());
}

/// The engine's join/union indexes run under cosine; pin that metric's
/// graph and search results too, so a distance-kernel change (e.g. the
/// cached-norm arena rewrite) that is not bit-identical to the reference
/// fused loop fails loudly instead of silently invalidating stored graphs.
#[test]
fn cosine_graph_and_search_pinned() {
    let vecs = grid_vecs(300, 8, 23);
    let mut h = Hnsw::new(8, Metric::Cosine, HnswConfig::default());
    for v in &vecs {
        h.add(v);
    }
    assert_eq!(
        fingerprint(&h),
        0xc60d_d869_074a_99d0,
        "cosine HNSW construction changed — stored indexes would no longer match"
    );
    let mut acc: u64 = 0;
    for q in &grid_vecs(10, 8, 57) {
        for (id, d) in h.search(q, 10) {
            acc = splitmix64(acc ^ id as u64);
            acc = splitmix64(acc ^ d.to_bits() as u64);
        }
    }
    assert_eq!(acc, 0x458c_85ba_42d4_39a8, "cosine distances or ranking changed bit-for-bit");
}

/// Scratch reuse must be invisible: a dirty scratch (carrying stamps and
/// heap capacity from arbitrary earlier queries, even against a different
/// index) answers every query identically to a fresh one and to the
/// thread-pooled `search`.
#[test]
fn scratch_reuse_is_invisible() {
    let big = build(&grid_vecs(300, 8, 11), 8);
    let small = build(&grid_vecs(40, 8, 19), 8);
    let mut dirty = SearchScratch::new();
    // Dirty the scratch thoroughly on the big index first.
    for q in grid_vecs(25, 8, 31) {
        big.search_with_scratch(&q, 10, &mut dirty);
    }
    for q in grid_vecs(25, 8, 43) {
        let mut fresh = SearchScratch::new();
        // Interleave across two indexes of different sizes to exercise
        // stamp-list growth and stale stamps.
        for h in [&small, &big] {
            assert_eq!(
                h.search_with_scratch(&q, 10, &mut dirty),
                h.search_with_scratch(&q, 10, &mut fresh),
                "dirty scratch changed results"
            );
            assert_eq!(h.search(&q, 10), h.search_with_scratch(&q, 10, &mut dirty));
        }
    }
}

#[test]
fn corrupt_snapshots_rejected() {
    let h = build(&grid_vecs(50, 4, 3), 4);

    let mut s = h.snapshot();
    s.data.pop(); // buffer no longer a multiple of dim
    assert!(Hnsw::from_snapshot(s).is_err());

    let mut s = h.snapshot();
    s.neighbors[0][0].push(10_000); // dangling link
    assert!(Hnsw::from_snapshot(s).is_err());

    let mut s = h.snapshot();
    s.entry = Some(999);
    assert!(Hnsw::from_snapshot(s).is_err());

    let mut s = h.snapshot();
    s.neighbors.pop(); // node count mismatch
    assert!(Hnsw::from_snapshot(s).is_err());

    let mut s = h.snapshot();
    s.max_level = s.neighbors[s.entry.unwrap()].len() + 3; // search would panic
    assert!(Hnsw::from_snapshot(s).is_err());

    // A layer-l link to a node without that layer would panic in greedy().
    let mut s = h.snapshot();
    if let Some(shallow) = s.neighbors.iter().position(|l| l.len() == 1) {
        let deep = s.neighbors.iter().position(|l| l.len() > 1).unwrap();
        s.neighbors[deep][1].push(shallow);
        assert!(Hnsw::from_snapshot(s).is_err());
    }
}
