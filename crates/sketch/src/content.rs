//! Table-level content snapshot (§III-A): MinHash over stringified rows.

use crate::minhash::{MinHash, MinHasher};
use tsfm_table::Table;

/// Compute the content snapshot over the first `max_rows` rows (the paper
/// uses the first 10,000). Each row is rendered to a `|`-delimited string
/// and the row strings form the MinHash element set; the snapshot is
/// therefore **row-order invariant** but sensitive to column order, which
/// is exactly why column-shuffle augmentation (§III-C) changes it.
pub fn content_snapshot(table: &Table, hasher: &MinHasher, max_rows: usize) -> MinHash {
    let n = table.num_rows().min(max_rows);
    // Render every row through one reused buffer and fold its hash
    // directly — identical signature to hashing freshly allocated row
    // strings, without the per-row allocation.
    let mut sig = hasher.empty_sig();
    let mut buf = String::new();
    for r in 0..n {
        buf.clear();
        table.row_string_into(r, &mut buf);
        hasher.fold(&mut sig, tsfm_table::hash::hash_str(&buf));
    }
    MinHash { sig }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsfm_table::{Column, Value};

    fn table(nrows: i64) -> Table {
        let mut t = Table::new("t", "t");
        t.push_column(Column::new("a", (0..nrows).map(Value::Int).collect()));
        t.push_column(Column::new(
            "b",
            (0..nrows).map(|i| Value::Str(format!("s{i}"))).collect(),
        ));
        t
    }

    #[test]
    fn row_order_invariant() {
        let t = table(50);
        let mh = MinHasher::new(64, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let shuffled = t.shuffled_rows(&mut rng, "t2");
        let a = content_snapshot(&t, &mh, 10_000);
        let b = content_snapshot(&shuffled, &mh, 10_000);
        assert_eq!(a, b, "content snapshot is a set of rows");
    }

    #[test]
    fn column_order_sensitive() {
        let t = table(50);
        let mh = MinHasher::new(64, 0);
        let mut rev = t.clone();
        rev.columns.reverse();
        let a = content_snapshot(&t, &mh, 10_000);
        let b = content_snapshot(&rev, &mh, 10_000);
        assert_ne!(a, b, "row strings change when columns move");
    }

    #[test]
    fn overlapping_tables_have_similar_snapshots() {
        let mh = MinHasher::new(256, 0);
        let a = content_snapshot(&table(100), &mh, 10_000);
        let b = content_snapshot(&table(50), &mh, 10_000); // first 50 rows shared
        let j = a.jaccard(&b);
        assert!((j - 0.5).abs() < 0.15, "expected ~0.5 got {j}");
    }

    #[test]
    fn respects_max_rows() {
        let mh = MinHasher::new(64, 0);
        let a = content_snapshot(&table(100), &mh, 50);
        let b = content_snapshot(&table(50), &mh, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_table() {
        let mh = MinHasher::new(16, 0);
        let t = Table::new("e", "e");
        assert!(content_snapshot(&t, &mh, 100).is_empty_set());
    }
}
