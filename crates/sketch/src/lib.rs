//! Data sketches for tabular data (paper §III-A).
//!
//! Three sketch families are produced for every table:
//!
//! * a table-level **content snapshot**: a MinHash signature over the set of
//!   stringified rows (first 10,000 rows);
//! * per-column **MinHash sketches**: a signature over the set of rendered
//!   cell values, and — for string columns — a second signature over the set
//!   of *words* occurring in the column (so `street` appearing in two
//!   address-like columns makes them similar even without value overlap);
//! * per-column **numerical sketches**: `[unique_frac, nan_frac,
//!   cell_width, p10..p90, mean, std, min, max]`.
//!
//! All hashing is stable (see [`tsfm_table::hash`]) so sketches are
//! reproducible across runs.

#![forbid(unsafe_code)]

pub mod content;
pub mod minhash;
pub mod numeric;
pub mod table_sketch;

pub use content::content_snapshot;
pub use minhash::{MinHash, MinHasher};
pub use numeric::NumericalSketch;
pub use table_sketch::{ColumnSketch, SketchConfig, TableSketch};

/// Split a string into lowercase word tokens (alphanumeric runs), the
/// element set of the word-level MinHash.
pub fn words_of(s: &str) -> impl Iterator<Item = String> + '_ {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
}

/// Visit the word tokens of [`words_of`] without allocating a `String`
/// per word: ASCII words (the overwhelming majority in real lakes) are
/// lowercased in a reused buffer; anything else falls back to
/// `str::to_lowercase`, so the visited strings are byte-identical to
/// `words_of` in every case (including special casings like final sigma
/// that `char`-wise lowercasing would get wrong).
pub fn for_each_word(s: &str, buf: &mut String, mut f: impl FnMut(&str)) {
    for w in s.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()) {
        if w.is_ascii() {
            buf.clear();
            buf.push_str(w);
            buf.make_ascii_lowercase();
            f(buf);
        } else {
            f(&w.to_lowercase());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_splitting() {
        let ws: Vec<String> = words_of("Austria Vienna").collect();
        assert_eq!(ws, vec!["austria", "vienna"]);
        let ws: Vec<String> = words_of("12 High-Street, apt. 4B").collect();
        assert_eq!(ws, vec!["12", "high", "street", "apt", "4b"]);
        assert_eq!(words_of("  ").count(), 0);
    }

    #[test]
    fn for_each_word_matches_words_of() {
        // Including non-ASCII and the Greek final-sigma special casing,
        // where char-wise lowercasing would diverge from str::to_lowercase.
        for s in ["Austria Vienna", "12 High-Street, apt. 4B", "  ", "ÓBUDA Straße ΟΔΟΣ x"] {
            let expect: Vec<String> = words_of(s).collect();
            let mut got = Vec::new();
            let mut buf = String::new();
            for_each_word(s, &mut buf, |w| got.push(w.to_string()));
            assert_eq!(got, expect, "input {s:?}");
        }
    }
}
