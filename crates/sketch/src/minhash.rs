//! MinHash signatures with a seeded universal-hash family.
//!
//! `h_i(x) = a_i * x + b_i` over `u64` (wrapping), applied to the stable
//! 64-bit hash of each set element; the signature keeps the minimum per
//! hash function. Equal-slot fraction estimates Jaccard similarity
//! (Broder 1997); the estimator's standard error is `O(1/sqrt(k))`.

use tsfm_table::hash::{hash_str, SeedStream};

/// Sentinel signature slot for the empty set.
pub const EMPTY_SLOT: u64 = u64::MAX;

/// A MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    pub sig: Vec<u64>,
}

impl MinHash {
    pub fn k(&self) -> usize {
        self.sig.len()
    }

    pub fn is_empty_set(&self) -> bool {
        self.sig.iter().all(|&s| s == EMPTY_SLOT)
    }

    /// Unbiased Jaccard similarity estimate: fraction of matching slots.
    /// Two empty sets estimate 1.0 (all sentinel slots match), matching
    /// the convention `J(∅,∅)=1`.
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(self.k(), other.k(), "incompatible signature widths");
        if self.k() == 0 {
            return 0.0;
        }
        let same = self.sig.iter().zip(&other.sig).filter(|(a, b)| a == b).count();
        same as f64 / self.k() as f64
    }

    /// Hamming distance between signatures (count of differing slots);
    /// used by the paper's §IV-A2 error analysis.
    pub fn hamming(&self, other: &MinHash) -> usize {
        assert_eq!(self.k(), other.k(), "incompatible signature widths");
        self.sig.iter().zip(&other.sig).filter(|(a, b)| a != b).count()
    }

    /// Merge: the signature of the union of the two underlying sets.
    pub fn union(&self, other: &MinHash) -> MinHash {
        assert_eq!(self.k(), other.k(), "incompatible signature widths");
        MinHash {
            sig: self.sig.iter().zip(&other.sig).map(|(a, b)| *a.min(b)).collect(),
        }
    }

    /// Map signature slots to zero-centered `f32` features in `[-1, 1)`
    /// for neural input. Two subtleties:
    ///
    /// * the *magnitude* of a MinHash minimum concentrates near zero for
    ///   any large set (min of `n` uniforms ≈ 1/n), so the informative
    ///   high bits are useless as features — equality of slots is the
    ///   signal. The **low 24 bits** of the minimum stay uniform, so equal
    ///   slots give equal features and unequal slots independent ones,
    ///   making feature distance proportional to `1 − Jaccard`;
    /// * zero-centering removes the DC component that would otherwise
    ///   dominate any linear projection.
    ///
    /// Empty-set slots map to 0.0.
    pub fn to_f32_features(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.sig.len());
        self.extend_f32_features(&mut v);
        v
    }

    /// Append the feature mapping of [`MinHash::to_f32_features`] to `out`
    /// without allocating — the query path builds every feature vector
    /// through one reused buffer.
    pub fn extend_f32_features(&self, out: &mut Vec<f32>) {
        out.extend(self.sig.iter().map(|&s| {
            if s == EMPTY_SLOT {
                0.0
            } else {
                (s & 0xFF_FFFF) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
            }
        }));
    }
}

/// A reusable family of `k` hash functions.
///
/// Coefficients are stored as one flat interleaved `[a₀, b₀, a₁, b₁, …]`
/// array so the inner fold walks a single contiguous buffer, and the fold
/// itself is unrolled four signature slots at a time. The math is
/// unchanged — `h_i(x) = a_i·x + b_i` (wrapping) with a per-slot min — so
/// signatures are bit-identical to the pre-optimization implementation
/// (pinned by `tests/determinism.rs`).
#[derive(Debug, Clone)]
pub struct MinHasher {
    /// Interleaved `(a, b)` pairs; length `2k`.
    coeffs: Vec<u64>,
}

impl MinHasher {
    /// Build a `k`-function family from a seed. The same `(k, seed)` always
    /// produces the same family — required for cross-table comparability.
    pub fn new(k: usize, seed: u64) -> Self {
        let mut s = SeedStream::new(seed);
        let mut coeffs = Vec::with_capacity(2 * k);
        for _ in 0..k {
            coeffs.push(s.next_odd());
            coeffs.push(s.next_u64());
        }
        Self { coeffs }
    }

    pub fn k(&self) -> usize {
        self.coeffs.len() / 2
    }

    /// A fresh all-sentinel signature buffer to [`MinHasher::fold`] into.
    pub fn empty_sig(&self) -> Vec<u64> {
        vec![EMPTY_SLOT; self.k()]
    }

    /// Fold one pre-hashed element into a signature buffer (`sig.len()`
    /// must be `k`). This is the MinHash inner loop: unrolled over four
    /// slots of the flat coefficient array per iteration, identical math
    /// to the naive per-pair loop.
    #[inline]
    pub fn fold(&self, sig: &mut [u64], x: u64) {
        debug_assert_eq!(sig.len(), self.k());
        let mut cs = self.coeffs.chunks_exact(8);
        let mut ss = sig.chunks_exact_mut(4);
        for (c, s) in (&mut cs).zip(&mut ss) {
            let h0 = c[0].wrapping_mul(x).wrapping_add(c[1]);
            let h1 = c[2].wrapping_mul(x).wrapping_add(c[3]);
            let h2 = c[4].wrapping_mul(x).wrapping_add(c[5]);
            let h3 = c[6].wrapping_mul(x).wrapping_add(c[7]);
            if h0 < s[0] {
                s[0] = h0;
            }
            if h1 < s[1] {
                s[1] = h1;
            }
            if h2 < s[2] {
                s[2] = h2;
            }
            if h3 < s[3] {
                s[3] = h3;
            }
        }
        for (c, slot) in cs.remainder().chunks_exact(2).zip(ss.into_remainder()) {
            let h = c[0].wrapping_mul(x).wrapping_add(c[1]);
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Signature of a set of string elements. Duplicates are harmless
    /// (min is idempotent), so callers may stream without deduplicating.
    pub fn signature<I, S>(&self, elements: I) -> MinHash
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.signature_hashed(elements.into_iter().map(|el| hash_str(el.as_ref())))
    }

    /// Signature from pre-hashed elements (avoids re-hashing in hot loops).
    pub fn signature_hashed<I: IntoIterator<Item = u64>>(&self, hashes: I) -> MinHash {
        let mut sig = self.empty_sig();
        for x in hashes {
            self.fold(&mut sig, x);
        }
        MinHash { sig }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(prefix: &str, range: std::ops::Range<usize>) -> Vec<String> {
        range.map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(64, 0);
        let a = mh.signature(set("v", 0..100));
        let b = mh.signature(set("v", 0..100));
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.hamming(&b), 0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(128, 0);
        let a = mh.signature(set("a", 0..200));
        let b = mh.signature(set("b", 0..200));
        assert!(a.jaccard(&b) < 0.1, "got {}", a.jaccard(&b));
    }

    #[test]
    fn estimates_track_true_jaccard() {
        // |A∩B| = 50, |A∪B| = 150 → J = 1/3.
        let mh = MinHasher::new(256, 42);
        let a = mh.signature(set("x", 0..100));
        let b = mh.signature(set("x", 50..150));
        let est = a.jaccard(&b);
        assert!((est - 1.0 / 3.0).abs() < 0.12, "est={est}");
    }

    #[test]
    fn empty_set_handling() {
        let mh = MinHasher::new(16, 0);
        let e = mh.signature(Vec::<String>::new());
        assert!(e.is_empty_set());
        let a = mh.signature(set("a", 0..10));
        assert_eq!(e.jaccard(&a), 0.0);
        assert_eq!(e.jaccard(&e), 1.0, "J(∅,∅)=1 by convention");
    }

    #[test]
    fn union_signature() {
        let mh = MinHasher::new(128, 1);
        let a = mh.signature(set("a", 0..100));
        let b = mh.signature(set("b", 0..100));
        let u = a.union(&b);
        let direct = mh.signature(set("a", 0..100).into_iter().chain(set("b", 0..100)));
        assert_eq!(u, direct, "union of signatures == signature of union");
    }

    #[test]
    fn duplicates_do_not_change_signature() {
        let mh = MinHasher::new(32, 9);
        let once = mh.signature(set("z", 0..50));
        let twice = mh.signature(set("z", 0..50).into_iter().chain(set("z", 0..50)));
        assert_eq!(once, twice);
    }

    #[test]
    fn f32_features_zero_centered() {
        let mh = MinHasher::new(256, 3);
        let a = mh.signature(set("q", 0..400));
        let feats = a.to_f32_features();
        for &f in &feats {
            assert!((-1.0..=1.0).contains(&f));
        }
        // Low bits of the minima stay uniform, so the mean is near zero.
        let mean: f32 = feats.iter().sum::<f32>() / feats.len() as f32;
        assert!(mean.abs() < 0.2, "features should be zero-centered, mean {mean}");
        let e = mh.signature(Vec::<String>::new());
        assert!(e.to_f32_features().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn f32_features_overlap_signal() {
        // Cosine of feature vectors should track set overlap once the DC
        // component is removed.
        let mh = MinHasher::new(128, 5);
        let a = mh.signature(set("s", 0..80));
        let b = mh.signature(set("s", 20..100)); // J = 60/100
        let c = mh.signature(set("t", 0..80)); // disjoint
        let cos = |x: &[f32], y: &[f32]| {
            let dot: f32 = x.iter().zip(y).map(|(a, b)| a * b).sum();
            let nx: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
            let ny: f32 = y.iter().map(|v| v * v).sum::<f32>().sqrt();
            dot / (nx * ny)
        };
        let fa = a.to_f32_features();
        let fb = b.to_f32_features();
        let fc = c.to_f32_features();
        assert!(
            cos(&fa, &fb) > cos(&fa, &fc) + 0.2,
            "overlap must show in feature cosine: {} vs {}",
            cos(&fa, &fb),
            cos(&fa, &fc)
        );
    }

    #[test]
    fn seed_changes_family() {
        let a = MinHasher::new(16, 1).signature(set("v", 0..10));
        let b = MinHasher::new(16, 2).signature(set("v", 0..10));
        assert_ne!(a, b);
    }

    proptest! {
        /// The estimator must stay within 4 standard errors of the truth.
        #[test]
        fn prop_estimator_accuracy(overlap in 0usize..100, extra_a in 1usize..100, extra_b in 1usize..100) {
            let k = 256;
            let mh = MinHasher::new(k, 7);
            let a: Vec<String> = (0..overlap).map(|i| format!("s{i}"))
                .chain((0..extra_a).map(|i| format!("a{i}"))).collect();
            let b: Vec<String> = (0..overlap).map(|i| format!("s{i}"))
                .chain((0..extra_b).map(|i| format!("b{i}"))).collect();
            let true_j = overlap as f64 / (overlap + extra_a + extra_b) as f64;
            let est = mh.signature(&a).jaccard(&mh.signature(&b));
            let se = (true_j * (1.0 - true_j) / k as f64).sqrt().max(0.02);
            prop_assert!((est - true_j).abs() <= 4.0 * se,
                "true={true_j:.3} est={est:.3} se={se:.3}");
        }

        /// The unroll-4 flat-coefficient fold is bit-identical to the
        /// naive per-pair reference loop at every signature width,
        /// including the `k % 4 != 0` remainder cases.
        #[test]
        fn prop_unrolled_fold_matches_reference(k in 0usize..40, seed in 0u64..1000, n in 0usize..60) {
            let mh = MinHasher::new(k, seed);
            let elements: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
            let fast = mh.signature(elements.iter());
            // Reference: re-derive the same family, run the pre-unroll loop.
            let mut s = SeedStream::new(seed);
            let coeffs: Vec<(u64, u64)> = (0..k).map(|_| (s.next_odd(), s.next_u64())).collect();
            let mut sig = vec![EMPTY_SLOT; k];
            for el in &elements {
                let x = hash_str(el);
                for (slot, &(a, b)) in sig.iter_mut().zip(&coeffs) {
                    let h = a.wrapping_mul(x).wrapping_add(b);
                    if h < *slot {
                        *slot = h;
                    }
                }
            }
            prop_assert_eq!(fast.sig, sig);
        }

        /// Jaccard estimate is symmetric and bounded.
        #[test]
        fn prop_symmetry(na in 0usize..50, nb in 0usize..50) {
            let mh = MinHasher::new(64, 0);
            let a = mh.signature((0..na).map(|i| format!("a{i}")));
            let b = mh.signature((0..nb).map(|i| format!("b{i}")));
            prop_assert_eq!(a.jaccard(&b), b.jaccard(&a));
            prop_assert!((0.0..=1.0).contains(&a.jaccard(&b)));
        }
    }
}
