//! Numerical sketches (§III-A): distributional statistics per column.

use tsfm_table::hash::hash_str;
use tsfm_table::Column;

/// The fixed feature layout of a numerical sketch. Order matches the paper:
/// `[unique count, NaN count, cell width, p10..p90, mean, std, min, max]`
/// with the two counts normalized by the number of rows.
pub const NUMERIC_SKETCH_DIM: usize = 16;

/// Distributional statistics of one column.
///
/// For string columns the distribution fields (`percentiles`, `mean`, `std`,
/// `min`, `max`) are zero — only uniqueness, null fraction and average cell
/// width (bytes) carry signal, exactly as the paper describes.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericalSketch {
    pub unique_frac: f64,
    pub nan_frac: f64,
    /// Average rendered cell width in bytes (join keys are rarely long).
    pub cell_width: f64,
    /// 10th..90th percentiles (linear interpolation).
    pub percentiles: [f64; 9],
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

impl NumericalSketch {
    /// Compute the sketch for a column, considering at most `max_rows` rows
    /// (the paper sketches the first 10,000 rows).
    pub fn of_column(col: &Column, max_rows: usize) -> Self {
        let n = col.len().min(max_rows);
        let slice = &col.values[..n];

        let mut hashes: Vec<u64> = Vec::with_capacity(n);
        let mut width_sum = 0usize;
        let mut nan = 0usize;
        let mut non_null = 0usize;
        for v in slice {
            if v.is_null() {
                nan += 1;
                continue;
            }
            non_null += 1;
            let r = v.render();
            width_sum += r.len();
            hashes.push(hash_str(&r));
        }

        let nums: Vec<f64> =
            slice.iter().filter_map(tsfm_table::Value::as_f64).filter(|f| f.is_finite()).collect();
        Self::from_parts(n, nan, non_null, width_sum, hashes, nums)
    }

    /// Build a sketch from per-cell observations gathered elsewhere —
    /// the hash-once path: [`crate::ColumnSketch::build`] renders and
    /// hashes each cell exactly once and shares the same `u64` stream
    /// between the cell MinHash and this sketch's unique count.
    /// [`NumericalSketch::of_column`] is the single-pass reference; the
    /// two are bit-identical given the same window (see
    /// `tests/determinism.rs`).
    ///
    /// * `total_rows` — rows in the sketching window (`min(len, max_rows)`)
    /// * `nan` / `non_null` — null and non-null cell counts in the window
    /// * `width_sum` — total rendered byte width of non-null cells
    /// * `hashes` — stable hash of each non-null cell's rendering
    /// * `nums` — finite numeric values in window order
    pub fn from_parts(
        total_rows: usize,
        nan: usize,
        non_null: usize,
        width_sum: usize,
        mut hashes: Vec<u64>,
        mut nums: Vec<f64>,
    ) -> Self {
        let total = total_rows.max(1) as f64;
        hashes.sort_unstable();
        hashes.dedup();
        let unique = hashes.len();

        // Ingest filters non-finite values, so Equal is unreachable for
        // distinct elements; it keeps a stray NaN from panicking the
        // whole sketch build.
        nums.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        let (mut percentiles, mut mean, mut std, mut min, mut max) =
            ([0.0; 9], 0.0, 0.0, 0.0, 0.0);
        if let (Some(first), Some(last)) = (nums.first(), nums.last()) {
            for (i, p) in (1..=9).zip(percentiles.iter_mut()) {
                *p = percentile(&nums, i as f64 * 10.0);
            }
            mean = nums.iter().sum::<f64>() / nums.len() as f64;
            let var =
                nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nums.len() as f64;
            std = var.sqrt();
            min = *first;
            max = *last;
        }

        NumericalSketch {
            unique_frac: unique as f64 / total,
            nan_frac: nan as f64 / total,
            cell_width: if non_null > 0 { width_sum as f64 / non_null as f64 } else { 0.0 },
            percentiles,
            mean,
            std,
            min,
            max,
        }
    }

    /// Flatten to the paper's fixed vector layout.
    pub fn to_vec(&self) -> [f64; NUMERIC_SKETCH_DIM] {
        let mut v = [0.0; NUMERIC_SKETCH_DIM];
        v[0] = self.unique_frac;
        v[1] = self.nan_frac;
        v[2] = self.cell_width;
        v[3..12].copy_from_slice(&self.percentiles);
        v[12] = self.mean;
        v[13] = self.std;
        v[14] = self.min;
        v[15] = self.max;
        v
    }

    /// Neural-input features: `sign(x)·ln(1+|x|)` per element. Raw
    /// statistics span wild magnitudes (populations vs rates); the signed
    /// log keeps the linear projection trainable. The paper does not
    /// specify a normalization; this choice is documented in DESIGN.md.
    pub fn to_f32_features(&self) -> [f32; NUMERIC_SKETCH_DIM] {
        let mut out = [0.0f32; NUMERIC_SKETCH_DIM];
        for (o, x) in out.iter_mut().zip(self.to_vec()) {
            *o = (x.signum() * x.abs().ln_1p()) as f32;
        }
        out
    }

    /// Zero sketch (used for padding / non-column tokens).
    pub fn zeros() -> Self {
        NumericalSketch {
            unique_frac: 0.0,
            nan_frac: 0.0,
            cell_width: 0.0,
            percentiles: [0.0; 9],
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// L1 distance between sketch vectors — a cheap similarity used by the
    /// D3L-style baseline's "numerical column distribution" evidence.
    pub fn l1_distance(&self, other: &Self) -> f64 {
        self.to_vec().iter().zip(other.to_vec()).map(|(a, b)| (a - b).abs()).sum()
    }
}

/// Percentile with linear interpolation between closest ranks.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_table::Value;

    fn int_col(vals: Vec<i64>) -> Column {
        Column::new("c", vals.into_iter().map(Value::Int).collect())
    }

    #[test]
    fn percentiles_of_1_to_101() {
        let col = int_col((1..=101).collect());
        let s = NumericalSketch::of_column(&col, 10_000);
        // 1..=101 has p10 = 11, p50 = 51, p90 = 91 exactly.
        assert_eq!(s.percentiles[0], 11.0);
        assert_eq!(s.percentiles[4], 51.0);
        assert_eq!(s.percentiles[8], 91.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 101.0);
        assert_eq!(s.mean, 51.0);
        assert_eq!(s.unique_frac, 1.0);
        assert_eq!(s.nan_frac, 0.0);
    }

    #[test]
    fn interpolation() {
        assert_eq!(percentile(&[0.0, 10.0], 50.0), 5.0);
        assert_eq!(percentile(&[0.0, 10.0], 10.0), 1.0);
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn null_and_unique_fractions() {
        let col = Column::new(
            "c",
            vec![Value::Int(1), Value::Int(1), Value::Null, Value::Int(2)],
        );
        let s = NumericalSketch::of_column(&col, 10_000);
        assert_eq!(s.nan_frac, 0.25);
        assert_eq!(s.unique_frac, 0.5); // {1,2} over 4 rows
    }

    #[test]
    fn string_columns_have_zero_distribution() {
        let col = Column::new(
            "c",
            vec![Value::Str("hello".into()), Value::Str("hi".into())],
        );
        let s = NumericalSketch::of_column(&col, 10_000);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.percentiles, [0.0; 9]);
        assert_eq!(s.cell_width, 3.5); // (5 + 2) / 2
    }

    #[test]
    fn date_columns_numeric_through_timestamps() {
        let col = Column::new("c", vec![Value::Date(0), Value::Date(86400)]);
        let s = NumericalSketch::of_column(&col, 10_000);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 86400.0);
    }

    #[test]
    fn max_rows_respected() {
        let col = int_col((0..100).collect());
        let s = NumericalSketch::of_column(&col, 10);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.unique_frac, 1.0);
    }

    #[test]
    fn empty_column() {
        let col = Column::new("c", vec![]);
        let s = NumericalSketch::of_column(&col, 10_000);
        assert_eq!(s.to_vec(), NumericalSketch::zeros().to_vec());
    }

    #[test]
    fn feature_scaling_is_signed_log() {
        let col = int_col(vec![-1000, 1000]);
        let s = NumericalSketch::of_column(&col, 10_000);
        let f = s.to_f32_features();
        assert!(f[14] < 0.0, "min keeps sign");
        assert!((f[15] - 1001f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn l1_distance_zero_iff_same() {
        let a = NumericalSketch::of_column(&int_col(vec![1, 2, 3]), 100);
        let b = NumericalSketch::of_column(&int_col(vec![1, 2, 3]), 100);
        let c = NumericalSketch::of_column(&int_col(vec![100, 200]), 100);
        assert_eq!(a.l1_distance(&b), 0.0);
        assert!(a.l1_distance(&c) > 1.0);
    }
}
