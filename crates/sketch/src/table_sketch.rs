//! The full sketch bundle for one table, ready to feed the model.

use crate::content::content_snapshot;
use crate::minhash::{MinHash, MinHasher};
use crate::numeric::NumericalSketch;
use crate::words_of;
use tsfm_table::{ColType, Column, Table};

/// Sketching hyper-parameters.
#[derive(Debug, Clone)]
pub struct SketchConfig {
    /// MinHash signature width (paper/datasketch default: 128; experiments
    /// here default to 32 to keep linear projections small).
    pub minhash_k: usize,
    /// Rows considered by all sketches (paper: first 10,000).
    pub max_rows: usize,
    /// Seed of the shared hash family. Must be identical for any two
    /// sketches that will be compared.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self { minhash_k: 32, max_rows: 10_000, seed: 0x7ab5_4e7c_9e37_0001 }
    }
}

/// Sketches of a single column.
#[derive(Debug, Clone)]
pub struct ColumnSketch {
    pub name: String,
    pub ty: ColType,
    /// MinHash over rendered cell values (all column types; the paper
    /// minhashes numeric cells too, since "it is often difficult to tell if
    /// a column is truly a float ... or really a categorical value").
    pub cell_minhash: MinHash,
    /// MinHash over the words of the cell values — string columns only.
    pub word_minhash: Option<MinHash>,
    pub numeric: NumericalSketch,
}

impl ColumnSketch {
    pub fn build(col: &Column, hasher: &MinHasher, max_rows: usize) -> Self {
        let n = col.len().min(max_rows);
        let rendered: Vec<String> = col.values[..n]
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| v.render())
            .collect();
        let cell_minhash = hasher.signature(rendered.iter());
        let word_minhash = (col.ty == ColType::Str)
            .then(|| hasher.signature(rendered.iter().flat_map(|s| words_of(s))));
        // Recompute the numeric sketch over the same row window.
        let numeric = NumericalSketch::of_column(col, max_rows);
        ColumnSketch { name: col.name.clone(), ty: col.ty, cell_minhash, word_minhash, numeric }
    }

    /// The model input vector for the MinHash embedding stream: a fixed
    /// `2k`-wide layout `[cell_mh ‖ word_mh]`, zero-padding the word half
    /// for numeric/date columns (the paper's `E_C` vs `E_{C‖W}` made
    /// concrete so that one linear layer serves every token).
    pub fn minhash_features(&self) -> Vec<f32> {
        let mut v = self.cell_minhash.to_f32_features();
        match &self.word_minhash {
            Some(w) => v.extend(w.to_f32_features()),
            None => v.extend(std::iter::repeat(0.0).take(self.cell_minhash.k())),
        }
        v
    }
}

/// The complete sketch bundle for one table.
#[derive(Debug, Clone)]
pub struct TableSketch {
    pub table_id: String,
    pub table_name: String,
    pub description: String,
    pub content_snapshot: MinHash,
    pub columns: Vec<ColumnSketch>,
    pub num_rows: usize,
}

impl TableSketch {
    pub fn build(table: &Table, cfg: &SketchConfig) -> Self {
        let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
        Self::build_with_hasher(table, &hasher, cfg.max_rows)
    }

    /// Build with a caller-owned hasher (amortizes family construction when
    /// sketching a whole lake).
    pub fn build_with_hasher(table: &Table, hasher: &MinHasher, max_rows: usize) -> Self {
        let columns = table
            .columns
            .iter()
            .map(|c| ColumnSketch::build(c, hasher, max_rows))
            .collect();
        TableSketch {
            table_id: table.id.clone(),
            table_name: table.name.clone(),
            description: table.description.clone(),
            content_snapshot: content_snapshot(table, hasher, max_rows),
            columns,
            num_rows: table.num_rows().min(max_rows),
        }
    }

    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Content-snapshot features in the same `2k` layout as
    /// [`ColumnSketch::minhash_features`] (word half zero-padded), used for
    /// table-metadata tokens.
    pub fn content_features(&self) -> Vec<f32> {
        let mut v = self.content_snapshot.to_f32_features();
        v.extend(std::iter::repeat(0.0).take(self.content_snapshot.k()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_table::Value;

    fn properties_table() -> Table {
        let mut t = Table::new("res", "Residential Properties")
            .with_description("residential properties in austria");
        t.push_column(Column::new(
            "Reference Area",
            vec![
                Value::Str("Austria Vienna".into()),
                Value::Str("Austria Graz".into()),
                Value::Str("Austria Linz".into()),
            ],
        ));
        t.push_column(Column::new("Age", vec![Value::Int(10), Value::Int(55), Value::Int(31)]));
        t.push_column(Column::new(
            "Assessed",
            vec![Value::Date(0), Value::Date(86400), Value::Date(2 * 86400)],
        ));
        t
    }

    #[test]
    fn builds_all_sketch_kinds() {
        let s = TableSketch::build(&properties_table(), &SketchConfig::default());
        assert_eq!(s.num_cols(), 3);
        assert!(s.columns[0].word_minhash.is_some(), "string col has word minhash");
        assert!(s.columns[1].word_minhash.is_none(), "int col has none");
        assert!(s.columns[2].word_minhash.is_none(), "date col has none");
        assert!(!s.content_snapshot.is_empty_set());
    }

    #[test]
    fn word_minhash_captures_shared_words() {
        // Two columns share the word "austria" but no full values.
        let cfg = SketchConfig { minhash_k: 256, ..Default::default() };
        let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
        let a = Column::new(
            "a",
            vec![Value::Str("Austria Vienna".into()), Value::Str("Austria Graz".into())],
        );
        let b = Column::new(
            "b",
            vec![Value::Str("Austria Linz".into()), Value::Str("Austria Salzburg".into())],
        );
        let sa = ColumnSketch::build(&a, &hasher, 10_000);
        let sb = ColumnSketch::build(&b, &hasher, 10_000);
        assert_eq!(sa.cell_minhash.jaccard(&sb.cell_minhash), 0.0, "no full-value overlap");
        let wj = sa
            .word_minhash
            .as_ref()
            .unwrap()
            .jaccard(sb.word_minhash.as_ref().unwrap());
        // word sets {austria,vienna,graz} vs {austria,linz,salzburg}: J = 1/5.
        assert!(wj > 0.05, "shared words must register, got {wj}");
    }

    #[test]
    fn minhash_feature_layout_is_2k() {
        let cfg = SketchConfig { minhash_k: 16, ..Default::default() };
        let s = TableSketch::build(&properties_table(), &cfg);
        for cs in &s.columns {
            assert_eq!(cs.minhash_features().len(), 32);
        }
        assert_eq!(s.content_features().len(), 32);
        // Numeric columns zero-pad the word half.
        let feats = s.columns[1].minhash_features();
        assert!(feats[16..].iter().all(|&f| f == 0.0));
    }

    #[test]
    fn deterministic_across_builds() {
        let t = properties_table();
        let cfg = SketchConfig::default();
        let a = TableSketch::build(&t, &cfg);
        let b = TableSketch::build(&t, &cfg);
        assert_eq!(a.content_snapshot, b.content_snapshot);
        for (x, y) in a.columns.iter().zip(&b.columns) {
            assert_eq!(x.cell_minhash, y.cell_minhash);
            assert_eq!(x.numeric.to_vec(), y.numeric.to_vec());
        }
    }

    #[test]
    fn shared_hasher_matches_config_build() {
        let t = properties_table();
        let cfg = SketchConfig::default();
        let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
        let a = TableSketch::build(&t, &cfg);
        let b = TableSketch::build_with_hasher(&t, &hasher, cfg.max_rows);
        assert_eq!(a.content_snapshot, b.content_snapshot);
    }
}
