//! The full sketch bundle for one table, ready to feed the model.
//!
//! This is the ingest hot path. [`ColumnSketch::build`] renders and hashes
//! every cell **exactly once** and feeds the same pre-hashed `u64` stream
//! to the cell MinHash and the numerical sketch's unique count (words are
//! hashed once each for the word MinHash), instead of re-rendering and
//! re-hashing the column per sketch family. All sketches are bit-identical
//! to the naive multi-pass construction — pinned by
//! `tests/determinism.rs`.

use crate::for_each_word;
use crate::minhash::{MinHash, MinHasher};
use crate::numeric::NumericalSketch;
use tsfm_table::hash::hash_str;
use tsfm_table::{ColType, Column, Table, Value};

/// Sketching hyper-parameters.
#[derive(Debug, Clone)]
pub struct SketchConfig {
    /// MinHash signature width (paper/datasketch default: 128; experiments
    /// here default to 32 to keep linear projections small).
    pub minhash_k: usize,
    /// Rows considered by all sketches (paper: first 10,000).
    pub max_rows: usize,
    /// Seed of the shared hash family. Must be identical for any two
    /// sketches that will be compared.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self { minhash_k: 32, max_rows: 10_000, seed: 0x7ab5_4e7c_9e37_0001 }
    }
}

/// Sketches of a single column.
#[derive(Debug, Clone)]
pub struct ColumnSketch {
    pub name: String,
    pub ty: ColType,
    /// MinHash over rendered cell values (all column types; the paper
    /// minhashes numeric cells too, since "it is often difficult to tell if
    /// a column is truly a float ... or really a categorical value").
    pub cell_minhash: MinHash,
    /// MinHash over the words of the cell values — string columns only.
    pub word_minhash: Option<MinHash>,
    pub numeric: NumericalSketch,
}

/// The rendered cells of one column window, concatenated: `offsets` has
/// one entry per cell plus a terminator, nulls span zero bytes. Built as a
/// by-product of [`ColumnSketch::build`] so the table-level content
/// snapshot can assemble row strings without rendering any cell a second
/// time.
#[derive(Default)]
struct CellArena {
    bytes: String,
    offsets: Vec<u32>,
}

impl CellArena {
    /// The rendered cell `r`, or `""` past the column's end (exactly what
    /// [`tsfm_table::Table::row_string`] appends there).
    fn cell(&self, r: usize) -> &str {
        if r + 1 < self.offsets.len() {
            &self.bytes[self.offsets[r] as usize..self.offsets[r + 1] as usize]
        } else {
            ""
        }
    }
}

impl ColumnSketch {
    /// One pass over the column window: each cell is rendered into a
    /// reused buffer and hashed once; that hash feeds both the cell
    /// MinHash fold and (collected) the numerical sketch's unique count.
    /// String columns additionally fold each word's hash into the word
    /// MinHash.
    pub fn build(col: &Column, hasher: &MinHasher, max_rows: usize) -> Self {
        Self::build_inner(col, hasher, max_rows, None)
    }

    fn build_inner(
        col: &Column,
        hasher: &MinHasher,
        max_rows: usize,
        mut arena: Option<&mut CellArena>,
    ) -> Self {
        let n = col.len().min(max_rows);
        let slice = &col.values[..n];
        let is_str = col.ty == ColType::Str;
        if let Some(a) = arena.as_deref_mut() {
            a.offsets.reserve(n + 1);
            a.offsets.push(0);
        }

        let mut cell_sig = hasher.empty_sig();
        let mut word_sig = is_str.then(|| hasher.empty_sig());
        let mut cell_hashes: Vec<u64> = Vec::with_capacity(n);
        let mut nums: Vec<f64> = Vec::new();
        let mut width_sum = 0usize;
        let mut nan = 0usize;
        let mut non_null = 0usize;
        let mut render_buf = String::new();
        let mut word_buf = String::new();
        for v in slice {
            if v.is_null() {
                nan += 1;
                if let Some(a) = arena.as_deref_mut() {
                    a.offsets.push(a.bytes.len() as u32);
                }
                continue;
            }
            non_null += 1;
            // Strings render to themselves; everything else goes through
            // the reused buffer (no per-cell allocation either way).
            let r: &str = match v {
                Value::Str(s) => s,
                other => {
                    render_buf.clear();
                    other.render_into(&mut render_buf);
                    &render_buf
                }
            };
            width_sum += r.len();
            let x = hash_str(r);
            cell_hashes.push(x);
            hasher.fold(&mut cell_sig, x);
            if let Some(ws) = &mut word_sig {
                for_each_word(r, &mut word_buf, |w| hasher.fold(ws, hash_str(w)));
            }
            if let Some(f) = v.as_f64() {
                if f.is_finite() {
                    nums.push(f);
                }
            }
            if let Some(a) = arena.as_deref_mut() {
                a.bytes.push_str(r);
                a.offsets.push(a.bytes.len() as u32);
            }
        }
        let numeric = NumericalSketch::from_parts(n, nan, non_null, width_sum, cell_hashes, nums);
        ColumnSketch {
            name: col.name.clone(),
            ty: col.ty,
            cell_minhash: MinHash { sig: cell_sig },
            word_minhash: word_sig.map(|sig| MinHash { sig }),
            numeric,
        }
    }

    /// The model input vector for the MinHash embedding stream: a fixed
    /// `2k`-wide layout `[cell_mh ‖ word_mh]`, zero-padding the word half
    /// for numeric/date columns (the paper's `E_C` vs `E_{C‖W}` made
    /// concrete so that one linear layer serves every token).
    pub fn minhash_features(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(2 * self.cell_minhash.k());
        self.extend_minhash_features(&mut v);
        v
    }

    /// Append [`ColumnSketch::minhash_features`] to `out` without
    /// allocating (the index-build and query hot paths reuse one buffer
    /// across every column).
    pub fn extend_minhash_features(&self, out: &mut Vec<f32>) {
        self.cell_minhash.extend_f32_features(out);
        match &self.word_minhash {
            Some(w) => w.extend_f32_features(out),
            None => out.extend(std::iter::repeat(0.0).take(self.cell_minhash.k())),
        }
    }
}

/// The complete sketch bundle for one table.
#[derive(Debug, Clone)]
pub struct TableSketch {
    pub table_id: String,
    pub table_name: String,
    pub description: String,
    pub content_snapshot: MinHash,
    pub columns: Vec<ColumnSketch>,
    pub num_rows: usize,
}

impl TableSketch {
    pub fn build(table: &Table, cfg: &SketchConfig) -> Self {
        let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
        Self::build_with_hasher(table, &hasher, cfg.max_rows)
    }

    /// Build with a caller-owned hasher (amortizes family construction when
    /// sketching a whole lake). The column pass captures each column's
    /// rendered cells in an arena, and the content snapshot assembles its
    /// row strings from those arenas — so every cell of the table is
    /// rendered exactly once. Identical output to running
    /// [`ColumnSketch::build`] per column plus [`crate::content_snapshot`] (see
    /// `tests/determinism.rs`).
    pub fn build_with_hasher(table: &Table, hasher: &MinHasher, max_rows: usize) -> Self {
        let _g = tsfm_obs::span!("sketch.table");
        sketch_counters().record(table.columns.len() as u64);
        let n_rows = table.num_rows().min(max_rows);
        let mut arenas: Vec<CellArena> = Vec::with_capacity(table.columns.len());
        let columns = table
            .columns
            .iter()
            .map(|c| {
                let mut arena = CellArena::default();
                let cs = ColumnSketch::build_inner(c, hasher, max_rows, Some(&mut arena));
                arenas.push(arena);
                cs
            })
            .collect();
        TableSketch {
            table_id: table.id.clone(),
            table_name: table.name.clone(),
            description: table.description.clone(),
            content_snapshot: content_from_arenas(&arenas, hasher, n_rows),
            columns,
            num_rows: n_rows,
        }
    }

    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Content-snapshot features in the same `2k` layout as
    /// [`ColumnSketch::minhash_features`] (word half zero-padded), used for
    /// table-metadata tokens.
    pub fn content_features(&self) -> Vec<f32> {
        let mut v = self.content_snapshot.to_f32_features();
        v.extend(std::iter::repeat(0.0).take(self.content_snapshot.k()));
        v
    }
}

/// Process-wide ingest counters, resolved from the global registry once
/// (a bulk ingest sketches thousands of tables; the name lookup must not
/// run per table).
struct SketchCounters {
    tables: std::sync::Arc<tsfm_obs::metrics::Counter>,
    columns: std::sync::Arc<tsfm_obs::metrics::Counter>,
}

impl SketchCounters {
    fn record(&self, cols: u64) {
        self.tables.inc();
        self.columns.add(cols);
    }
}

fn sketch_counters() -> &'static SketchCounters {
    static C: std::sync::OnceLock<SketchCounters> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        let reg = tsfm_obs::metrics::global();
        SketchCounters {
            tables: reg.counter("tsfm_sketch_tables_total", "Tables sketched"),
            columns: reg.counter("tsfm_sketch_columns_total", "Columns sketched"),
        }
    })
}

/// The content snapshot assembled from pre-rendered column arenas:
/// byte-identical row strings to [`tsfm_table::Table::row_string`]
/// (`|`-separated cells, empty past a column's end), folded through the
/// same hash — so the signature equals [`crate::content_snapshot`]'s without
/// re-rendering a single cell.
fn content_from_arenas(arenas: &[CellArena], hasher: &MinHasher, n_rows: usize) -> MinHash {
    let mut sig = hasher.empty_sig();
    let mut buf = String::new();
    for r in 0..n_rows {
        buf.clear();
        for (i, arena) in arenas.iter().enumerate() {
            if i > 0 {
                buf.push('|');
            }
            buf.push_str(arena.cell(r));
        }
        hasher.fold(&mut sig, hash_str(&buf));
    }
    MinHash { sig }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_table::Value;

    fn properties_table() -> Table {
        let mut t = Table::new("res", "Residential Properties")
            .with_description("residential properties in austria");
        t.push_column(Column::new(
            "Reference Area",
            vec![
                Value::Str("Austria Vienna".into()),
                Value::Str("Austria Graz".into()),
                Value::Str("Austria Linz".into()),
            ],
        ));
        t.push_column(Column::new("Age", vec![Value::Int(10), Value::Int(55), Value::Int(31)]));
        t.push_column(Column::new(
            "Assessed",
            vec![Value::Date(0), Value::Date(86400), Value::Date(2 * 86400)],
        ));
        t
    }

    #[test]
    fn builds_all_sketch_kinds() {
        let s = TableSketch::build(&properties_table(), &SketchConfig::default());
        assert_eq!(s.num_cols(), 3);
        assert!(s.columns[0].word_minhash.is_some(), "string col has word minhash");
        assert!(s.columns[1].word_minhash.is_none(), "int col has none");
        assert!(s.columns[2].word_minhash.is_none(), "date col has none");
        assert!(!s.content_snapshot.is_empty_set());
    }

    #[test]
    fn word_minhash_captures_shared_words() {
        // Two columns share the word "austria" but no full values.
        let cfg = SketchConfig { minhash_k: 256, ..Default::default() };
        let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
        let a = Column::new(
            "a",
            vec![Value::Str("Austria Vienna".into()), Value::Str("Austria Graz".into())],
        );
        let b = Column::new(
            "b",
            vec![Value::Str("Austria Linz".into()), Value::Str("Austria Salzburg".into())],
        );
        let sa = ColumnSketch::build(&a, &hasher, 10_000);
        let sb = ColumnSketch::build(&b, &hasher, 10_000);
        assert_eq!(sa.cell_minhash.jaccard(&sb.cell_minhash), 0.0, "no full-value overlap");
        let wj = sa
            .word_minhash
            .as_ref()
            .unwrap()
            .jaccard(sb.word_minhash.as_ref().unwrap());
        // word sets {austria,vienna,graz} vs {austria,linz,salzburg}: J = 1/5.
        assert!(wj > 0.05, "shared words must register, got {wj}");
    }

    #[test]
    fn minhash_feature_layout_is_2k() {
        let cfg = SketchConfig { minhash_k: 16, ..Default::default() };
        let s = TableSketch::build(&properties_table(), &cfg);
        for cs in &s.columns {
            assert_eq!(cs.minhash_features().len(), 32);
        }
        assert_eq!(s.content_features().len(), 32);
        // Numeric columns zero-pad the word half.
        let feats = s.columns[1].minhash_features();
        assert!(feats[16..].iter().all(|&f| f == 0.0));
    }

    #[test]
    fn deterministic_across_builds() {
        let t = properties_table();
        let cfg = SketchConfig::default();
        let a = TableSketch::build(&t, &cfg);
        let b = TableSketch::build(&t, &cfg);
        assert_eq!(a.content_snapshot, b.content_snapshot);
        for (x, y) in a.columns.iter().zip(&b.columns) {
            assert_eq!(x.cell_minhash, y.cell_minhash);
            assert_eq!(x.numeric.to_vec(), y.numeric.to_vec());
        }
    }

    #[test]
    fn shared_hasher_matches_config_build() {
        let t = properties_table();
        let cfg = SketchConfig::default();
        let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
        let a = TableSketch::build(&t, &cfg);
        let b = TableSketch::build_with_hasher(&t, &hasher, cfg.max_rows);
        assert_eq!(a.content_snapshot, b.content_snapshot);
    }
}
