//! Determinism guarantees for the sketch layer: sketches must be identical
//! across independent runs (the stable-hashing promise of
//! `tsfm_table::hash`) and — for the set-based sketches — invariant to
//! row-order permutation, which is what makes precomputed sketches
//! comparable across a data lake.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tsfm_sketch::{
    content_snapshot, words_of, ColumnSketch, MinHasher, NumericalSketch, SketchConfig,
    TableSketch,
};
use tsfm_table::hash::{hash_str, hash_str_seeded, splitmix64};
use tsfm_table::{ColType, Column, Table, Value};

fn sample_table() -> Table {
    let mut t = Table::new("det", "determinism sample").with_description("mixed-type table");
    t.push_column(Column::new(
        "city",
        (0..200).map(|i| Value::Str(format!("city {} ward {}", i % 37, i % 11))).collect(),
    ));
    t.push_column(Column::new("population", (0..200).map(|i| Value::Int(i * 13 % 9973)).collect(),));
    t.push_column(Column::new(
        "density",
        (0..200)
            .map(|i| if i % 17 == 0 { Value::Null } else { Value::Float(i as f64 * 0.73) })
            .collect(),
    ));
    t
}

/// The documented contract of `tsfm_table::hash`: output is stable across
/// processes, platforms, and releases. Pinned values catch accidental
/// algorithm changes that would silently invalidate every stored sketch.
#[test]
fn stable_hash_pinned_values() {
    // Hard-coded expected values: any change to the hash algorithm fails
    // here, because it would silently invalidate every stored sketch.
    let golden: [(&str, u64); 4] = [
        ("", 0xc3817c016ba4ff30),
        ("a", 0x5f29c2aadd9b8527),
        ("abc", 0x29e32c04ec3f9c30),
        ("tabsketchfm", 0x402362a9a479137b),
    ];
    for (s, h) in golden {
        assert_eq!(hash_str(s), h, "hash of {s:?} changed — stored sketches would break");
    }
    assert_ne!(hash_str_seeded("abc", 1), hash_str_seeded("abc", 2));
    assert_eq!(hash_str_seeded("abc", 7), hash_str_seeded("abc", 7));
}

#[test]
fn minhash_identical_across_runs() {
    let values: Vec<String> = (0..500).map(|i| format!("value-{i}")).collect();
    let a = MinHasher::new(64, 42).signature(values.iter());
    let b = MinHasher::new(64, 42).signature(values.iter());
    assert_eq!(a, b, "independently constructed hashers must agree");
}

#[test]
fn minhash_invariant_to_element_order() {
    let mut values: Vec<String> = (0..500).map(|i| format!("value-{i}")).collect();
    let hasher = MinHasher::new(64, 42);
    let before = hasher.signature(values.iter());
    let mut rng = StdRng::seed_from_u64(7);
    values.shuffle(&mut rng);
    let after = hasher.signature(values.iter());
    assert_eq!(before, after, "a MinHash is a set sketch; order must not matter");
}

#[test]
fn numerical_sketch_identical_across_runs_and_row_orders() {
    let t = sample_table();
    for col in &t.columns {
        let a = NumericalSketch::of_column(col, 10_000);
        let b = NumericalSketch::of_column(col, 10_000);
        assert_eq!(a, b, "column {}", col.name);
    }
    let mut rng = StdRng::seed_from_u64(3);
    let shuffled = t.shuffled_rows(&mut rng, "det2");
    for (orig, perm) in t.columns.iter().zip(&shuffled.columns) {
        assert_eq!(
            NumericalSketch::of_column(orig, 10_000),
            NumericalSketch::of_column(perm, 10_000),
            "numerical sketch of {} must be row-order invariant",
            orig.name
        );
    }
}

#[test]
fn table_sketch_identical_across_runs() {
    let t = sample_table();
    let cfg = SketchConfig::default();
    let a = TableSketch::build(&t, &cfg);
    let b = TableSketch::build(&t, &cfg);
    assert_eq!(a.content_snapshot, b.content_snapshot);
    assert_eq!(a.num_rows, b.num_rows);
    assert_eq!(a.num_cols(), b.num_cols());
    for (x, y) in a.columns.iter().zip(&b.columns) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.ty, y.ty);
        assert_eq!(x.cell_minhash, y.cell_minhash);
        assert_eq!(x.word_minhash, y.word_minhash);
        assert_eq!(x.numeric, y.numeric);
        assert_eq!(x.minhash_features(), y.minhash_features());
    }
}

/// The naive multi-pass reference: render every non-null cell to an owned
/// string, MinHash the rendered set, MinHash the word set, and compute the
/// numerical sketch in its own pass — exactly what `ColumnSketch::build`
/// did before the hash-once rewrite.
fn reference_column_sketch(col: &Column, hasher: &MinHasher, max_rows: usize) -> ColumnSketch {
    let n = col.len().min(max_rows);
    let rendered: Vec<String> =
        col.values[..n].iter().filter(|v| !v.is_null()).map(tsfm_table::Value::render).collect();
    let cell_minhash = hasher.signature(rendered.iter());
    let word_minhash = (col.ty == ColType::Str)
        .then(|| hasher.signature(rendered.iter().flat_map(|s| words_of(s))));
    let numeric = NumericalSketch::of_column(col, max_rows);
    ColumnSketch { name: col.name.clone(), ty: col.ty, cell_minhash, word_minhash, numeric }
}

fn assert_column_sketches_identical(fast: &ColumnSketch, reference: &ColumnSketch, what: &str) {
    assert_eq!(fast.cell_minhash, reference.cell_minhash, "{what}: cell MinHash");
    assert_eq!(fast.word_minhash, reference.word_minhash, "{what}: word MinHash");
    assert_eq!(
        fast.numeric.to_vec().map(f64::to_bits),
        reference.numeric.to_vec().map(f64::to_bits),
        "{what}: numerical sketch"
    );
}

/// The hash-once single-pass `ColumnSketch::build` (one render + one hash
/// per cell, shared between the cell MinHash and the numeric unique
/// count) must be bit-identical to the multi-pass reference on a real
/// mixed-type table.
#[test]
fn hash_once_column_sketch_matches_reference() {
    let t = sample_table();
    let cfg = SketchConfig::default();
    let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
    for col in &t.columns {
        let fast = ColumnSketch::build(col, &hasher, cfg.max_rows);
        let reference = reference_column_sketch(col, &hasher, cfg.max_rows);
        assert_column_sketches_identical(&fast, &reference, &col.name);
    }
    // Window truncation takes the same code path.
    for col in &t.columns {
        let fast = ColumnSketch::build(col, &hasher, 17);
        let reference = reference_column_sketch(col, &hasher, 17);
        assert_column_sketches_identical(&fast, &reference, &col.name);
    }
}

proptest! {
    /// Property form over random columns of every type mix: nulls, ints,
    /// floats (incl. integral-valued ones that render as "x.0"), dates,
    /// and multi-word unicode strings.
    #[test]
    fn prop_hash_once_matches_reference(seed in 0u64..400, len in 0usize..50, max_rows in 1usize..40) {
        let h = |i: usize, salt: u64| splitmix64(seed ^ salt ^ (i as u64).wrapping_mul(0x9e37));
        let values: Vec<Value> = (0..len)
            .map(|i| match h(i, 1) % 6 {
                0 => Value::Null,
                1 => Value::Int(h(i, 2) as i64 % 10_000),
                2 => Value::Float((h(i, 3) % 2_000) as f64 / 8.0 - 100.0),
                3 => Value::Date((h(i, 4) % 4_000_000_000) as i64 - 1_000_000_000),
                4 => Value::Str(format!("word{} straße-{} ΟΔΟΣ", h(i, 5) % 30, h(i, 6) % 7)),
                _ => Value::Str(format!("v{}", h(i, 7) % 100)),
            })
            .collect();
        let col = Column::new("c", values);
        let hasher = MinHasher::new(32, 0x7ab5);
        let fast = ColumnSketch::build(&col, &hasher, max_rows);
        let reference = reference_column_sketch(&col, &hasher, max_rows);
        prop_assert_eq!(&fast.cell_minhash, &reference.cell_minhash);
        prop_assert_eq!(&fast.word_minhash, &reference.word_minhash);
        prop_assert_eq!(
            fast.numeric.to_vec().map(f64::to_bits),
            reference.numeric.to_vec().map(f64::to_bits)
        );
    }
}

/// `TableSketch::build` assembles its content snapshot from the column
/// pass's rendered-cell arenas; it must equal the standalone
/// [`content_snapshot`] (which re-renders every row) — including on
/// ragged tables, where short columns read as empty cells, and with a
/// truncating row window.
#[test]
fn arena_content_snapshot_matches_reference() {
    let mut t = Table::new("ragged", "ragged");
    t.push_column(Column::new(
        "a",
        (0..40).map(|i| if i % 5 == 0 { Value::Null } else { Value::Int(i) }).collect(),
    ));
    t.push_column(Column::new(
        "b",
        (0..25).map(|i| Value::Str(format!("w{} x{}", i % 9, i))).collect(),
    ));
    t.push_column(Column::new("c", (0..33).map(|i| Value::Date(i * 86_400 + i)).collect()));
    t.push_column(Column::new("empty", vec![]));
    let cfg = SketchConfig::default();
    let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
    for max_rows in [10_000, 30, 1] {
        let s = TableSketch::build_with_hasher(&t, &hasher, max_rows);
        assert_eq!(
            s.content_snapshot,
            content_snapshot(&t, &hasher, max_rows),
            "max_rows={max_rows}"
        );
    }
}

/// Fold a full table sketch — every signature slot, numeric statistic bit,
/// and feature value — into one u64.
fn sketch_fingerprint(s: &TableSketch) -> u64 {
    let mut acc = splitmix64(s.num_rows as u64 ^ 0x5ce7);
    for &slot in &s.content_snapshot.sig {
        acc = splitmix64(acc ^ slot);
    }
    for c in &s.columns {
        acc = splitmix64(acc ^ hash_str(&c.name));
        for &slot in &c.cell_minhash.sig {
            acc = splitmix64(acc ^ slot);
        }
        if let Some(w) = &c.word_minhash {
            for &slot in &w.sig {
                acc = splitmix64(acc ^ slot);
            }
        }
        for v in c.numeric.to_vec() {
            acc = splitmix64(acc ^ v.to_bits());
        }
        for f in c.minhash_features() {
            acc = splitmix64(acc ^ f.to_bits() as u64);
        }
    }
    acc
}

/// Pinned fingerprint over the whole sketch bundle: any non-bit-identical
/// change to cell/word/content MinHashes, the numeric statistics, or the
/// f32 feature mapping fails here — exactly the guarantee the hash-once
/// sketcher rewrite must preserve for every sketch already persisted in a
/// catalog.
#[test]
fn table_sketch_fingerprint_pinned() {
    let s = TableSketch::build(&sample_table(), &SketchConfig::default());
    assert_eq!(
        sketch_fingerprint(&s),
        0x3836_41f5_60a1_5369,
        "sketch construction changed — stored sketches would no longer match"
    );
}

/// Row-order permutation must not change any set-based sketch: per-column
/// cell/word MinHashes and the table-level content snapshot (the paper's
/// content snapshot hashes the *set* of row strings).
#[test]
fn table_sketch_set_sketches_invariant_to_row_permutation() {
    let t = sample_table();
    let cfg = SketchConfig::default();
    let mut rng = StdRng::seed_from_u64(11);
    let shuffled = t.shuffled_rows(&mut rng, "det-perm");
    // Sanity: the permutation actually moved rows.
    assert_ne!(t.row_string(0), shuffled.row_string(0));

    let a = TableSketch::build(&t, &cfg);
    let b = TableSketch::build(&shuffled, &cfg);
    assert_eq!(a.content_snapshot, b.content_snapshot, "content snapshot is a row-set sketch");
    for (x, y) in a.columns.iter().zip(&b.columns) {
        assert_eq!(x.cell_minhash, y.cell_minhash, "cell MinHash of {}", x.name);
        assert_eq!(x.word_minhash, y.word_minhash, "word MinHash of {}", x.name);
    }

    let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
    assert_eq!(
        content_snapshot(&t, &hasher, cfg.max_rows),
        content_snapshot(&shuffled, &hasher, cfg.max_rows),
    );
}
