//! Determinism guarantees for the sketch layer: sketches must be identical
//! across independent runs (the stable-hashing promise of
//! `tsfm_table::hash`) and — for the set-based sketches — invariant to
//! row-order permutation, which is what makes precomputed sketches
//! comparable across a data lake.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tsfm_sketch::{content_snapshot, MinHasher, NumericalSketch, SketchConfig, TableSketch};
use tsfm_table::hash::{hash_str, hash_str_seeded};
use tsfm_table::{Column, Table, Value};

fn sample_table() -> Table {
    let mut t = Table::new("det", "determinism sample").with_description("mixed-type table");
    t.push_column(Column::new(
        "city",
        (0..200).map(|i| Value::Str(format!("city {} ward {}", i % 37, i % 11))).collect(),
    ));
    t.push_column(Column::new("population", (0..200).map(|i| Value::Int(i * 13 % 9973)).collect(),));
    t.push_column(Column::new(
        "density",
        (0..200)
            .map(|i| if i % 17 == 0 { Value::Null } else { Value::Float(i as f64 * 0.73) })
            .collect(),
    ));
    t
}

/// The documented contract of `tsfm_table::hash`: output is stable across
/// processes, platforms, and releases. Pinned values catch accidental
/// algorithm changes that would silently invalidate every stored sketch.
#[test]
fn stable_hash_pinned_values() {
    // Hard-coded expected values: any change to the hash algorithm fails
    // here, because it would silently invalidate every stored sketch.
    let golden: [(&str, u64); 4] = [
        ("", 0xc3817c016ba4ff30),
        ("a", 0x5f29c2aadd9b8527),
        ("abc", 0x29e32c04ec3f9c30),
        ("tabsketchfm", 0x402362a9a479137b),
    ];
    for (s, h) in golden {
        assert_eq!(hash_str(s), h, "hash of {s:?} changed — stored sketches would break");
    }
    assert_ne!(hash_str_seeded("abc", 1), hash_str_seeded("abc", 2));
    assert_eq!(hash_str_seeded("abc", 7), hash_str_seeded("abc", 7));
}

#[test]
fn minhash_identical_across_runs() {
    let values: Vec<String> = (0..500).map(|i| format!("value-{i}")).collect();
    let a = MinHasher::new(64, 42).signature(values.iter());
    let b = MinHasher::new(64, 42).signature(values.iter());
    assert_eq!(a, b, "independently constructed hashers must agree");
}

#[test]
fn minhash_invariant_to_element_order() {
    let mut values: Vec<String> = (0..500).map(|i| format!("value-{i}")).collect();
    let hasher = MinHasher::new(64, 42);
    let before = hasher.signature(values.iter());
    let mut rng = StdRng::seed_from_u64(7);
    values.shuffle(&mut rng);
    let after = hasher.signature(values.iter());
    assert_eq!(before, after, "a MinHash is a set sketch; order must not matter");
}

#[test]
fn numerical_sketch_identical_across_runs_and_row_orders() {
    let t = sample_table();
    for col in &t.columns {
        let a = NumericalSketch::of_column(col, 10_000);
        let b = NumericalSketch::of_column(col, 10_000);
        assert_eq!(a, b, "column {}", col.name);
    }
    let mut rng = StdRng::seed_from_u64(3);
    let shuffled = t.shuffled_rows(&mut rng, "det2");
    for (orig, perm) in t.columns.iter().zip(&shuffled.columns) {
        assert_eq!(
            NumericalSketch::of_column(orig, 10_000),
            NumericalSketch::of_column(perm, 10_000),
            "numerical sketch of {} must be row-order invariant",
            orig.name
        );
    }
}

#[test]
fn table_sketch_identical_across_runs() {
    let t = sample_table();
    let cfg = SketchConfig::default();
    let a = TableSketch::build(&t, &cfg);
    let b = TableSketch::build(&t, &cfg);
    assert_eq!(a.content_snapshot, b.content_snapshot);
    assert_eq!(a.num_rows, b.num_rows);
    assert_eq!(a.num_cols(), b.num_cols());
    for (x, y) in a.columns.iter().zip(&b.columns) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.ty, y.ty);
        assert_eq!(x.cell_minhash, y.cell_minhash);
        assert_eq!(x.word_minhash, y.word_minhash);
        assert_eq!(x.numeric, y.numeric);
        assert_eq!(x.minhash_features(), y.minhash_features());
    }
}

/// Row-order permutation must not change any set-based sketch: per-column
/// cell/word MinHashes and the table-level content snapshot (the paper's
/// content snapshot hashes the *set* of row strings).
#[test]
fn table_sketch_set_sketches_invariant_to_row_permutation() {
    let t = sample_table();
    let cfg = SketchConfig::default();
    let mut rng = StdRng::seed_from_u64(11);
    let shuffled = t.shuffled_rows(&mut rng, "det-perm");
    // Sanity: the permutation actually moved rows.
    assert_ne!(t.row_string(0), shuffled.row_string(0));

    let a = TableSketch::build(&t, &cfg);
    let b = TableSketch::build(&shuffled, &cfg);
    assert_eq!(a.content_snapshot, b.content_snapshot, "content snapshot is a row-set sketch");
    for (x, y) in a.columns.iter().zip(&b.columns) {
        assert_eq!(x.cell_minhash, y.cell_minhash, "cell MinHash of {}", x.name);
        assert_eq!(x.word_minhash, y.word_minhash, "word MinHash of {}", x.name);
    }

    let hasher = MinHasher::new(cfg.minhash_k, cfg.seed);
    assert_eq!(
        content_snapshot(&t, &hasher, cfg.max_rows),
        content_snapshot(&shuffled, &hasher, cfg.max_rows),
    );
}
