//! The persistent discovery catalog.
//!
//! On-disk layout under the catalog directory:
//!
//! ```text
//! <dir>/catalog.manifest   TSFMCAT1: sketch config + loose entries + shard metas + tombstones
//! <dir>/segments/<f>.seg   TSFMSEG1: one loose TableRecord per file
//! <dir>/shards/<s>.shard   TSFMSHD1: per-shard table metadata (see crate::shard)
//! <dir>/shards/<s>.arena   TSFMARN1: per-shard flat sketch arena, read positionally
//! <dir>/index.cache        TSFMIDX1: fingerprint + join/union HNSW graphs + per-table engine meta
//! ```
//!
//! Two storage tiers share the namespace. **Loose** tables — everything
//! recently added, updated, or present in a small catalog — live one
//! record per `segments/*.seg` file, listed directly in the root
//! manifest; this tier is the mutation journal and behaves exactly as it
//! always has. **Sharded** tables live in `shards/`: the id space is
//! partitioned by hash prefix, and each shard packs its records into a
//! flat arena behind a fixed-width offset table, so `Catalog::open`
//! reads only the root manifest — O(shards) metadata, not O(tables) of
//! sketches — and sketch payloads load lazily by positioned read. A
//! loose entry shadows (and a *tombstone* marks removed/shadowed) any
//! shard-resident copy of the same id. [`Catalog::compact`] folds loose
//! entries and tombstones into rewritten shards — only *dirty* shards
//! are rewritten, to a fresh generation committed file-by-file through
//! [`crate::durable::commit_file`], with the root manifest flip as the
//! single commit point — and [`Catalog::commit`] triggers it
//! automatically once churn crosses a threshold (see
//! [`Catalog::compaction_due`]).
//!
//! Mutations (`add_table`, `add_record`, `remove`) write new segment
//! files immediately (unsynced) and update the in-memory manifest;
//! [`Catalog::commit`] (also called on drop, best effort) is the single
//! durability point: it fsyncs every segment written since the last
//! commit, fsyncs the segment directory, atomically commits the manifest
//! via [`crate::durable::commit_file`], and only then deletes segments
//! the new manifest no longer references. A crash at any instant leaves
//! the catalog at the previous committed epoch: un-fsynced segments are
//! unreferenced garbage (`tsfm fsck` sweeps them), and replaced/removed
//! segments survive until no manifest on disk mentions them. fsyncs are
//! batched per commit, not issued per segment: each new segment's still-
//! open handle is parked in `pending_sync`, and once a bulk ingest has
//! accumulated [`durable::SyncPool::CHUNK`] of them they are handed to a
//! background [`durable::SyncPool`] so writeback overlaps sketching;
//! `commit` drains the pool (or syncs a small batch serially) before the
//! manifest rename acknowledges anything. Under an armed fault plan the
//! pool is bypassed so crash-point site numbering stays deterministic.
//!
//! Reads are split from writes: [`Catalog::searcher`] returns a
//! [`Searcher`] — an immutable `Arc`-shared snapshot of the query engine
//! that is `Send + Sync` — so queries never hold `&mut Catalog`. Every
//! mutation bumps the catalog [`Catalog::epoch`] and drops the cached
//! snapshot; the next `searcher()` call rebuilds it (loading the on-disk
//! HNSW cache when the manifest fingerprint matches, so a cold reopen of
//! an unchanged catalog skips graph construction entirely). Snapshots
//! already handed out keep serving their generation.
//!
//! Incremental ingest: every record stores the stable hash of its source
//! bytes. [`Catalog::ingest_dir`] hashes each CSV *before* parsing and
//! skips unchanged files without sketching them, so re-ingesting an
//! unchanged directory touches nothing and adding one file re-sketches
//! exactly one table.

use crate::durable;
use crate::engine::{table_metas, QueryEngine, TableMeta};
use crate::error::{StoreError, StoreResult};
use crate::record::TableRecord;
use crate::searcher::Searcher;
use crate::ser;
use crate::shard::{self, ArenaIndex, ShardEntry, ShardManifest, ShardMeta};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{self, File};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use tsfm_search::Hnsw;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tsfm_search::HnswConfig;
use tsfm_sketch::{MinHasher, SketchConfig, TableSketch};
use tsfm_table::hash::{hash_str, splitmix64};
use tsfm_table::{csv, Table};

/// The process-wide metrics registry (`{"op":"metrics"}` surfaces it).
/// Catalog instruments live there rather than on the `Catalog` struct so
/// segment I/O and index-rebuild counts survive catalog reopen — the
/// interesting failure mode ("why is this process rebuilding its index
/// every reload?") spans catalog instances.
fn obs() -> &'static tsfm_obs::metrics::Registry {
    tsfm_obs::metrics::global()
}

// Format magics live in `ser`, the crate's single magic module (the
// `format-magic-once` lint enforces this).
use crate::ser::{INDEX_MAGIC, MANIFEST_MAGIC};

pub(crate) const MANIFEST_FILE: &str = "catalog.manifest";
pub(crate) const INDEX_FILE: &str = "index.cache";
pub(crate) const SEGMENT_DIR: &str = "segments";

/// Manifest entry for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub content_hash: u64,
    /// Segment file name under `segments/`.
    pub segment: String,
    pub num_rows: u64,
    pub num_cols: u32,
}

/// What happened to one table during ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// New table id: sketched and stored.
    Added,
    /// Known id whose content hash changed: re-sketched and replaced.
    Updated,
    /// Known id with identical content hash: nothing done.
    Unchanged,
}

/// Summary of a directory ingest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    pub added: usize,
    pub updated: usize,
    pub unchanged: usize,
    /// `(file name, error)` for sources that could not be read or parsed.
    pub failed: Vec<(String, String)>,
}

impl IngestReport {
    /// Number of tables actually (re-)sketched.
    pub fn sketched(&self) -> usize {
        self.added + self.updated
    }

    fn count(&mut self, outcome: IngestOutcome) {
        match outcome {
            IngestOutcome::Added => self.added += 1,
            IngestOutcome::Updated => self.updated += 1,
            IngestOutcome::Unchanged => self.unchanged += 1,
        }
    }
}

/// Run `work(0..n)` across `threads` workers (atomic work-stealing, scoped
/// threads), returning outputs in index order. `0` / `1` threads or a
/// single job runs inline. `work` must be a pure function of its index —
/// the ingest pool uses it for parse + sketch jobs, whose outputs are then
/// applied serially in input order, so the catalog ends up byte-identical
/// to a serial ingest at any thread count.
fn parallel_map<T: Send>(
    n: usize,
    threads: usize,
    work: impl Fn(usize) -> T + Sync,
) -> StoreResult<Vec<T>> {
    if threads <= 1 || n <= 1 {
        return Ok((0..n).map(work).collect());
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let mut panicked = 0usize;
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, work(i)));
                    }
                    out
                })
            })
            .collect();
        // Join every handle even after a panic: consuming each payload
        // here keeps the scope from re-raising it, and the surviving
        // workers' results let us report how much work was lost.
        let mut all = Vec::new();
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(_) => panicked += 1,
            }
        }
        all
    });
    if panicked > 0 {
        return Err(StoreError::internal(format!(
            "{panicked} ingest worker(s) panicked; batch discarded ({} of {n} jobs completed)",
            tagged.len()
        )));
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    Ok(tagged.into_iter().map(|(_, t)| t).collect())
}

/// Aggregate catalog statistics (the `tsfm stats` output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogStats {
    pub tables: usize,
    pub columns: u64,
    pub rows: u64,
    pub segment_bytes: u64,
    pub minhash_k: usize,
    /// Whether a valid on-disk index cache exists for the current contents.
    pub index_cached: bool,
    /// Width of the shard space (0 until the first compaction).
    pub shards: usize,
}

/// Below this many tables, [`SnapshotMode::Auto`] stays eager even over
/// a sharded catalog: the one-time cost of paging every sketch in is
/// tens-to-hundreds of milliseconds and repays itself immediately in
/// query latency (a lazy snapshot's LRU thrashes when the hot candidate
/// set exceeds its capacity). Past it, corpus size dominates and the
/// lazy path's bounded RSS and O(shards) snapshot build win.
pub(crate) const AUTO_LAZY_MIN_TABLES: usize = 65_536;

/// How [`Catalog::searcher`] materializes the corpus behind a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Lazy when a shard layer exists *and* the corpus is too large to
    /// hold eagerly ([`AUTO_LAZY_MIN_TABLES`]); eager otherwise.
    #[default]
    Auto,
    /// Hold every sketch in memory (the historical behavior; right for
    /// small catalogs where RSS is cheap and `sketch_of` is hot).
    Eager,
    /// Keep shard-resident sketches on disk; `sketch_of` loads them by
    /// positioned arena read through an LRU cache. Bounds snapshot RSS
    /// by churn + cache size instead of corpus size.
    Lazy,
}

/// One shard as the catalog tracks it: root-manifest metadata plus
/// lazily-loaded (once per catalog instance) manifest and arena. The
/// `OnceLock`s keep `Catalog::open` O(shards): nothing under `shards/`
/// is touched until a lookup lands there.
struct ShardSlot {
    meta: ShardMeta,
    manifest: OnceLock<Arc<ShardManifest>>,
    arena: OnceLock<Arc<ArenaIndex>>,
}

impl ShardSlot {
    fn new(meta: ShardMeta) -> Self {
        Self { meta, manifest: OnceLock::new(), arena: OnceLock::new() }
    }
}

/// A persistent, incrementally-updatable table catalog.
pub struct Catalog {
    dir: PathBuf,
    sketch_cfg: SketchConfig,
    hnsw_cfg: HnswConfig,
    /// Loose tables: the root manifest's own id → segment map.
    entries: BTreeMap<String, ManifestEntry>,
    /// The shard layer, indexed by shard number; the vector length is the
    /// hash-space width (a power of two). Empty for loose-only catalogs;
    /// a `None` hole is a shard fsck quarantined.
    shards: Vec<Option<ShardSlot>>,
    /// Shard-resident ids that are removed, or shadowed by a loose
    /// update, since the last compaction.
    tombstones: BTreeSet<String>,
    snapshot_mode: SnapshotMode,
    /// Cached read snapshot for the current epoch; dropped on mutation.
    snapshot: Option<Searcher>,
    /// Bumped by every mutation; snapshots carry the epoch they captured.
    epoch: u64,
    manifest_dirty: bool,
    /// Reused segment serialization buffer (records are a few KB; one
    /// buffer serves a whole bulk ingest).
    seg_buf: Vec<u8>,
    /// Segment files written since the last commit, awaiting their
    /// batched fsync (one pass at commit, not one fsync per table). The
    /// `write_new` handle rides along so the sync happens on the open
    /// descriptor — no by-path reopen; `None` only for retry leftovers
    /// from a failed batch.
    pending_sync: Vec<(PathBuf, Option<File>)>,
    /// Concurrent fsync workers for bulk ingests: chunks of pending
    /// segments are burst through the pool so journal batching amortizes
    /// the per-file flush cost and the writeback overlaps sketching.
    /// Spawned lazily by the first full chunk; `None` until then and
    /// never used while a fault plan is armed (the serial path keeps
    /// crash-sweep site numbering deterministic).
    sync_pool: Option<durable::SyncPool>,
    /// Whether any segments were handed to `sync_pool` since the last
    /// commit (commit must then drain the pool and sync the segment
    /// directory even if `pending_sync` is empty).
    pool_used: bool,
    /// Segment files the in-memory manifest no longer references,
    /// deleted only *after* the manifest commits — until then a manifest
    /// on disk may still point at them.
    pending_delete: Vec<PathBuf>,
}

impl Catalog {
    /// Open a catalog directory, creating an empty catalog (with the
    /// default [`SketchConfig`]) if none exists yet.
    pub fn open(dir: impl Into<PathBuf>) -> StoreResult<Self> {
        Self::open_with(dir, SketchConfig::default())
    }

    /// Open with an explicit sketch configuration. If the catalog already
    /// exists its persisted configuration wins — sketches on disk were
    /// built with it — and a mismatch with `cfg` is an
    /// [`StoreError::InvalidRequest`].
    pub fn open_with(dir: impl Into<PathBuf>, cfg: SketchConfig) -> StoreResult<Self> {
        let _g = tsfm_obs::span!("catalog.open");
        obs().counter("tsfm_catalog_opens_total", "Catalog open attempts").inc();
        // Registered eagerly (not on first increment) so the serve
        // metrics verb always exposes the durability counters — an
        // operator alerting on corruption needs the zero, not an absent
        // series.
        obs().counter(
            "tsfm_store_corruptions_detected_total",
            "Checksum or format violations detected while reading store files",
        );
        obs().counter("tsfm_store_fsck_repairs_total", "Repair actions taken by tsfm fsck");
        obs().counter(
            "tsfm_store_shard_cache_hits_total",
            "Lazy sketch loads answered by the shard cache",
        );
        obs().counter(
            "tsfm_store_shard_cache_misses_total",
            "Lazy sketch loads that went to an arena read",
        );
        obs().counter("tsfm_store_compactions_total", "Shard compaction passes completed");
        obs().histogram("tsfm_store_arena_read_us", "Positioned arena payload read latency");
        let dir = dir.into();
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            let (sketch_cfg, entries, metas, mut tombstones) = read_manifest(&manifest)?;
            if sketch_cfg.minhash_k != cfg.minhash_k
                || sketch_cfg.max_rows != cfg.max_rows
                || sketch_cfg.seed != cfg.seed
            {
                return Err(StoreError::invalid(format!(
                    "catalog was created with (k={}, max_rows={}, seed={:#x}); \
                     refusing to open with a different sketch config",
                    sketch_cfg.minhash_k, sketch_cfg.max_rows, sketch_cfg.seed
                )));
            }
            let space = metas.len() as u32;
            // A tombstone pointing into a quarantined (missing) shard
            // marks nothing; keeping it would undercount `len`.
            if space > 0 {
                let present: Vec<bool> = metas.iter().map(Option::is_some).collect();
                tombstones.retain(|id| present[shard::shard_of(id, space) as usize]);
            }
            return Ok(Self {
                dir,
                sketch_cfg,
                hnsw_cfg: HnswConfig::default(),
                entries,
                shards: metas.into_iter().map(|m| m.map(ShardSlot::new)).collect(),
                tombstones,
                snapshot_mode: SnapshotMode::default(),
                snapshot: None,
                epoch: 0,
                manifest_dirty: false,
                seg_buf: Vec::new(),
                pending_sync: Vec::new(),
                sync_pool: None,
                pool_used: false,
                pending_delete: Vec::new(),
            });
        }
        fs::create_dir_all(dir.join(SEGMENT_DIR))?;
        let cat = Self {
            dir,
            sketch_cfg: cfg,
            hnsw_cfg: HnswConfig::default(),
            entries: BTreeMap::new(),
            shards: Vec::new(),
            tombstones: BTreeSet::new(),
            snapshot_mode: SnapshotMode::default(),
            snapshot: None,
            epoch: 0,
            manifest_dirty: true,
            seg_buf: Vec::new(),
            pending_sync: Vec::new(),
            sync_pool: None,
            pool_used: false,
            pending_delete: Vec::new(),
        };
        cat.write_manifest()?;
        Ok(cat)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the on-disk manifest committed by every mutation. External
    /// watchers (e.g. the serve hot-reload loop) poll this file's
    /// mtime/len to detect that another process changed the catalog.
    pub fn manifest_path(&self) -> std::path::PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    pub fn sketch_config(&self) -> &SketchConfig {
        &self.sketch_cfg
    }

    /// Number of active tables: shard-resident (minus tombstones) plus
    /// loose. O(shards) — counted from root-manifest metadata alone.
    pub fn len(&self) -> usize {
        let sharded: u64 = self.shards.iter().flatten().map(|s| s.meta.entry_count).sum();
        (sharded - self.tombstones.len() as u64) as usize + self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mutation generation of this catalog. Bumped by every
    /// `add_table` / `add_record` / `remove`; a [`Searcher`] whose
    /// [`Searcher::epoch`] is older was taken before those mutations.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All active table ids in ascending order. For a sharded catalog
    /// this loads shard manifests (metadata only — sketch payloads stay
    /// on disk), so it is fallible and O(tables); prefer [`Catalog::len`]
    /// when only the count matters.
    pub fn table_ids(&self) -> StoreResult<Vec<String>> {
        let mut ids: Vec<String> = self.entries.keys().cloned().collect();
        for slot in self.shards.iter().flatten() {
            let m = self.slot_manifest(slot)?;
            ids.extend(
                m.entries
                    .iter()
                    .map(|e| e.id.as_str())
                    .filter(|id| !self.tombstones.contains(*id))
                    .map(str::to_string),
            );
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// The *loose* manifest entry for `id`, if the table lives in the
    /// loose tier (recently added/updated, or any table of a never-
    /// compacted catalog). Shard-resident tables have no loose entry —
    /// use [`Catalog::get`] / [`Catalog::record`] for tier-agnostic
    /// access.
    pub fn entry(&self, id: &str) -> Option<&ManifestEntry> {
        self.entries.get(id)
    }

    /// The shard layer's width (0 for a loose-only catalog).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_dir(&self) -> PathBuf {
        self.dir.join(shard::SHARD_DIR)
    }

    /// The shard that would own `id`, if the shard layer has it.
    fn shard_slot(&self, id: &str) -> Option<&ShardSlot> {
        if self.shards.is_empty() {
            return None;
        }
        self.shards[shard::shard_of(id, self.shards.len() as u32) as usize].as_ref()
    }

    /// Load (once) a shard's manifest, cross-checked against its root
    /// metadata. Errors are not cached: a transient failure retries on
    /// the next call.
    fn slot_manifest(&self, slot: &ShardSlot) -> StoreResult<Arc<ShardManifest>> {
        if let Some(m) = slot.manifest.get() {
            return Ok(Arc::clone(m));
        }
        let path = self.shard_dir().join(slot.meta.shard_file());
        let m = shard::read_shard_manifest(&path)?;
        if m.index != slot.meta.index
            || m.generation != slot.meta.generation
            || m.shard_count != self.shards.len() as u32
            || m.entries.len() as u64 != slot.meta.entry_count
        {
            return Err(durable::note_corruption(
                StoreError::corrupt(
                    "TSFMSHD1",
                    format!(
                        "shard file {} (shard {} of {}, generation {}, {} entries) does not \
                         match the root manifest (shard {} of {}, generation {}, {} entries)",
                        slot.meta.shard_file(),
                        m.index,
                        m.shard_count,
                        m.generation,
                        m.entries.len(),
                        slot.meta.index,
                        self.shards.len(),
                        slot.meta.generation,
                        slot.meta.entry_count
                    ),
                )
                .with_file(&path, 0),
            ));
        }
        Ok(Arc::clone(slot.manifest.get_or_init(|| Arc::new(m))))
    }

    /// Open (once) a shard's arena: header + offset table only.
    fn slot_arena(&self, slot: &ShardSlot) -> StoreResult<Arc<ArenaIndex>> {
        if let Some(a) = slot.arena.get() {
            return Ok(Arc::clone(a));
        }
        let path = self.shard_dir().join(slot.meta.arena_file());
        let a = ArenaIndex::open(&path, &slot.meta)?;
        Ok(Arc::clone(slot.arena.get_or_init(|| Arc::new(a))))
    }

    /// Locate `id` in the shard layer (tombstones NOT applied): the
    /// owning slot, its manifest, and the entry index.
    fn shard_locate(&self, id: &str) -> StoreResult<Option<(&ShardSlot, Arc<ShardManifest>, usize)>> {
        let Some(slot) = self.shard_slot(id) else {
            return Ok(None);
        };
        let m = self.slot_manifest(slot)?;
        match m.find(id) {
            Some(i) => Ok(Some((slot, m, i))),
            None => Ok(None),
        }
    }

    /// Content hash of the *active* copy of `id`, whichever tier holds it.
    fn active_content_hash(&self, id: &str) -> StoreResult<Option<u64>> {
        if let Some(e) = self.entries.get(id) {
            return Ok(Some(e.content_hash));
        }
        if self.tombstones.contains(id) {
            return Ok(None);
        }
        Ok(self.shard_locate(id)?.map(|(_, m, i)| m.entries[i].content_hash))
    }

    /// Load one table's full record — from its loose segment file, or by
    /// positioned read out of its shard's arena.
    pub fn get(&self, id: &str) -> StoreResult<Option<TableRecord>> {
        if let Some(entry) = self.entries.get(id) {
            let path = self.dir.join(SEGMENT_DIR).join(&entry.segment);
            let rec = durable::read_file_checked(&path, |r| {
                let rec = ser::read_record(r)?;
                if rec.content_hash != entry.content_hash || rec.table_id() != id {
                    return Err(StoreError::corrupt(
                        "TSFMSEG1",
                        format!(
                            "segment {} does not match manifest entry for {id:?}",
                            entry.segment
                        ),
                    ));
                }
                Ok(rec)
            })?;
            return Ok(Some(rec));
        }
        if self.tombstones.contains(id) {
            return Ok(None);
        }
        let Some((slot, m, i)) = self.shard_locate(id)? else {
            return Ok(None);
        };
        let arena = self.slot_arena(slot)?;
        let rec = arena.read_record(i)?;
        let e = &m.entries[i];
        if rec.content_hash != e.content_hash || rec.table_id() != id {
            return Err(durable::note_corruption(
                StoreError::corrupt(
                    "TSFMARN1",
                    format!(
                        "arena slot {i} of shard {} does not match its manifest entry for {id:?}",
                        slot.meta.index
                    ),
                )
                .with_file(arena.path(), arena.slots.get(i).map_or(0, |s| s.offset)),
            ));
        }
        Ok(Some(rec))
    }

    /// Like [`Catalog::get`] but a missing id is a typed
    /// [`StoreError::UnknownTable`] instead of `None`.
    pub fn record(&self, id: &str) -> StoreResult<TableRecord> {
        self.get(id)?.ok_or_else(|| StoreError::UnknownTable(id.to_string()))
    }

    /// Sketch `table` and store it under `table.id`. `content_hash` is the
    /// stable hash of the source bytes; if the stored record already has
    /// this hash nothing is re-sketched.
    pub fn add_table(&mut self, table: &Table, content_hash: u64) -> StoreResult<IngestOutcome> {
        if self.active_content_hash(&table.id)? == Some(content_hash) {
            return Ok(IngestOutcome::Unchanged);
        }
        let sketch = TableSketch::build(table, &self.sketch_cfg);
        self.add_record(&TableRecord::from_sketch(sketch, content_hash))
    }

    /// Store a pre-built record (the path for records carrying embeddings).
    pub fn add_record(&mut self, rec: &TableRecord) -> StoreResult<IngestOutcome> {
        let id = rec.table_id().to_string();
        let prior = self.active_content_hash(&id)?;
        if prior == Some(rec.content_hash) {
            return Ok(IngestOutcome::Unchanged);
        }
        let outcome = if prior.is_some() { IngestOutcome::Updated } else { IngestOutcome::Added };
        let segment = segment_name(&id, rec.content_hash);
        let path = self.dir.join(SEGMENT_DIR).join(&segment);
        {
            let _g = tsfm_obs::span!("catalog.segment.write");
            self.seg_buf.clear();
            ser::write_record(&mut self.seg_buf, rec)?;
            // Segment names are content-addressed (they embed the
            // table-id hash *and* the content hash), so a path that does
            // not exist yet cannot be open in any reader and takes the
            // unsynced fast path — its fsync is batched into the next
            // commit. An already-existing path means a reader holding an
            // older manifest could be loading those exact bytes right
            // now, so that rare case goes through the full atomic
            // commit_file route.
            if let Some(file) = durable::write_new(&path, &self.seg_buf)? {
                self.pending_sync.push((path, Some(file)));
                // Bulk ingest: hand full chunks to the fsync pool so the
                // writeback overlaps continued sketching; commit() drains
                // the pool before acknowledging anything. Fault runs keep
                // everything on the serial commit-time path.
                if self.pending_sync.len() >= durable::SyncPool::CHUNK
                    && !durable::fault::armed()
                {
                    let pool = self
                        .sync_pool
                        .get_or_insert_with(|| durable::SyncPool::new(durable::SyncPool::WORKERS));
                    for (p, f) in self.pending_sync.drain(..) {
                        pool.enqueue(p, f);
                    }
                    self.pool_used = true;
                }
            } else {
                durable::commit_file(&path, &self.seg_buf)?;
            }
        }
        obs().counter("tsfm_catalog_segments_written_total", "Segment files written").inc();
        obs()
            .counter("tsfm_catalog_segment_bytes_written_total", "Segment bytes written")
            .add(self.seg_buf.len() as u64);
        // The replaced segment file (its name differs because the hash
        // does) stays on disk until the manifest that stops referencing
        // it has committed.
        if let Some(old) = self.entries.get(&id) {
            if old.segment != segment {
                self.pending_delete.push(self.dir.join(SEGMENT_DIR).join(&old.segment));
            }
        }
        // A loose write shadowing a shard-resident copy tombstones it, so
        // `len` counts the table once and compaction drops the stale copy.
        if !self.entries.contains_key(&id)
            && !self.tombstones.contains(&id)
            && self.shard_locate(&id)?.is_some()
        {
            self.tombstones.insert(id.clone());
        }
        self.entries.insert(
            id,
            ManifestEntry {
                content_hash: rec.content_hash,
                segment,
                num_rows: rec.num_rows() as u64,
                num_cols: rec.num_cols() as u32,
            },
        );
        self.invalidate();
        Ok(outcome)
    }

    /// Remove a table; returns whether it existed. A loose table's
    /// segment file is deleted at the next [`Catalog::commit`], after the
    /// manifest that dropped it is durable — deleting first would lose
    /// the table on a crash before commit. A shard-resident table is
    /// tombstoned; the next compaction reclaims its arena bytes.
    pub fn remove(&mut self, id: &str) -> StoreResult<bool> {
        let mut existed = false;
        if let Some(entry) = self.entries.remove(id) {
            self.pending_delete.push(self.dir.join(SEGMENT_DIR).join(&entry.segment));
            existed = true;
        }
        if !self.tombstones.contains(id) && self.shard_locate(id)?.is_some() {
            self.tombstones.insert(id.to_string());
            existed = true;
        }
        if existed {
            self.invalidate();
        }
        Ok(existed)
    }

    /// Ingest every `*.csv` file of a directory (sorted by name; the file
    /// stem becomes the table id), parsing and sketching across the
    /// host's available parallelism. Unchanged files are skipped before
    /// parsing. Commits the manifest at the end.
    pub fn ingest_dir(&mut self, dir: impl AsRef<Path>) -> StoreResult<IngestReport> {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.ingest_dir_with_threads(dir, threads)
    }

    /// [`Catalog::ingest_dir`] with an explicit worker count (`0` or `1`
    /// runs inline). The result — report, segment files, manifest, and
    /// every future query answer — is identical at any thread count:
    /// sources are read and checked against the manifest serially in
    /// sorted file order, only the CPU-bound parse + sketch work fans out
    /// (file stems are unique within a directory, so jobs are
    /// independent), and records are applied back in file order.
    pub fn ingest_dir_with_threads(
        &mut self,
        dir: impl AsRef<Path>,
        threads: usize,
    ) -> StoreResult<IngestReport> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir.as_ref())?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "csv"))
            .collect();
        files.sort();
        let _g = tsfm_obs::span!("catalog.ingest_dir");
        let mut report = IngestReport::default();
        let hasher = self.hasher();
        let max_rows = self.sketch_cfg.max_rows;
        // Bound how many raw file texts are in memory at once: read +
        // content-hash serially (skipping unchanged sources before any
        // parsing), hand the pool one chunk of changed files at a time,
        // and apply each chunk's records in file order before reading
        // more — a lake-sized ingest never holds more than ~8 texts per
        // worker, and the resulting catalog is identical to the old
        // one-file-at-a-time loop.
        let chunk_size = threads.max(1) * 8;
        let mut jobs: Vec<(String, String, u64)> = Vec::new();
        let mut files = files.into_iter().peekable();
        while let Some(path) = files.next() {
            let name = path.file_name().unwrap_or_default().to_string_lossy().to_string();
            let id = path.file_stem().unwrap_or_default().to_string_lossy().to_string();
            match fs::read_to_string(&path) {
                Ok(text) => {
                    let content_hash = hash_str(&text);
                    if self.active_content_hash(&id)? == Some(content_hash) {
                        report.unchanged += 1;
                    } else {
                        jobs.push((id, text, content_hash));
                    }
                }
                Err(e) => report.failed.push((name, e.to_string())),
            }
            if jobs.len() >= chunk_size || files.peek().is_none() {
                let records = parallel_map(jobs.len(), threads, |j| {
                    let (id, text, content_hash) = &jobs[j];
                    let table = csv::table_from_csv(id, id, text);
                    let sketch = TableSketch::build_with_hasher(&table, &hasher, max_rows);
                    TableRecord::from_sketch(sketch, *content_hash)
                })?;
                jobs.clear();
                for rec in records {
                    report.count(self.add_record(&rec)?);
                }
            }
        }
        self.commit()?;
        Ok(report)
    }

    /// Bulk-add in-memory tables, sketching across `threads` workers
    /// (the `store_bench` ingest path). Results are identical to calling
    /// [`Catalog::add_table`] for each table in order. `tables` and
    /// `content_hashes` must be parallel slices.
    pub fn ingest_tables(
        &mut self,
        tables: &[Table],
        content_hashes: &[u64],
        threads: usize,
    ) -> StoreResult<IngestReport> {
        assert_eq!(tables.len(), content_hashes.len(), "one content hash per table");
        let mut report = IngestReport::default();
        // A batch that repeats a table id makes the skip pre-scan below
        // ambiguous (a later duplicate must be judged against the state
        // its predecessor left, not the pre-batch state); take the exact
        // serial path for those.
        let mut seen = std::collections::BTreeSet::new();
        if tables.iter().any(|t| !seen.insert(t.id.as_str())) {
            for (t, &h) in tables.iter().zip(content_hashes) {
                report.count(self.add_table(t, h)?);
            }
            return Ok(report);
        }
        let mut jobs: Vec<usize> = Vec::new();
        for i in 0..tables.len() {
            if self.active_content_hash(&tables[i].id)? != Some(content_hashes[i]) {
                jobs.push(i);
            }
        }
        report.unchanged = tables.len() - jobs.len();
        let hasher = self.hasher();
        let max_rows = self.sketch_cfg.max_rows;
        let records = parallel_map(jobs.len(), threads, |j| {
            let ti = jobs[j];
            let sketch = TableSketch::build_with_hasher(&tables[ti], &hasher, max_rows);
            TableRecord::from_sketch(sketch, content_hashes[ti])
        })?;
        for rec in records {
            report.count(self.add_record(&rec)?);
        }
        Ok(report)
    }

    /// The catalog's shared MinHash family (a pure function of the sketch
    /// config, amortized across a whole ingest).
    fn hasher(&self) -> MinHasher {
        MinHasher::new(self.sketch_cfg.minhash_k, self.sketch_cfg.seed)
    }

    /// Make every mutation since the last commit durable. The ordering is
    /// the crash-safety argument:
    ///
    /// 1. fsync each segment written since the last commit, then the
    ///    segment directory (batched: one pass per commit, not one fsync
    ///    per `add_record`);
    /// 2. commit the manifest atomically — this is the single commit
    ///    point: a crash anywhere before the manifest rename leaves the
    ///    previous manifest referencing only previously-durable segments;
    /// 3. only now delete segments no manifest references (best effort —
    ///    a leftover is an orphan `tsfm fsck` sweeps, never data loss).
    ///
    /// After the loose state is durable, a compaction pass runs
    /// automatically when [`Catalog::compaction_due`] says churn has
    /// crossed the threshold — so a bulk ingest folds itself into shards
    /// without anyone calling [`Catalog::compact`].
    pub fn commit(&mut self) -> StoreResult<()> {
        self.commit_inner()?;
        if self.compaction_due() {
            self.compact_inner()?;
        }
        Ok(())
    }

    /// Fold the loose tier and all tombstones into the shard layer now,
    /// regardless of thresholds (the `tsfm compact` verb and the
    /// monolithic→sharded migration path). Loose mutations are committed
    /// first, so a crash mid-compaction loses nothing.
    pub fn compact(&mut self) -> StoreResult<()> {
        self.commit_inner()?;
        self.compact_inner()
    }

    /// Whether [`Catalog::commit`] will run a compaction pass: a
    /// loose-only catalog compacts once it holds
    /// [`shard::AUTO_SHARD_MIN`] tables; a sharded one once loose churn
    /// (updates + tombstones) reaches a quarter of the sharded
    /// population.
    pub fn compaction_due(&self) -> bool {
        if self.shards.is_empty() {
            return self.entries.len() as u64 >= shard::AUTO_SHARD_MIN;
        }
        let sharded: u64 = self.shards.iter().flatten().map(|s| s.meta.entry_count).sum();
        (self.entries.len() + self.tombstones.len()) as u64 * 4 >= sharded.max(1)
    }

    fn commit_inner(&mut self) -> StoreResult<()> {
        if !self.manifest_dirty {
            return Ok(());
        }
        let _g = tsfm_obs::span!("catalog.commit");
        // Every segment written since the last commit must be on disk
        // before the manifest rename acknowledges it. Bulk batches go
        // through the fsync pool (journal batching amortizes the
        // per-file flush; mid-ingest chunks are already in flight there);
        // small commits and fault runs sync serially — cheaper to wake no
        // pool, and deterministic fault-site ordering for the sweeper.
        let use_pool = !durable::fault::armed()
            && (self.pool_used || self.pending_sync.len() > durable::SyncPool::MIN_BATCH);
        if use_pool {
            let pool = self
                .sync_pool
                .get_or_insert_with(|| durable::SyncPool::new(durable::SyncPool::WORKERS));
            for (path, file) in self.pending_sync.drain(..) {
                pool.enqueue(path, file);
            }
            let mut it = pool.drain().into_iter();
            if let Some((path, err)) = it.next() {
                // A failed sync fails the commit before anything is
                // acknowledged; the failed paths fall back onto the
                // queue (handles consumed — retried by path) so a
                // retried commit re-syncs exactly them.
                self.pending_sync.push((path, None));
                self.pending_sync.extend(it.map(|(p, _)| (p, None)));
                return Err(err);
            }
            durable::sync_dir(&self.dir.join(SEGMENT_DIR))?;
        } else {
            for (path, file) in &self.pending_sync {
                durable::sync_pending(path, file.as_ref())?;
            }
            if !self.pending_sync.is_empty() {
                durable::sync_dir(&self.dir.join(SEGMENT_DIR))?;
            }
            self.pending_sync.clear();
        }
        self.pool_used = false;
        self.write_manifest()?;
        self.manifest_dirty = false;
        for path in self.pending_delete.drain(..) {
            let _ = fs::remove_file(path);
        }
        Ok(())
    }

    /// Rewrite dirty shards: fold committed loose segments and tombstones
    /// into the shard layer under a fresh generation. Crash-safety
    /// ordering mirrors `commit`:
    ///
    /// 1. new-generation arena + shard-manifest files are committed one
    ///    by one ([`durable::commit_file`] each) — a crash here leaves
    ///    orphan files the root manifest never mentions (`tsfm fsck`
    ///    sweeps them);
    /// 2. the root manifest flips to the new generation in one atomic
    ///    commit — the single commit point;
    /// 3. only then are old-generation shard files and absorbed loose
    ///    segments unlinked (best effort). Snapshots holding the old
    ///    arenas keep reading them through their open descriptors.
    ///
    /// Only shards touched by churn are rewritten, unless the shard
    /// space itself changes width (then every table re-buckets).
    fn compact_inner(&mut self) -> StoreResult<()> {
        if self.shards.is_empty() && self.entries.is_empty() {
            return Ok(());
        }
        let _g = tsfm_obs::span!("catalog.compact");
        let space = shard::shard_count_for(self.len() as u64) as usize;
        let reshard = space != self.shards.len();
        // Which target shards must be rewritten: all of them on a
        // reshard; otherwise those hit by loose churn — plus quarantine
        // holes, rewritten (possibly empty) so the namespace heals.
        let mut dirty = vec![reshard; space];
        if !reshard {
            for id in self.entries.keys().chain(self.tombstones.iter()) {
                dirty[shard::shard_of(id, space as u32) as usize] = true;
            }
            for (i, s) in self.shards.iter().enumerate() {
                if s.is_none() {
                    dirty[i] = true;
                }
            }
        }
        if !dirty.iter().any(|&d| d) {
            return Ok(());
        }
        let generation =
            self.shards.iter().flatten().map(|s| s.meta.generation).max().unwrap_or(0) + 1;

        // Gather each dirty target shard's new contents as raw TSFMSEG1
        // frame bytes: copied verbatim (CRC-verified) out of old arenas,
        // or read from loose segment files — re-parsed there, so a
        // corrupt segment fails the compaction instead of poisoning a
        // shard.
        let mut buckets: Vec<Vec<(ShardEntry, Vec<u8>)>> = vec![Vec::new(); space];
        for slot in self.shards.iter().flatten() {
            if !reshard && !dirty[slot.meta.index as usize] {
                continue; // clean shard: carried over untouched
            }
            let m = self.slot_manifest(slot)?;
            let arena = self.slot_arena(slot)?;
            for (i, e) in m.entries.iter().enumerate() {
                if self.tombstones.contains(&e.id) || self.entries.contains_key(&e.id) {
                    continue;
                }
                let payload = arena.read_payload(i)?;
                buckets[shard::shard_of(&e.id, space as u32) as usize]
                    .push((e.clone(), payload));
            }
        }
        for (id, le) in &self.entries {
            let path = self.dir.join(SEGMENT_DIR).join(&le.segment);
            let bytes = fs::read(&path)?;
            let rec = ser::read_record(&mut bytes.as_slice()).map_err(|e| {
                durable::note_corruption(e.into_format("TSFMSEG1").with_file(&path, 0))
            })?;
            if rec.content_hash != le.content_hash || rec.table_id() != id {
                return Err(durable::note_corruption(
                    StoreError::corrupt(
                        "TSFMSEG1",
                        format!("segment {} does not match manifest entry for {id:?}", le.segment),
                    )
                    .with_file(&path, 0),
                ));
            }
            let entry = ShardEntry {
                id: id.clone(),
                content_hash: le.content_hash,
                num_rows: le.num_rows,
                num_cols: le.num_cols,
            };
            buckets[shard::shard_of(id, space as u32) as usize].push((entry, bytes));
        }

        // Write every dirty shard's new generation (arena first, then its
        // manifest), collecting the new slot vector as we go.
        let shard_dir = self.shard_dir();
        fs::create_dir_all(&shard_dir)?;
        let mut new_shards: Vec<Option<ShardSlot>> = Vec::with_capacity(space);
        for (idx, bucket) in buckets.iter_mut().enumerate() {
            if !dirty[idx] {
                // Steal the old slot (same index: space unchanged) so its
                // already-loaded manifest/arena caches survive. A hole
                // here is impossible — holes are always marked dirty.
                let Some(slot) = self.shards[idx].take() else {
                    return Err(StoreError::internal("clean shard slot missing in compaction"));
                };
                new_shards.push(Some(slot));
                continue;
            }
            bucket.sort_by(|a, b| a.0.id.cmp(&b.0.id));
            let entries: Vec<ShardEntry> = bucket.iter().map(|(e, _)| e.clone()).collect();
            let payloads: Vec<Vec<u8>> =
                bucket.iter_mut().map(|(_, p)| std::mem::take(p)).collect();
            let arena_bytes = shard::build_arena(idx as u32, generation, &payloads);
            let meta = ShardMeta {
                index: idx as u32,
                generation,
                entry_count: entries.len() as u64,
                total_rows: entries.iter().map(|e| e.num_rows).sum(),
                total_cols: entries.iter().map(|e| u64::from(e.num_cols)).sum(),
                arena_bytes: arena_bytes.len() as u64,
            };
            durable::commit_file(&shard_dir.join(meta.arena_file()), &arena_bytes)?;
            let manifest = ShardManifest {
                index: idx as u32,
                shard_count: space as u32,
                generation,
                entries,
            };
            shard::write_shard_manifest(&shard_dir.join(meta.shard_file()), &manifest)?;
            let slot = ShardSlot::new(meta);
            let _ = slot.manifest.set(Arc::new(manifest));
            new_shards.push(Some(slot));
        }

        // Everything the new root manifest will no longer reference —
        // old-generation shard files and absorbed loose segments —
        // collected before the flip, deleted only after it.
        let mut doomed: Vec<PathBuf> = Vec::new();
        for slot in self.shards.iter().flatten() {
            doomed.push(shard_dir.join(slot.meta.shard_file()));
            doomed.push(shard_dir.join(slot.meta.arena_file()));
        }
        for e in self.entries.values() {
            doomed.push(self.dir.join(SEGMENT_DIR).join(&e.segment));
        }

        // The commit point: flip the root manifest to the new generation.
        let metas: Vec<Option<ShardMeta>> =
            new_shards.iter().map(|s| s.as_ref().map(|s| s.meta.clone())).collect();
        write_manifest_file(
            &self.dir.join(MANIFEST_FILE),
            &self.sketch_cfg,
            &BTreeMap::new(),
            &metas,
            &BTreeSet::new(),
        )?;
        self.entries.clear();
        self.tombstones.clear();
        self.shards = new_shards;
        for path in doomed {
            let _ = fs::remove_file(path);
        }
        // Content-preserving: the merged fingerprint is unchanged, so the
        // index cache stays valid, handed-out snapshots stay correct, and
        // neither the epoch nor the cached snapshot needs to move.
        obs().counter("tsfm_store_compactions_total", "Shard compaction passes completed").inc();
        Ok(())
    }

    pub fn stats(&self) -> CatalogStats {
        let mut segment_bytes: u64 = self
            .entries
            .values()
            .filter_map(|e| {
                fs::metadata(self.dir.join(SEGMENT_DIR).join(&e.segment)).ok().map(|m| m.len())
            })
            .sum();
        let mut columns: u64 = self.entries.values().map(|e| u64::from(e.num_cols)).sum();
        let mut rows: u64 = self.entries.values().map(|e| e.num_rows).sum();
        for slot in self.shards.iter().flatten() {
            columns += slot.meta.total_cols;
            rows += slot.meta.total_rows;
            segment_bytes += slot.meta.arena_bytes;
        }
        // Tombstoned shard entries still occupy arena bytes but are not
        // active rows/columns. Stats stay best-effort (infallible): an
        // unreadable shard manifest just leaves its aggregates in.
        for id in &self.tombstones {
            if let Some(slot) = self.shard_slot(id) {
                if let Ok(m) = self.slot_manifest(slot) {
                    if let Some(i) = m.find(id) {
                        rows = rows.saturating_sub(m.entries[i].num_rows);
                        columns = columns.saturating_sub(u64::from(m.entries[i].num_cols));
                    }
                }
            }
        }
        CatalogStats {
            tables: self.len(),
            columns,
            rows,
            segment_bytes,
            minhash_k: self.sketch_cfg.minhash_k,
            index_cached: self.cached_index_valid(),
            shards: self.shards.len(),
        }
    }

    /// An immutable, `Send + Sync` read snapshot of the current contents:
    /// the query path. The first call after any mutation (or a cold open)
    /// builds the indexes — loading the on-disk cache when its fingerprint
    /// matches — and the result is cached until the next mutation, so
    /// repeated calls are two `Arc` clones.
    pub fn searcher(&mut self) -> StoreResult<Searcher> {
        if self.snapshot.is_none() {
            let t0 = std::time::Instant::now();
            let _g = tsfm_obs::span!("catalog.snapshot");
            let lazy = match self.snapshot_mode {
                SnapshotMode::Eager => false,
                SnapshotMode::Lazy => true,
                SnapshotMode::Auto => {
                    !self.shards.is_empty() && self.len() >= AUTO_LAZY_MIN_TABLES
                }
            };
            let fp = self.fingerprint()?;
            // Cache load failures are swallowed (a rebuild answers the
            // query), but read_index_cache has already counted a corrupt
            // cache in tsfm_store_corruptions_detected_total.
            let cached = {
                let _g = tsfm_obs::span!("catalog.index_cache.load");
                read_index_cache(&self.dir.join(INDEX_FILE))
                    .ok()
                    .filter(|&(cached_fp, ..)| cached_fp == fp)
            };
            // `load_all_records` (and `load_loose_records`) walk manifest
            // BTreeMaps, so records arrive in ascending-id order — exactly
            // the engine's canonical order — letting the sketches double
            // as the searcher's id-addressable corpus.
            let (engine, records) = match cached {
                // Record-free fast path: a lazy snapshot whose cache
                // carries the engine-meta section reconstructs the engine
                // without reading a single sharded sketch payload, so
                // open-to-queryable work is O(loose + shards), not
                // O(tables).
                Some((_, join, union, Some(meta))) if lazy => {
                    match QueryEngine::from_meta(meta, self.sketch_cfg.minhash_k, join, union) {
                        Ok(e) => {
                            Self::count_cache_hit();
                            (e, self.load_loose_records()?)
                        }
                        Err(_) => {
                            let records = self.load_all_records()?;
                            let e = self.rebuild_engine(&records, fp);
                            (e, records)
                        }
                    }
                }
                // Eager snapshot, or a pre-meta cache: the graphs are
                // still reusable, validated against the loaded records.
                Some((_, join, union, meta)) => {
                    let records = self.load_all_records()?;
                    match QueryEngine::with_graphs(
                        &records,
                        self.sketch_cfg.minhash_k,
                        join,
                        union,
                    ) {
                        Ok(e) => {
                            Self::count_cache_hit();
                            if lazy && meta.is_none() {
                                // Upgrade a pre-meta cache in place so the
                                // next lazy open takes the record-free
                                // path (same fingerprint — still valid).
                                let _ = self.write_index_cache(&records, &e, fp);
                            }
                            (e, records)
                        }
                        Err(_) => {
                            let e = self.rebuild_engine(&records, fp);
                            (e, records)
                        }
                    }
                }
                None => {
                    let records = self.load_all_records()?;
                    let e = self.rebuild_engine(&records, fp);
                    (e, records)
                }
            };
            obs()
                .histogram("tsfm_catalog_snapshot_build_us", "Snapshot (re)build latency")
                .record(t0.elapsed().as_micros() as u64);
            self.snapshot = Some(if lazy {
                // Keep only loose sketches in memory (they have no arena
                // home); shard-resident ones are dropped here and
                // re-loaded on demand by positioned arena read.
                let loose: Vec<Arc<TableSketch>> = records
                    .into_iter()
                    .filter(|r| self.entries.contains_key(r.table_id()))
                    .map(|r| Arc::new(r.sketch))
                    .collect();
                let mut lazy_shards = Vec::with_capacity(self.shards.len());
                for slot in &self.shards {
                    lazy_shards.push(match slot {
                        Some(s) => {
                            let m = self.slot_manifest(s)?;
                            let arena = self.slot_arena(s)?;
                            let entries: Vec<(String, u32)> = m
                                .entries
                                .iter()
                                .enumerate()
                                .filter(|(_, e)| {
                                    !self.tombstones.contains(&e.id)
                                        && !self.entries.contains_key(&e.id)
                                })
                                .map(|(i, e)| (e.id.clone(), i as u32))
                                .collect();
                            Some(shard::LazyShard { arena, entries })
                        }
                        None => None,
                    });
                }
                let corpus = shard::LazyCorpus::new(
                    self.shards.len() as u32,
                    lazy_shards,
                    loose,
                    shard::SKETCH_CACHE_CAP,
                );
                Searcher::lazy(
                    Arc::new(engine),
                    Arc::new(corpus),
                    self.sketch_cfg.clone(),
                    self.epoch,
                )
            } else {
                let sketches: Vec<Arc<TableSketch>> =
                    records.into_iter().map(|r| Arc::new(r.sketch)).collect();
                Searcher::eager(
                    Arc::new(engine),
                    Arc::new(sketches),
                    self.sketch_cfg.clone(),
                    self.epoch,
                )
            });
        }
        self.snapshot
            .as_ref()
            .cloned()
            .ok_or_else(|| StoreError::internal("snapshot missing right after build"))
    }

    /// Choose how future snapshots materialize the corpus (see
    /// [`SnapshotMode`]). Drops the cached snapshot — contents are
    /// unchanged, so the epoch does not move — and the next
    /// [`Catalog::searcher`] call rebuilds in the new mode. Snapshots
    /// already handed out are unaffected.
    pub fn set_snapshot_mode(&mut self, mode: SnapshotMode) {
        if self.snapshot_mode != mode {
            self.snapshot_mode = mode;
            self.snapshot = None;
        }
    }

    /// The query engine over the current contents, building (or loading
    /// from the index cache) on first use after a mutation. Prefer
    /// [`Catalog::searcher`], which hands out an owned shareable snapshot.
    pub fn engine(&mut self) -> StoreResult<&QueryEngine> {
        self.searcher()?;
        self.snapshot
            .as_ref()
            .map(Searcher::engine)
            .ok_or_else(|| StoreError::internal("snapshot missing right after build"))
    }

    /// Load only the loose tier's records (ascending id order) — the part
    /// of the corpus with no arena home. The lazy-open fast path builds
    /// its in-memory corpus from exactly this.
    fn load_loose_records(&self) -> StoreResult<Vec<TableRecord>> {
        let mut out = Vec::with_capacity(self.entries.len());
        for id in self.entries.keys() {
            out.push(self.get(id)?.ok_or_else(|| {
                StoreError::corrupt(
                    "TSFMCAT1",
                    format!("manifest entry {id:?} has no segment on disk"),
                )
            })?);
        }
        Ok(out)
    }

    /// Load every active record (ascending id order), across both tiers.
    pub fn load_all_records(&self) -> StoreResult<Vec<TableRecord>> {
        let _g = tsfm_obs::span!("catalog.load_records");
        let mut out = self.load_loose_records()?;
        out.reserve(self.len().saturating_sub(out.len()));
        for slot in self.shards.iter().flatten() {
            let m = self.slot_manifest(slot)?;
            let arena = self.slot_arena(slot)?;
            for (i, e) in m.entries.iter().enumerate() {
                if self.tombstones.contains(&e.id) || self.entries.contains_key(&e.id) {
                    continue;
                }
                let rec = arena.read_record(i)?;
                if rec.content_hash != e.content_hash || rec.table_id() != e.id {
                    return Err(durable::note_corruption(
                        StoreError::corrupt(
                            "TSFMARN1",
                            format!(
                                "arena slot {i} of shard {} does not match its manifest \
                                 entry for {:?}",
                                slot.meta.index, e.id
                            ),
                        )
                        .with_file(arena.path(), arena.slots.get(i).map_or(0, |s| s.offset)),
                    ));
                }
                out.push(rec);
            }
        }
        out.sort_by(|a, b| a.table_id().cmp(b.table_id()));
        Ok(out)
    }

    fn invalidate(&mut self) {
        self.snapshot = None;
        self.epoch += 1;
        self.manifest_dirty = true;
    }

    /// Fingerprint of the catalog contents + sketch config; the index
    /// cache is valid only while this matches. Computed over the merged
    /// *active* `(id, content_hash)` set in ascending id order, whichever
    /// tier holds each table — so a compaction (which moves tables
    /// between tiers without changing contents) leaves it unchanged and
    /// the index cache stays warm across it.
    fn fingerprint(&self) -> StoreResult<u64> {
        if self.shards.is_empty() {
            return Ok(manifest_fingerprint(&self.sketch_cfg, &self.entries));
        }
        let mut pairs: Vec<(&str, u64)> =
            self.entries.iter().map(|(id, e)| (id.as_str(), e.content_hash)).collect();
        let mut shard_manifests = Vec::new();
        for slot in self.shards.iter().flatten() {
            shard_manifests.push(self.slot_manifest(slot)?);
        }
        for m in &shard_manifests {
            for e in &m.entries {
                if !self.tombstones.contains(&e.id) && !self.entries.contains_key(&e.id) {
                    pairs.push((e.id.as_str(), e.content_hash));
                }
            }
        }
        pairs.sort_unstable();
        Ok(fingerprint_pairs(&self.sketch_cfg, pairs.into_iter()))
    }

    fn cached_index_valid(&self) -> bool {
        match (peek_index_fingerprint(&self.dir.join(INDEX_FILE)), self.fingerprint()) {
            (Some(on_disk), Ok(want)) => on_disk == want,
            _ => false,
        }
    }

    fn count_cache_hit() {
        obs()
            .counter(
                "tsfm_catalog_index_cache_hits_total",
                "Snapshots served from the on-disk HNSW cache",
            )
            .inc();
    }

    /// Build the engine from records and refresh the on-disk cache — the
    /// path taken when no usable cache exists (or one failed validation).
    fn rebuild_engine(&self, records: &[TableRecord], fp: u64) -> QueryEngine {
        obs()
            .counter(
                "tsfm_catalog_index_rebuilds_total",
                "Snapshots that rebuilt the HNSW graphs from records",
            )
            .inc();
        let e = QueryEngine::build(records, self.sketch_cfg.minhash_k, self.hnsw_cfg.clone());
        // The cache is an optimization: a read-only filesystem must not
        // make an in-memory engine unqueryable.
        let _ = self.write_index_cache(records, &e, fp);
        e
    }

    fn write_index_cache(
        &self,
        records: &[TableRecord],
        engine: &QueryEngine,
        fp: u64,
    ) -> StoreResult<()> {
        let _g = tsfm_obs::span!("catalog.index_cache.write");
        let mut body = Vec::new();
        ser::write_u64(&mut body, fp)?;
        ser::write_hnsw(&mut body, engine.join_index())?;
        ser::write_hnsw(&mut body, engine.union_index())?;
        write_engine_meta(&mut body, &table_metas(records))?;
        let mut file = Vec::with_capacity(body.len() + 24);
        ser::write_frame(&mut file, INDEX_MAGIC, &body)?;
        durable::commit_file(&self.dir.join(INDEX_FILE), &file)
    }

    fn write_manifest(&self) -> StoreResult<()> {
        let metas: Vec<Option<ShardMeta>> =
            self.shards.iter().map(|s| s.as_ref().map(|s| s.meta.clone())).collect();
        write_manifest_file(
            &self.dir.join(MANIFEST_FILE),
            &self.sketch_cfg,
            &self.entries,
            &metas,
            &self.tombstones,
        )
    }
}

/// Fingerprint of a loose-only manifest's contents + sketch config (what
/// the index cache is keyed on). A free function so `fsck` can compute
/// the expected fingerprint without a `Catalog`.
pub(crate) fn manifest_fingerprint(
    cfg: &SketchConfig,
    entries: &BTreeMap<String, ManifestEntry>,
) -> u64 {
    fingerprint_pairs(cfg, entries.iter().map(|(id, e)| (id.as_str(), e.content_hash)))
}

/// The fingerprint chain over ascending-id `(id, content_hash)` pairs —
/// tier-agnostic, so a loose-only catalog and its compacted twin agree.
pub(crate) fn fingerprint_pairs<'a>(
    cfg: &SketchConfig,
    pairs: impl Iterator<Item = (&'a str, u64)>,
) -> u64 {
    let mut acc = splitmix64(cfg.minhash_k as u64 ^ cfg.seed);
    acc = splitmix64(acc ^ cfg.max_rows as u64);
    for (id, content_hash) in pairs {
        acc = splitmix64(acc ^ hash_str(id));
        acc = splitmix64(acc ^ content_hash);
    }
    acc
}

/// Read just the fingerprint out of an index cache file — header +
/// 8 bytes, **without** checksum verification (used by `stats`, where
/// reading whole graphs to answer a validity bit would defeat the
/// cache). `None` for a missing, unreadable, or visibly corrupt header.
pub(crate) fn peek_index_fingerprint(path: &Path) -> Option<u64> {
    let mut r = BufReader::new(File::open(path).ok()?);
    ser::read_frame_header(&mut r, INDEX_MAGIC, "TSFM index cache").ok()?;
    ser::read_u64(&mut r).ok()
}

/// Read and fully verify an index cache file: fingerprint, the join and
/// union HNSW graphs, and — when present — the trailing engine-meta
/// section (`None` for caches written before it existed; the catalog
/// falls back to validating the graphs against loaded records).
/// Corruption comes back as a typed [`StoreError::Corrupt`] naming the
/// file and offset. Public so `fsck` and the corruption tests can drive
/// verification directly (the catalog itself swallows cache errors and
/// rebuilds).
#[allow(clippy::type_complexity)]
pub fn read_index_cache(path: &Path) -> StoreResult<(u64, Hnsw, Hnsw, Option<Vec<TableMeta>>)> {
    durable::read_file_checked(path, |r| {
        let res = match ser::read_frame(r, INDEX_MAGIC, "TSFM index cache") {
            Ok(ser::Payload::Legacy) => {
                // v1 caches predate the meta section.
                let fp = ser::read_u64(r)?;
                let join = ser::read_hnsw(r)?;
                let union = ser::read_hnsw(r)?;
                Ok((fp, join, union, None))
            }
            Ok(ser::Payload::Framed(body)) => ser::parse_framed(&body, |s| {
                let fp = ser::read_u64(s)?;
                let join = ser::read_hnsw(s)?;
                let union = ser::read_hnsw(s)?;
                let meta = if s.is_empty() { None } else { Some(read_engine_meta(s)?) };
                Ok((fp, join, union, meta))
            }),
            Err(e) => Err(e),
        };
        res.map_err(|e| e.into_format("TSFMIDX1"))
    })
}

/// Version tag opening the index cache's trailing engine-meta section.
const ENGINE_META_TAG: u8 = 1;

/// Append the engine-meta section: per table (canonical order), what
/// [`QueryEngine::from_meta`] needs to reassemble the engine without
/// records. Presence is signalled purely by trailing bytes — a cache
/// without it still parses, so pre-section caches stay readable.
fn write_engine_meta(w: &mut Vec<u8>, metas: &[TableMeta]) -> StoreResult<()> {
    ser::write_u8(w, ENGINE_META_TAG)?;
    ser::write_u64(w, metas.len() as u64)?;
    for m in metas {
        ser::write_str(w, &m.table_id)?;
        ser::write_minhash(w, &m.content_snapshot)?;
        ser::write_u32(w, m.column_names.len() as u32)?;
        for name in &m.column_names {
            ser::write_str(w, name)?;
        }
    }
    Ok(())
}

fn read_engine_meta(s: &mut &[u8]) -> StoreResult<Vec<TableMeta>> {
    match ser::read_u8(s)? {
        ENGINE_META_TAG => {}
        t => return Err(ser::bad(format!("unknown engine-meta section tag {t}"))),
    }
    let n = ser::read_u64(s)?;
    // The payload CRC has already been verified, so `n` is what the
    // writer put there — but bound it anyway (and grow the vec
    // geometrically rather than trusting it for one big allocation).
    if n > (1 << 40) {
        return Err(ser::bad(format!("unreasonable engine-meta table count {n}")));
    }
    let mut out = Vec::new();
    for _ in 0..n {
        let table_id = ser::read_str(s)?;
        let content_snapshot = ser::read_minhash(s)?;
        let ncols = ser::read_u32(s)?;
        let mut column_names = Vec::new();
        for _ in 0..ncols {
            column_names.push(ser::read_str(s)?);
        }
        out.push(TableMeta { table_id, content_snapshot, column_names });
    }
    Ok(out)
}

/// Serialize and durably commit a manifest. Shared by [`Catalog::commit`]
/// and fsck's repair path (which writes a pruned manifest without a live
/// catalog).
///
/// The shard section (space width, present shard metas, tombstones)
/// trails the loose entries and is written only when a shard layer
/// exists — a loose-only catalog's manifest stays byte-identical to
/// every pre-shard release, so old fixtures (and their index-cache
/// fingerprints) remain valid.
pub(crate) fn write_manifest_file(
    path: &Path,
    cfg: &SketchConfig,
    entries: &BTreeMap<String, ManifestEntry>,
    shards: &[Option<ShardMeta>],
    tombstones: &BTreeSet<String>,
) -> StoreResult<()> {
    let mut body = Vec::new();
    ser::write_u32(&mut body, cfg.minhash_k as u32)?;
    ser::write_u64(&mut body, cfg.max_rows as u64)?;
    ser::write_u64(&mut body, cfg.seed)?;
    ser::write_u32(&mut body, entries.len() as u32)?;
    for (id, e) in entries {
        ser::write_str(&mut body, id)?;
        ser::write_str(&mut body, &e.segment)?;
        ser::write_u64(&mut body, e.content_hash)?;
        ser::write_u64(&mut body, e.num_rows)?;
        ser::write_u32(&mut body, e.num_cols)?;
    }
    if !shards.is_empty() {
        ser::write_u32(&mut body, shards.len() as u32)?;
        let present: Vec<&ShardMeta> = shards.iter().flatten().collect();
        ser::write_u32(&mut body, present.len() as u32)?;
        for m in present {
            ser::write_u32(&mut body, m.index)?;
            ser::write_u64(&mut body, m.generation)?;
            ser::write_u64(&mut body, m.entry_count)?;
            ser::write_u64(&mut body, m.total_rows)?;
            ser::write_u64(&mut body, m.total_cols)?;
            ser::write_u64(&mut body, m.arena_bytes)?;
        }
        ser::write_u32(&mut body, tombstones.len() as u32)?;
        for id in tombstones {
            ser::write_str(&mut body, id)?;
        }
    }
    let mut file = Vec::with_capacity(body.len() + 24);
    ser::write_frame(&mut file, MANIFEST_MAGIC, &body)?;
    durable::commit_file(path, &file)
}

impl Drop for Catalog {
    fn drop(&mut self) {
        // Best-effort durability for callers that forget to commit.
        let _ = self.commit();
    }
}

pub(crate) type ManifestContents =
    (SketchConfig, BTreeMap<String, ManifestEntry>, Vec<Option<ShardMeta>>, BTreeSet<String>);

pub(crate) fn read_manifest(path: &Path) -> StoreResult<ManifestContents> {
    durable::read_file_checked(path, |r| {
        let res = match ser::read_frame(r, MANIFEST_MAGIC, "TSFM catalog manifest") {
            // v1 manifests predate the shard layer.
            Ok(ser::Payload::Legacy) => {
                let (cfg, entries) = read_manifest_body(r)?;
                Ok((cfg, entries, Vec::new(), BTreeSet::new()))
            }
            Ok(ser::Payload::Framed(body)) => ser::parse_framed(&body, |s| {
                let (cfg, entries) = read_manifest_body(s)?;
                // The shard section is optional: absent means loose-only
                // (and `parse_framed` still rejects trailing garbage).
                let (metas, tombstones) =
                    if s.is_empty() { (Vec::new(), BTreeSet::new()) } else { read_shard_section(s)? };
                Ok((cfg, entries, metas, tombstones))
            }),
            Err(e) => Err(e),
        };
        res.map_err(|e| e.into_format("TSFMCAT1"))
    })
}

fn read_shard_section(
    r: &mut &[u8],
) -> StoreResult<(Vec<Option<ShardMeta>>, BTreeSet<String>)> {
    let space = ser::read_u32(r)? as usize;
    if space == 0 || space as u64 > shard::MAX_SHARDS || !space.is_power_of_two() {
        return Err(StoreError::corrupt("TSFMCAT1", format!("implausible shard space {space}")));
    }
    let present = ser::read_u32(r)? as usize;
    if present > space {
        return Err(StoreError::corrupt(
            "TSFMCAT1",
            format!("{present} shards present in a space of {space}"),
        ));
    }
    let mut metas: Vec<Option<ShardMeta>> = vec![None; space];
    for _ in 0..present {
        let index = ser::read_u32(r)?;
        if index as usize >= space || metas[index as usize].is_some() {
            return Err(StoreError::corrupt(
                "TSFMCAT1",
                format!("shard index {index} out of range or duplicated (space {space})"),
            ));
        }
        metas[index as usize] = Some(ShardMeta {
            index,
            generation: ser::read_u64(r)?,
            entry_count: ser::read_u64(r)?,
            total_rows: ser::read_u64(r)?,
            total_cols: ser::read_u64(r)?,
            arena_bytes: ser::read_u64(r)?,
        });
    }
    let tomb_count = ser::read_u32(r)? as usize;
    if tomb_count > 1 << 24 {
        return Err(StoreError::corrupt(
            "TSFMCAT1",
            format!("unreasonable tombstone count {tomb_count}"),
        ));
    }
    let mut tombstones = BTreeSet::new();
    for _ in 0..tomb_count {
        tombstones.insert(ser::read_str(r)?);
    }
    Ok((metas, tombstones))
}

fn read_manifest_body<R: std::io::Read>(
    r: &mut R,
) -> StoreResult<(SketchConfig, BTreeMap<String, ManifestEntry>)> {
    let cfg = SketchConfig {
        minhash_k: ser::read_u32(r)? as usize,
        max_rows: ser::read_u64(r)? as usize,
        seed: ser::read_u64(r)?,
    };
    let count = ser::read_u32(r)? as usize;
    if count > 1 << 24 {
        return Err(StoreError::corrupt("TSFMCAT1", format!("unreasonable table count {count}")));
    }
    let mut entries = BTreeMap::new();
    for _ in 0..count {
        let id = ser::read_str(r)?;
        let segment = ser::read_str(r)?;
        if segment.contains('/') || segment.contains("..") {
            return Err(StoreError::corrupt(
                "TSFMCAT1",
                format!("suspicious segment path {segment:?}"),
            ));
        }
        let entry = ManifestEntry {
            segment,
            content_hash: ser::read_u64(r)?,
            num_rows: ser::read_u64(r)?,
            num_cols: ser::read_u32(r)?,
        };
        entries.insert(id, entry);
    }
    Ok((cfg, entries))
}

/// Segment file name: sanitized table id, the id's own hash (distinct ids
/// may sanitize/truncate to the same prefix), and the content hash (so an
/// update never overwrites the segment a reader might be loading).
fn segment_name(id: &str, content_hash: u64) -> String {
    let sane: String = id
        .chars()
        .take(64)
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    format!("{sane}-{:08x}-{content_hash:016x}.seg", hash_str(id) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryMode;
    use crate::request::DiscoveryRequest;
    use std::sync::atomic::AtomicU64;
    use tsfm_table::{Column, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("tsfm_store_{tag}_{}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table(id: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(id, id);
        t.push_column(Column::new("v", vals.iter().map(|&v| Value::Int(v)).collect()));
        t
    }

    fn join_req(k: usize) -> DiscoveryRequest {
        DiscoveryRequest::builder(QueryMode::Join).k(k).build().unwrap()
    }

    #[test]
    fn open_add_reopen_get() {
        let dir = tmp_dir("reopen");
        {
            let mut cat = Catalog::open(&dir).unwrap();
            assert_eq!(cat.add_table(&table("t1", &[1, 2, 3]), 99).unwrap(), IngestOutcome::Added);
            cat.commit().unwrap();
        }
        let cat = Catalog::open(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        let rec = cat.get("t1").unwrap().expect("persisted");
        assert_eq!(rec.content_hash, 99);
        assert_eq!(rec.sketch.columns.len(), 1);
        assert!(cat.get("missing").unwrap().is_none());
        assert!(matches!(cat.record("missing"), Err(StoreError::UnknownTable(id)) if id == "missing"));
    }

    #[test]
    fn unchanged_content_is_noop_changed_is_update() {
        let dir = tmp_dir("incr");
        let mut cat = Catalog::open(&dir).unwrap();
        assert_eq!(cat.add_table(&table("t", &[1]), 5).unwrap(), IngestOutcome::Added);
        assert_eq!(cat.add_table(&table("t", &[1]), 5).unwrap(), IngestOutcome::Unchanged);
        assert_eq!(cat.add_table(&table("t", &[1, 2]), 6).unwrap(), IngestOutcome::Updated);
        assert_eq!(cat.len(), 1);
        // The replaced segment outlives the update until the manifest
        // that dropped it commits; after commit exactly one remains.
        cat.commit().unwrap();
        let n = fs::read_dir(dir.join(SEGMENT_DIR))
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().path().extension().is_some_and(|x| x == "seg")
            })
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn colliding_sanitized_ids_keep_distinct_segments() {
        // "a b" and "a_b" sanitize to the same prefix, and identical
        // contents give identical content hashes — the id hash in the
        // segment name must keep the files apart.
        let dir = tmp_dir("collide");
        let mut cat = Catalog::open(&dir).unwrap();
        cat.add_table(&table("a b", &[1, 2]), 7).unwrap();
        cat.add_table(&table("a_b", &[1, 2]), 7).unwrap();
        assert_eq!(cat.len(), 2);
        let ra = cat.get("a b").unwrap().expect("first id intact");
        let rb = cat.get("a_b").unwrap().expect("second id intact");
        assert_eq!(ra.table_id(), "a b");
        assert_eq!(rb.table_id(), "a_b");
        assert!(cat.load_all_records().unwrap().len() == 2);
    }

    #[test]
    fn remove_deletes_segment() {
        let dir = tmp_dir("rm");
        let mut cat = Catalog::open(&dir).unwrap();
        cat.add_table(&table("t", &[1]), 5).unwrap();
        assert!(cat.remove("t").unwrap());
        assert!(!cat.remove("t").unwrap());
        assert_eq!(cat.len(), 0);
        // The segment file survives until the removal is committed —
        // until then the on-disk manifest still references it.
        assert_eq!(fs::read_dir(dir.join(SEGMENT_DIR)).unwrap().count(), 1);
        cat.commit().unwrap();
        assert_eq!(fs::read_dir(dir.join(SEGMENT_DIR)).unwrap().count(), 0);
    }

    #[test]
    fn index_cache_written_and_reused() {
        let dir = tmp_dir("cache");
        let mut cat = Catalog::open(&dir).unwrap();
        for i in 0..5 {
            cat.add_table(&table(&format!("t{i}"), &[i, i + 1, i + 2]), i as u64).unwrap();
        }
        assert!(!cat.stats().index_cached, "no cache before the first snapshot");
        let hits =
            cat.searcher().unwrap().search_table(&table("q", &[1, 2, 3]), &join_req(3)).unwrap().hits;
        assert!(!hits.is_empty());
        cat.commit().unwrap();
        assert!(cat.stats().index_cached, "first snapshot persists the index");
        drop(cat);

        // Reopen: the cache fingerprint still matches, and queries agree.
        let mut cat2 = Catalog::open(&dir).unwrap();
        assert!(cat2.stats().index_cached);
        assert_eq!(
            cat2.searcher()
                .unwrap()
                .search_table(&table("q", &[1, 2, 3]), &join_req(3))
                .unwrap()
                .hits,
            hits
        );

        // A mutation invalidates the fingerprint and the cached snapshot.
        let before = cat2.epoch();
        cat2.add_table(&table("t9", &[7]), 70).unwrap();
        assert_eq!(cat2.epoch(), before + 1);
        assert!(!cat2.stats().index_cached);
        let rebuilt = cat2.searcher().unwrap();
        assert_eq!(rebuilt.epoch(), cat2.epoch());
        assert_eq!(rebuilt.len(), 6);
        assert!(cat2.stats().index_cached, "rebuilt cache covers the new contents");
    }

    #[test]
    fn searcher_snapshot_survives_mutation() {
        let dir = tmp_dir("snapshot");
        let mut cat = Catalog::open(&dir).unwrap();
        for i in 0..4 {
            cat.add_table(&table(&format!("t{i}"), &[i, i + 1]), i as u64).unwrap();
        }
        let old = cat.searcher().unwrap();
        assert_eq!(old.len(), 4);
        // Mutate: the old snapshot keeps answering from its generation.
        cat.remove("t0").unwrap();
        assert_eq!(old.len(), 4, "handed-out snapshots are immutable");
        assert!(old.sketch_of("t0").is_ok());
        let fresh = cat.searcher().unwrap();
        assert_eq!(fresh.len(), 3);
        assert!(matches!(fresh.sketch_of("t0"), Err(StoreError::UnknownTable(_))));
        assert!(fresh.epoch() > old.epoch());
    }

    #[test]
    fn refuses_mismatched_sketch_config() {
        let dir = tmp_dir("cfg");
        drop(Catalog::open(&dir).unwrap());
        let other = SketchConfig { minhash_k: 64, ..SketchConfig::default() };
        let Err(err) = Catalog::open_with(&dir, other) else {
            panic!("must refuse a mismatched sketch config")
        };
        assert!(matches!(err, StoreError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error_not_a_panic() {
        let dir = tmp_dir("corrupt");
        drop(Catalog::open(&dir).unwrap());
        fs::write(dir.join(MANIFEST_FILE), b"TSFMCAT1garbage").unwrap();
        let Err(err) = Catalog::open(&dir) else { panic!("garbage manifest must not open") };
        assert!(
            matches!(&err, StoreError::Corrupt { format, .. } if format == "TSFMCAT1"),
            "{err}"
        );
        fs::write(dir.join(MANIFEST_FILE), b"NOTAMAGIC").unwrap();
        assert!(Catalog::open(&dir).is_err());
    }

    #[test]
    fn ingest_dir_incremental() {
        let dir = tmp_dir("ingest");
        let data = tmp_dir("ingest_data");
        fs::create_dir_all(&data).unwrap();
        fs::write(data.join("a.csv"), "x,y\n1,2\n3,4\n").unwrap();
        fs::write(data.join("b.csv"), "name\nann\nbob\n").unwrap();
        fs::write(data.join("ignored.txt"), "not a csv").unwrap();

        let mut cat = Catalog::open(&dir).unwrap();
        let r1 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r1.added, r1.updated, r1.unchanged), (2, 0, 0));

        let r2 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r2.added, r2.updated, r2.unchanged), (0, 0, 2), "re-ingest is a no-op");
        assert_eq!(r2.sketched(), 0);

        fs::write(data.join("c.csv"), "z\n9\n").unwrap();
        let r3 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r3.added, r3.updated, r3.unchanged), (1, 0, 2), "one new file, one sketch");

        fs::write(data.join("a.csv"), "x,y\n1,2\n3,4\n5,6\n").unwrap();
        let r4 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r4.added, r4.updated, r4.unchanged), (0, 1, 2), "changed file re-sketched");

        let stats = cat.stats();
        assert_eq!(stats.tables, 3);
        assert!(stats.segment_bytes > 0);

        // A fresh catalog ingesting the same directory over an explicit
        // worker pool ends up with identical entries.
        let dir2 = tmp_dir("ingest_par");
        let mut cat2 = Catalog::open(&dir2).unwrap();
        let rp = cat2.ingest_dir_with_threads(&data, 4).unwrap();
        assert_eq!((rp.added, rp.updated, rp.unchanged), (3, 0, 0));
        assert_eq!(cat.entries, cat2.entries);
    }

    /// The parallel ingest pool must be invisible: any thread count
    /// produces the same report, the same manifest and segment set, and a
    /// catalog whose every query answer matches a serial ingest.
    #[test]
    fn parallel_ingest_matches_serial() {
        let tables: Vec<Table> = (0..12)
            .map(|i| table(&format!("t{i:02}"), &[i, i * 3 % 7, i + 1, 40 - i]))
            .collect();
        let hashes: Vec<u64> = (0..12).map(|i| 1000 + i as u64).collect();

        let serial_dir = tmp_dir("par_serial");
        let mut serial = Catalog::open(&serial_dir).unwrap();
        let sr = serial.ingest_tables(&tables, &hashes, 1).unwrap();
        assert_eq!((sr.added, sr.updated, sr.unchanged), (12, 0, 0));

        let par_dir = tmp_dir("par_pool");
        let mut par = Catalog::open(&par_dir).unwrap();
        let pr = par.ingest_tables(&tables, &hashes, 4).unwrap();
        assert_eq!(sr, pr, "report differs between thread counts");

        // Same manifest entries (segment names are content-addressed, so
        // equality covers the file set) and same persisted records.
        assert_eq!(serial.entries, par.entries);
        for id in serial.table_ids().unwrap() {
            let a = serial.record(&id).unwrap();
            let b = par.record(&id).unwrap();
            assert_eq!(a.sketch.content_snapshot, b.sketch.content_snapshot, "{id}");
            assert_eq!(a.content_hash, b.content_hash);
        }
        let q = table("q", &[1, 2, 3]);
        assert_eq!(
            serial.searcher().unwrap().search_table(&q, &join_req(5)).unwrap().hits,
            par.searcher().unwrap().search_table(&q, &join_req(5)).unwrap().hits,
        );

        // Incremental semantics survive the pool: re-ingest is a no-op,
        // a changed hash is an update.
        let again = par.ingest_tables(&tables, &hashes, 4).unwrap();
        assert_eq!((again.added, again.updated, again.unchanged), (0, 0, 12));
        let mut new_hashes = hashes.clone();
        new_hashes[3] = 9999;
        let third = par.ingest_tables(&tables, &new_hashes, 4).unwrap();
        assert_eq!((third.added, third.updated, third.unchanged), (0, 1, 11));
    }

    /// Duplicate ids within one batch fall back to exact serial
    /// `add_table` semantics (last write wins, outcomes counted in order).
    #[test]
    fn ingest_tables_with_duplicate_ids() {
        let dir = tmp_dir("par_dup");
        let mut cat = Catalog::open(&dir).unwrap();
        let tables =
            vec![table("t", &[1]), table("t", &[1, 2]), table("t", &[1, 2])];
        let r = cat.ingest_tables(&tables, &[5, 6, 6], 4).unwrap();
        assert_eq!((r.added, r.updated, r.unchanged), (1, 1, 1));
        assert_eq!(cat.record("t").unwrap().content_hash, 6);
    }
}
