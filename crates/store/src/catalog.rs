//! The persistent discovery catalog.
//!
//! On-disk layout under the catalog directory:
//!
//! ```text
//! <dir>/catalog.manifest   TSFMCAT1: sketch config + table id → entry map
//! <dir>/segments/<f>.seg   TSFMSEG1: one TableRecord per file
//! <dir>/index.cache        TSFMIDX1: fingerprint + join/union HNSW graphs
//! ```
//!
//! Mutations (`add_table`, `add_record`, `remove`) update segment files
//! immediately and the in-memory manifest; [`Catalog::commit`] writes the
//! manifest atomically (also called on drop, best effort).
//!
//! Reads are split from writes: [`Catalog::searcher`] returns a
//! [`Searcher`] — an immutable `Arc`-shared snapshot of the query engine
//! that is `Send + Sync` — so queries never hold `&mut Catalog`. Every
//! mutation bumps the catalog [`Catalog::epoch`] and drops the cached
//! snapshot; the next `searcher()` call rebuilds it (loading the on-disk
//! HNSW cache when the manifest fingerprint matches, so a cold reopen of
//! an unchanged catalog skips graph construction entirely). Snapshots
//! already handed out keep serving their generation.
//!
//! Incremental ingest: every record stores the stable hash of its source
//! bytes. [`Catalog::ingest_dir`] hashes each CSV *before* parsing and
//! skips unchanged files without sketching them, so re-ingesting an
//! unchanged directory touches nothing and adding one file re-sketches
//! exactly one table.

use crate::engine::{QueryEngine, QueryMode, TableHit};
use crate::error::{StoreError, StoreResult};
use crate::record::TableRecord;
use crate::request::DiscoveryRequest;
use crate::searcher::Searcher;
use crate::ser;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tsfm_search::HnswConfig;
use tsfm_sketch::{SketchConfig, TableSketch};
use tsfm_table::hash::{hash_str, splitmix64};
use tsfm_table::{csv, Table};

const MANIFEST_MAGIC: &[u8; 8] = b"TSFMCAT1";
const INDEX_MAGIC: &[u8; 8] = b"TSFMIDX1";
const MANIFEST_FILE: &str = "catalog.manifest";
const INDEX_FILE: &str = "index.cache";
const SEGMENT_DIR: &str = "segments";

/// Manifest entry for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub content_hash: u64,
    /// Segment file name under `segments/`.
    pub segment: String,
    pub num_rows: u64,
    pub num_cols: u32,
}

/// What happened to one table during ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// New table id: sketched and stored.
    Added,
    /// Known id whose content hash changed: re-sketched and replaced.
    Updated,
    /// Known id with identical content hash: nothing done.
    Unchanged,
}

/// Summary of a directory ingest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    pub added: usize,
    pub updated: usize,
    pub unchanged: usize,
    /// `(file name, error)` for sources that could not be read or parsed.
    pub failed: Vec<(String, String)>,
}

impl IngestReport {
    /// Number of tables actually (re-)sketched.
    pub fn sketched(&self) -> usize {
        self.added + self.updated
    }
}

/// Aggregate catalog statistics (the `tsfm stats` output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogStats {
    pub tables: usize,
    pub columns: u64,
    pub rows: u64,
    pub segment_bytes: u64,
    pub minhash_k: usize,
    /// Whether a valid on-disk index cache exists for the current contents.
    pub index_cached: bool,
}

/// A persistent, incrementally-updatable table catalog.
pub struct Catalog {
    dir: PathBuf,
    sketch_cfg: SketchConfig,
    hnsw_cfg: HnswConfig,
    entries: BTreeMap<String, ManifestEntry>,
    /// Cached read snapshot for the current epoch; dropped on mutation.
    snapshot: Option<Searcher>,
    /// Bumped by every mutation; snapshots carry the epoch they captured.
    epoch: u64,
    manifest_dirty: bool,
}

impl Catalog {
    /// Open a catalog directory, creating an empty catalog (with the
    /// default [`SketchConfig`]) if none exists yet.
    pub fn open(dir: impl Into<PathBuf>) -> StoreResult<Self> {
        Self::open_with(dir, SketchConfig::default())
    }

    /// Open with an explicit sketch configuration. If the catalog already
    /// exists its persisted configuration wins — sketches on disk were
    /// built with it — and a mismatch with `cfg` is an
    /// [`StoreError::InvalidRequest`].
    pub fn open_with(dir: impl Into<PathBuf>, cfg: SketchConfig) -> StoreResult<Self> {
        let dir = dir.into();
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            let (sketch_cfg, entries) = read_manifest(&manifest)?;
            if sketch_cfg.minhash_k != cfg.minhash_k
                || sketch_cfg.max_rows != cfg.max_rows
                || sketch_cfg.seed != cfg.seed
            {
                return Err(StoreError::invalid(format!(
                    "catalog was created with (k={}, max_rows={}, seed={:#x}); \
                     refusing to open with a different sketch config",
                    sketch_cfg.minhash_k, sketch_cfg.max_rows, sketch_cfg.seed
                )));
            }
            return Ok(Self {
                dir,
                sketch_cfg,
                hnsw_cfg: HnswConfig::default(),
                entries,
                snapshot: None,
                epoch: 0,
                manifest_dirty: false,
            });
        }
        fs::create_dir_all(dir.join(SEGMENT_DIR))?;
        let cat = Self {
            dir,
            sketch_cfg: cfg,
            hnsw_cfg: HnswConfig::default(),
            entries: BTreeMap::new(),
            snapshot: None,
            epoch: 0,
            manifest_dirty: true,
        };
        cat.write_manifest()?;
        Ok(cat)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn sketch_config(&self) -> &SketchConfig {
        &self.sketch_cfg
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The mutation generation of this catalog. Bumped by every
    /// `add_table` / `add_record` / `remove`; a [`Searcher`] whose
    /// [`Searcher::epoch`] is older was taken before those mutations.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Table ids in ascending order.
    pub fn iter_ids(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    pub fn entry(&self, id: &str) -> Option<&ManifestEntry> {
        self.entries.get(id)
    }

    /// Load one table's full record from its segment file.
    pub fn get(&self, id: &str) -> StoreResult<Option<TableRecord>> {
        let Some(entry) = self.entries.get(id) else {
            return Ok(None);
        };
        let path = self.dir.join(SEGMENT_DIR).join(&entry.segment);
        let rec = ser::read_record(&mut BufReader::new(File::open(path)?))?;
        if rec.content_hash != entry.content_hash || rec.table_id() != id {
            return Err(StoreError::corrupt(
                "TSFMSEG1",
                format!("segment {} does not match manifest entry for {id:?}", entry.segment),
            ));
        }
        Ok(Some(rec))
    }

    /// Like [`Catalog::get`] but a missing id is a typed
    /// [`StoreError::UnknownTable`] instead of `None`.
    pub fn record(&self, id: &str) -> StoreResult<TableRecord> {
        self.get(id)?.ok_or_else(|| StoreError::UnknownTable(id.to_string()))
    }

    /// Sketch `table` and store it under `table.id`. `content_hash` is the
    /// stable hash of the source bytes; if the stored record already has
    /// this hash nothing is re-sketched.
    pub fn add_table(&mut self, table: &Table, content_hash: u64) -> StoreResult<IngestOutcome> {
        if self.entries.get(&table.id).map(|e| e.content_hash) == Some(content_hash) {
            return Ok(IngestOutcome::Unchanged);
        }
        let sketch = TableSketch::build(table, &self.sketch_cfg);
        self.add_record(TableRecord::from_sketch(sketch, content_hash))
    }

    /// Store a pre-built record (the path for records carrying embeddings).
    pub fn add_record(&mut self, rec: TableRecord) -> StoreResult<IngestOutcome> {
        let id = rec.table_id().to_string();
        let outcome = match self.entries.get(&id) {
            Some(e) if e.content_hash == rec.content_hash => return Ok(IngestOutcome::Unchanged),
            Some(_) => IngestOutcome::Updated,
            None => IngestOutcome::Added,
        };
        let segment = segment_name(&id, rec.content_hash);
        let path = self.dir.join(SEGMENT_DIR).join(&segment);
        write_atomic(&path, |w| ser::write_record(w, &rec))?;
        // Drop the replaced segment file (name differs because the hash does).
        if let Some(old) = self.entries.get(&id) {
            if old.segment != segment {
                let _ = fs::remove_file(self.dir.join(SEGMENT_DIR).join(&old.segment));
            }
        }
        self.entries.insert(
            id,
            ManifestEntry {
                content_hash: rec.content_hash,
                segment,
                num_rows: rec.num_rows() as u64,
                num_cols: rec.num_cols() as u32,
            },
        );
        self.invalidate();
        Ok(outcome)
    }

    /// Remove a table; returns whether it existed.
    pub fn remove(&mut self, id: &str) -> StoreResult<bool> {
        let Some(entry) = self.entries.remove(id) else {
            return Ok(false);
        };
        let _ = fs::remove_file(self.dir.join(SEGMENT_DIR).join(&entry.segment));
        self.invalidate();
        Ok(true)
    }

    /// Ingest every `*.csv` file of a directory (sorted by name; the file
    /// stem becomes the table id). Unchanged files are skipped before
    /// parsing. Commits the manifest at the end.
    pub fn ingest_dir(&mut self, dir: impl AsRef<Path>) -> StoreResult<IngestReport> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir.as_ref())?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "csv").unwrap_or(false))
            .collect();
        files.sort();
        let mut report = IngestReport::default();
        for path in files {
            let name = path.file_name().unwrap_or_default().to_string_lossy().to_string();
            let id = path.file_stem().unwrap_or_default().to_string_lossy().to_string();
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    report.failed.push((name, e.to_string()));
                    continue;
                }
            };
            let content_hash = hash_str(&text);
            if self.entries.get(&id).map(|e| e.content_hash) == Some(content_hash) {
                report.unchanged += 1;
                continue;
            }
            let table = csv::table_from_csv(&id, &id, &text);
            match self.add_table(&table, content_hash)? {
                IngestOutcome::Added => report.added += 1,
                IngestOutcome::Updated => report.updated += 1,
                IngestOutcome::Unchanged => report.unchanged += 1,
            }
        }
        self.commit()?;
        Ok(report)
    }

    /// Write the manifest if it has pending changes.
    pub fn commit(&mut self) -> StoreResult<()> {
        if self.manifest_dirty {
            self.write_manifest()?;
            self.manifest_dirty = false;
        }
        Ok(())
    }

    pub fn stats(&self) -> CatalogStats {
        let segment_bytes = self
            .entries
            .values()
            .filter_map(|e| {
                fs::metadata(self.dir.join(SEGMENT_DIR).join(&e.segment)).ok().map(|m| m.len())
            })
            .sum();
        CatalogStats {
            tables: self.entries.len(),
            columns: self.entries.values().map(|e| e.num_cols as u64).sum(),
            rows: self.entries.values().map(|e| e.num_rows).sum(),
            segment_bytes,
            minhash_k: self.sketch_cfg.minhash_k,
            index_cached: self.cached_index_valid(),
        }
    }

    /// An immutable, `Send + Sync` read snapshot of the current contents:
    /// the query path. The first call after any mutation (or a cold open)
    /// builds the indexes — loading the on-disk cache when its fingerprint
    /// matches — and the result is cached until the next mutation, so
    /// repeated calls are two `Arc` clones.
    pub fn searcher(&mut self) -> StoreResult<Searcher> {
        if self.snapshot.is_none() {
            // `load_all_records` walks the manifest BTreeMap, so records
            // arrive in ascending-id order — exactly the engine's
            // canonical order — letting the sketches double as the
            // searcher's id-addressable corpus.
            let records = self.load_all_records()?;
            let fp = self.fingerprint();
            let engine = match self.try_load_cached_engine(&records, fp) {
                Some(e) => e,
                None => {
                    let e = QueryEngine::build(
                        &records,
                        self.sketch_cfg.minhash_k,
                        self.hnsw_cfg.clone(),
                    );
                    // The cache is an optimization: a read-only filesystem
                    // must not make an in-memory engine unqueryable.
                    let _ = self.write_index_cache(&e, fp);
                    e
                }
            };
            let sketches: Vec<TableSketch> = records.into_iter().map(|r| r.sketch).collect();
            self.snapshot = Some(Searcher::new(
                Arc::new(engine),
                Arc::new(sketches),
                self.sketch_cfg.clone(),
                self.epoch,
            ));
        }
        Ok(self.snapshot.as_ref().expect("just built").clone())
    }

    /// The query engine over the current contents, building (or loading
    /// from the index cache) on first use after a mutation. Prefer
    /// [`Catalog::searcher`], which hands out an owned shareable snapshot.
    pub fn engine(&mut self) -> StoreResult<&QueryEngine> {
        self.searcher()?;
        Ok(self.snapshot.as_ref().expect("just built").engine())
    }

    /// Load every record (ascending id order).
    pub fn load_all_records(&self) -> StoreResult<Vec<TableRecord>> {
        let ids: Vec<String> = self.entries.keys().cloned().collect();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            out.push(self.get(&id)?.expect("manifest entry has a segment"));
        }
        Ok(out)
    }

    // ---- deprecated positional shims (one-PR grace period) ---------------

    /// Sketch a query table (with the catalog's own config) and rank the
    /// corpus under `mode`.
    #[deprecated(note = "take a Searcher via Catalog::searcher and build a DiscoveryRequest")]
    pub fn query(&mut self, mode: QueryMode, table: &Table, k: usize) -> StoreResult<Vec<TableHit>> {
        let searcher = self.searcher()?;
        if k == 0 || searcher.is_empty() {
            return Ok(Vec::new());
        }
        let req = DiscoveryRequest::builder(mode).k(k).build()?;
        Ok(searcher.search_table(table, &req)?.hits)
    }

    #[deprecated(note = "take a Searcher via Catalog::searcher and build a DiscoveryRequest")]
    pub fn query_join(&mut self, table: &Table, k: usize) -> StoreResult<Vec<TableHit>> {
        #[allow(deprecated)]
        self.query(QueryMode::Join, table, k)
    }

    #[deprecated(note = "take a Searcher via Catalog::searcher and build a DiscoveryRequest")]
    pub fn query_union(&mut self, table: &Table, k: usize) -> StoreResult<Vec<TableHit>> {
        #[allow(deprecated)]
        self.query(QueryMode::Union, table, k)
    }

    #[deprecated(note = "take a Searcher via Catalog::searcher and build a DiscoveryRequest")]
    pub fn query_subset(&mut self, table: &Table, k: usize) -> StoreResult<Vec<TableHit>> {
        #[allow(deprecated)]
        self.query(QueryMode::Subset, table, k)
    }

    /// Batched query over pre-built sketches (must use the catalog's
    /// sketch config).
    #[deprecated(note = "take a Searcher via Catalog::searcher and call Searcher::search_batch")]
    pub fn query_batch(
        &mut self,
        mode: QueryMode,
        sketches: &[TableSketch],
        k: usize,
    ) -> StoreResult<Vec<Vec<TableHit>>> {
        let searcher = self.searcher()?;
        if k == 0 || searcher.is_empty() {
            return Ok(vec![Vec::new(); sketches.len()]);
        }
        let req = DiscoveryRequest::builder(mode).k(k).build()?;
        Ok(searcher.search_batch(sketches, &req)?.into_iter().map(|r| r.hits).collect())
    }

    fn invalidate(&mut self) {
        self.snapshot = None;
        self.epoch += 1;
        self.manifest_dirty = true;
    }

    /// Fingerprint of the catalog contents + sketch config; the index
    /// cache is valid only while this matches.
    fn fingerprint(&self) -> u64 {
        let mut acc = splitmix64(self.sketch_cfg.minhash_k as u64 ^ self.sketch_cfg.seed);
        acc = splitmix64(acc ^ self.sketch_cfg.max_rows as u64);
        for (id, e) in &self.entries {
            acc = splitmix64(acc ^ hash_str(id));
            acc = splitmix64(acc ^ e.content_hash);
        }
        acc
    }

    fn cached_index_valid(&self) -> bool {
        let path = self.dir.join(INDEX_FILE);
        let Ok(file) = File::open(path) else {
            return false;
        };
        let mut r = BufReader::new(file);
        ser::expect_magic(&mut r, INDEX_MAGIC, "TSFM index cache").is_ok()
            && ser::read_u64(&mut r).map(|fp| fp == self.fingerprint()).unwrap_or(false)
    }

    fn try_load_cached_engine(&self, records: &[TableRecord], fp: u64) -> Option<QueryEngine> {
        let mut r = BufReader::new(File::open(self.dir.join(INDEX_FILE)).ok()?);
        ser::expect_magic(&mut r, INDEX_MAGIC, "TSFM index cache").ok()?;
        if ser::read_u64(&mut r).ok()? != fp {
            return None;
        }
        let join = ser::read_hnsw(&mut r).ok()?;
        let union = ser::read_hnsw(&mut r).ok()?;
        QueryEngine::with_graphs(records, self.sketch_cfg.minhash_k, join, union).ok()
    }

    fn write_index_cache(&self, engine: &QueryEngine, fp: u64) -> StoreResult<()> {
        write_atomic(&self.dir.join(INDEX_FILE), |w| {
            ser::write_magic(w, INDEX_MAGIC)?;
            ser::write_u64(w, fp)?;
            ser::write_hnsw(w, engine.join_index())?;
            ser::write_hnsw(w, engine.union_index())
        })
    }

    fn write_manifest(&self) -> StoreResult<()> {
        write_atomic(&self.dir.join(MANIFEST_FILE), |w| {
            ser::write_magic(w, MANIFEST_MAGIC)?;
            ser::write_u32(w, self.sketch_cfg.minhash_k as u32)?;
            ser::write_u64(w, self.sketch_cfg.max_rows as u64)?;
            ser::write_u64(w, self.sketch_cfg.seed)?;
            ser::write_u32(w, self.entries.len() as u32)?;
            for (id, e) in &self.entries {
                ser::write_str(w, id)?;
                ser::write_str(w, &e.segment)?;
                ser::write_u64(w, e.content_hash)?;
                ser::write_u64(w, e.num_rows)?;
                ser::write_u32(w, e.num_cols)?;
            }
            Ok(())
        })
    }
}

impl Drop for Catalog {
    fn drop(&mut self) {
        // Best-effort durability for callers that forget to commit.
        let _ = self.commit();
    }
}

fn read_manifest(path: &Path) -> StoreResult<(SketchConfig, BTreeMap<String, ManifestEntry>)> {
    read_manifest_inner(path).map_err(|e| e.into_format("TSFMCAT1"))
}

fn read_manifest_inner(path: &Path) -> StoreResult<(SketchConfig, BTreeMap<String, ManifestEntry>)> {
    let mut r = BufReader::new(File::open(path)?);
    ser::expect_magic(&mut r, MANIFEST_MAGIC, "TSFM catalog manifest")?;
    let cfg = SketchConfig {
        minhash_k: ser::read_u32(&mut r)? as usize,
        max_rows: ser::read_u64(&mut r)? as usize,
        seed: ser::read_u64(&mut r)?,
    };
    let count = ser::read_u32(&mut r)? as usize;
    if count > 1 << 24 {
        return Err(StoreError::corrupt("TSFMCAT1", format!("unreasonable table count {count}")));
    }
    let mut entries = BTreeMap::new();
    for _ in 0..count {
        let id = ser::read_str(&mut r)?;
        let segment = ser::read_str(&mut r)?;
        if segment.contains('/') || segment.contains("..") {
            return Err(StoreError::corrupt(
                "TSFMCAT1",
                format!("suspicious segment path {segment:?}"),
            ));
        }
        let entry = ManifestEntry {
            segment,
            content_hash: ser::read_u64(&mut r)?,
            num_rows: ser::read_u64(&mut r)?,
            num_cols: ser::read_u32(&mut r)?,
        };
        entries.insert(id, entry);
    }
    Ok((cfg, entries))
}

/// Segment file name: sanitized table id, the id's own hash (distinct ids
/// may sanitize/truncate to the same prefix), and the content hash (so an
/// update never overwrites the segment a reader might be loading).
fn segment_name(id: &str, content_hash: u64) -> String {
    let sane: String = id
        .chars()
        .take(64)
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    format!("{sane}-{:08x}-{content_hash:016x}.seg", hash_str(id) as u32)
}

/// Write via a temp file + rename so readers never observe a half-written
/// file and a crash never corrupts an existing one.
fn write_atomic(
    path: &Path,
    body: impl FnOnce(&mut BufWriter<File>) -> StoreResult<()>,
) -> StoreResult<()> {
    let tmp = path.with_extension("tmp");
    let mut w = BufWriter::new(File::create(&tmp)?);
    body(&mut w)?;
    w.flush()?;
    drop(w);
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tsfm_table::{Column, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("tsfm_store_{tag}_{}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table(id: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(id, id);
        t.push_column(Column::new("v", vals.iter().map(|&v| Value::Int(v)).collect()));
        t
    }

    fn join_req(k: usize) -> DiscoveryRequest {
        DiscoveryRequest::builder(QueryMode::Join).k(k).build().unwrap()
    }

    #[test]
    fn open_add_reopen_get() {
        let dir = tmp_dir("reopen");
        {
            let mut cat = Catalog::open(&dir).unwrap();
            assert_eq!(cat.add_table(&table("t1", &[1, 2, 3]), 99).unwrap(), IngestOutcome::Added);
            cat.commit().unwrap();
        }
        let cat = Catalog::open(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        let rec = cat.get("t1").unwrap().expect("persisted");
        assert_eq!(rec.content_hash, 99);
        assert_eq!(rec.sketch.columns.len(), 1);
        assert!(cat.get("missing").unwrap().is_none());
        assert!(matches!(cat.record("missing"), Err(StoreError::UnknownTable(id)) if id == "missing"));
    }

    #[test]
    fn unchanged_content_is_noop_changed_is_update() {
        let dir = tmp_dir("incr");
        let mut cat = Catalog::open(&dir).unwrap();
        assert_eq!(cat.add_table(&table("t", &[1]), 5).unwrap(), IngestOutcome::Added);
        assert_eq!(cat.add_table(&table("t", &[1]), 5).unwrap(), IngestOutcome::Unchanged);
        assert_eq!(cat.add_table(&table("t", &[1, 2]), 6).unwrap(), IngestOutcome::Updated);
        assert_eq!(cat.len(), 1);
        // The replaced segment file is gone; exactly one remains.
        let n = fs::read_dir(dir.join(SEGMENT_DIR))
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().path().extension().map(|x| x == "seg").unwrap_or(false)
            })
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn colliding_sanitized_ids_keep_distinct_segments() {
        // "a b" and "a_b" sanitize to the same prefix, and identical
        // contents give identical content hashes — the id hash in the
        // segment name must keep the files apart.
        let dir = tmp_dir("collide");
        let mut cat = Catalog::open(&dir).unwrap();
        cat.add_table(&table("a b", &[1, 2]), 7).unwrap();
        cat.add_table(&table("a_b", &[1, 2]), 7).unwrap();
        assert_eq!(cat.len(), 2);
        let ra = cat.get("a b").unwrap().expect("first id intact");
        let rb = cat.get("a_b").unwrap().expect("second id intact");
        assert_eq!(ra.table_id(), "a b");
        assert_eq!(rb.table_id(), "a_b");
        assert!(cat.load_all_records().unwrap().len() == 2);
    }

    #[test]
    fn remove_deletes_segment() {
        let dir = tmp_dir("rm");
        let mut cat = Catalog::open(&dir).unwrap();
        cat.add_table(&table("t", &[1]), 5).unwrap();
        assert!(cat.remove("t").unwrap());
        assert!(!cat.remove("t").unwrap());
        assert_eq!(cat.len(), 0);
        assert_eq!(fs::read_dir(dir.join(SEGMENT_DIR)).unwrap().count(), 0);
    }

    #[test]
    fn index_cache_written_and_reused() {
        let dir = tmp_dir("cache");
        let mut cat = Catalog::open(&dir).unwrap();
        for i in 0..5 {
            cat.add_table(&table(&format!("t{i}"), &[i, i + 1, i + 2]), i as u64).unwrap();
        }
        assert!(!cat.stats().index_cached, "no cache before the first snapshot");
        let hits =
            cat.searcher().unwrap().search_table(&table("q", &[1, 2, 3]), &join_req(3)).unwrap().hits;
        assert!(!hits.is_empty());
        cat.commit().unwrap();
        assert!(cat.stats().index_cached, "first snapshot persists the index");
        drop(cat);

        // Reopen: the cache fingerprint still matches, and queries agree.
        let mut cat2 = Catalog::open(&dir).unwrap();
        assert!(cat2.stats().index_cached);
        assert_eq!(
            cat2.searcher()
                .unwrap()
                .search_table(&table("q", &[1, 2, 3]), &join_req(3))
                .unwrap()
                .hits,
            hits
        );

        // A mutation invalidates the fingerprint and the cached snapshot.
        let before = cat2.epoch();
        cat2.add_table(&table("t9", &[7]), 70).unwrap();
        assert_eq!(cat2.epoch(), before + 1);
        assert!(!cat2.stats().index_cached);
        let rebuilt = cat2.searcher().unwrap();
        assert_eq!(rebuilt.epoch(), cat2.epoch());
        assert_eq!(rebuilt.len(), 6);
        assert!(cat2.stats().index_cached, "rebuilt cache covers the new contents");
    }

    #[test]
    fn searcher_snapshot_survives_mutation() {
        let dir = tmp_dir("snapshot");
        let mut cat = Catalog::open(&dir).unwrap();
        for i in 0..4 {
            cat.add_table(&table(&format!("t{i}"), &[i, i + 1]), i as u64).unwrap();
        }
        let old = cat.searcher().unwrap();
        assert_eq!(old.len(), 4);
        // Mutate: the old snapshot keeps answering from its generation.
        cat.remove("t0").unwrap();
        assert_eq!(old.len(), 4, "handed-out snapshots are immutable");
        assert!(old.sketch_of("t0").is_ok());
        let fresh = cat.searcher().unwrap();
        assert_eq!(fresh.len(), 3);
        assert!(matches!(fresh.sketch_of("t0"), Err(StoreError::UnknownTable(_))));
        assert!(fresh.epoch() > old.epoch());
    }

    #[test]
    fn refuses_mismatched_sketch_config() {
        let dir = tmp_dir("cfg");
        drop(Catalog::open(&dir).unwrap());
        let other = SketchConfig { minhash_k: 64, ..SketchConfig::default() };
        let Err(err) = Catalog::open_with(&dir, other) else {
            panic!("must refuse a mismatched sketch config")
        };
        assert!(matches!(err, StoreError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error_not_a_panic() {
        let dir = tmp_dir("corrupt");
        drop(Catalog::open(&dir).unwrap());
        fs::write(dir.join(MANIFEST_FILE), b"TSFMCAT1garbage").unwrap();
        let Err(err) = Catalog::open(&dir) else { panic!("garbage manifest must not open") };
        assert!(
            matches!(&err, StoreError::Corrupt { format, .. } if format == "TSFMCAT1"),
            "{err}"
        );
        fs::write(dir.join(MANIFEST_FILE), b"NOTAMAGIC").unwrap();
        assert!(Catalog::open(&dir).is_err());
    }

    #[test]
    fn ingest_dir_incremental() {
        let dir = tmp_dir("ingest");
        let data = tmp_dir("ingest_data");
        fs::create_dir_all(&data).unwrap();
        fs::write(data.join("a.csv"), "x,y\n1,2\n3,4\n").unwrap();
        fs::write(data.join("b.csv"), "name\nann\nbob\n").unwrap();
        fs::write(data.join("ignored.txt"), "not a csv").unwrap();

        let mut cat = Catalog::open(&dir).unwrap();
        let r1 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r1.added, r1.updated, r1.unchanged), (2, 0, 0));

        let r2 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r2.added, r2.updated, r2.unchanged), (0, 0, 2), "re-ingest is a no-op");
        assert_eq!(r2.sketched(), 0);

        fs::write(data.join("c.csv"), "z\n9\n").unwrap();
        let r3 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r3.added, r3.updated, r3.unchanged), (1, 0, 2), "one new file, one sketch");

        fs::write(data.join("a.csv"), "x,y\n1,2\n3,4\n5,6\n").unwrap();
        let r4 = cat.ingest_dir(&data).unwrap();
        assert_eq!((r4.added, r4.updated, r4.unchanged), (0, 1, 2), "changed file re-sketched");

        let stats = cat.stats();
        assert_eq!(stats.tables, 3);
        assert!(stats.segment_bytes > 0);
    }

    #[test]
    fn deprecated_catalog_shims_agree_with_searcher() {
        let dir = tmp_dir("shims");
        let mut cat = Catalog::open(&dir).unwrap();
        for i in 0..5 {
            cat.add_table(&table(&format!("t{i}"), &[i, i + 1, i + 2]), i as u64).unwrap();
        }
        let q = table("q", &[1, 2, 3]);
        #[allow(deprecated)]
        let old = cat.query_join(&q, 3).unwrap();
        let new = cat.searcher().unwrap().search_table(&q, &join_req(3)).unwrap().hits;
        assert_eq!(old, new);
        #[allow(deprecated)]
        let empty_k = cat.query(QueryMode::Join, &q, 0).unwrap();
        assert!(empty_k.is_empty(), "shim keeps the old k == 0 behavior");
    }
}
