//! Crash-safe file I/O: CRC32C checksums, the atomic commit protocol,
//! offset-attributed checked reads, and the fault-injection hook that
//! proves all of it.
//!
//! Everything in `tsfm_store` that touches the filesystem funnels through
//! this module (the `durable-write-required` lint enforces it):
//!
//! * [`crc32c`] — a std-only slicing-by-8 CRC32C (Castagnoli), the
//!   checksum every v2 `TSFM*` frame carries over its payload;
//! * [`commit_file`] — the atomic write path: write a temp file, fsync
//!   it, rename it over the target, fsync the parent directory. A crash
//!   at any instant leaves either the old file or the new one, never a
//!   torn mix;
//! * [`write_new`] — the bulk-ingest fast path for content-addressed
//!   segment files: `create_new` + one write, **no fsync** — the catalog
//!   batches segment fsyncs into [`sync_file`]/[`sync_dir`] calls at
//!   commit time so durability costs one pass per commit, not one fsync
//!   per table;
//! * [`read_file_checked`] — opens a file and runs a parser over a
//!   byte-counting reader, stamping any [`StoreError::Corrupt`] with the
//!   file name and the offset where decoding stopped, and counting it in
//!   `tsfm_store_corruptions_detected_total`;
//! * [`fault`] — the test-only injection layer. It is compiled
//!   unconditionally (integration tests cannot see a dependency's
//!   `cfg(test)`) but costs one relaxed atomic load per I/O primitive
//!   while disarmed.

use crate::error::{StoreError, StoreResult};
use std::fs::{self, File};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

// ---- CRC32C ---------------------------------------------------------------

/// Reflected Castagnoli polynomial (iSCSI, ext4, Btrfs — chosen over
/// CRC32/IEEE for its strictly better Hamming distance at our frame
/// sizes).
const POLY: u32 = 0x82f6_3b78;

fn crc_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<Box<[[u32; 256]; 8]>> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            t[0][i as usize] = crc;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xff) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// CRC32C of `bytes` (slicing-by-8; ~8 bytes per table-lookup round).
pub fn crc32c(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][c[4] as usize]
            ^ t[2][c[5] as usize]
            ^ t[1][c[6] as usize]
            ^ t[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---- fault injection ------------------------------------------------------

/// Deterministic I/O fault injection for crash-point tests.
///
/// A test arms a plan scoped to one directory tree; every faultable
/// primitive under that scope (`create`, `write`, `fsync`, `rename`,
/// directory sync) consults the plan. The plan either counts sites (a dry
/// run enumerating every injection point) or trips at the Nth site — and
/// once tripped, **every** subsequent primitive under the scope fails
/// too: a process that hit a disk fault mid-commit does not get to keep
/// writing, so the simulation must not either.
///
/// State is process-global; tests that arm faults must not run
/// concurrently with each other (keep them in one `#[test]` body).
/// Operations outside the armed scope are never affected, so the rest of
/// the suite can run in parallel.
pub mod fault {
    use std::io;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use tsfm_obs::sync::lock_unpoisoned;

    /// How the tripped site misbehaves.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultMode {
        /// The operation fails cleanly with an injected `io::Error`.
        Fail,
        /// A write persists a prefix of its bytes, then fails — the torn
        /// write a crash mid-`write(2)` leaves behind. Non-write sites
        /// degrade to [`FaultMode::Fail`].
        Torn,
    }

    #[derive(Debug)]
    struct Plan {
        scope: PathBuf,
        /// `None` counts sites without ever tripping.
        trip_at: Option<(u64, FaultMode)>,
        seen: u64,
        tripped: bool,
    }

    static ARMED: AtomicBool = AtomicBool::new(false);
    static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

    /// Arm a plan that fails the `trip_at`-th (0-based) faultable
    /// operation under `scope`, in `mode`, and every operation after it.
    pub fn arm(scope: &Path, trip_at: u64, mode: FaultMode) {
        *lock_unpoisoned(&PLAN) = Some(Plan {
            scope: scope.to_path_buf(),
            trip_at: Some((trip_at, mode)),
            seen: 0,
            tripped: false,
        });
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Arm a counting plan: no operation fails, but every faultable site
    /// under `scope` is tallied. [`disarm`] returns the tally.
    pub fn arm_counting(scope: &Path) {
        *lock_unpoisoned(&PLAN) =
            Some(Plan { scope: scope.to_path_buf(), trip_at: None, seen: 0, tripped: false });
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarm, returning how many faultable operations were observed.
    pub fn disarm() -> u64 {
        ARMED.store(false, Ordering::SeqCst);
        lock_unpoisoned(&PLAN).take().map_or(0, |p| p.seen)
    }

    /// Whether an armed plan has already tripped (the simulated process
    /// is "crashed").
    pub fn tripped() -> bool {
        ARMED.load(Ordering::SeqCst)
            && lock_unpoisoned(&PLAN).as_ref().is_some_and(|p| p.tripped)
    }

    /// Whether any fault plan is armed. The catalog consults this to
    /// pick its fsync strategy: an armed plan forces the serial
    /// sync-at-commit path, because background sync workers racing the
    /// workload would make fault-site numbering nondeterministic and the
    /// crash sweeper requires a stable site inventory.
    pub fn armed() -> bool {
        ARMED.load(Ordering::SeqCst)
    }

    /// What the current operation on `path` should do.
    pub(super) enum Injection {
        Proceed,
        Fail(io::Error),
        /// Write this many bytes of the payload, then fail.
        Torn(usize),
    }

    pub(super) fn decide(op: &str, path: &Path, write_len: usize) -> Injection {
        if !ARMED.load(Ordering::Relaxed) {
            return Injection::Proceed;
        }
        let mut guard = lock_unpoisoned(&PLAN);
        let Some(plan) = guard.as_mut() else { return Injection::Proceed };
        if !path.starts_with(&plan.scope) {
            return Injection::Proceed;
        }
        if plan.tripped {
            return Injection::Fail(injected(op, path, "process already crashed"));
        }
        let site = plan.seen;
        plan.seen += 1;
        match plan.trip_at {
            Some((at, mode)) if site == at => {
                plan.tripped = true;
                match mode {
                    FaultMode::Torn if write_len > 0 => Injection::Torn(write_len / 2),
                    _ => Injection::Fail(injected(op, path, "tripped")),
                }
            }
            _ => Injection::Proceed,
        }
    }

    fn injected(op: &str, path: &Path, why: &str) -> io::Error {
        io::Error::other(format!("injected fault: {op} on {} ({why})", path.display()))
    }
}

/// Consult the fault plan for a non-write operation.
fn fault_check(op: &str, path: &Path) -> StoreResult<()> {
    match fault::decide(op, path, 0) {
        fault::Injection::Proceed | fault::Injection::Torn(_) => Ok(()),
        fault::Injection::Fail(e) => Err(e.into()),
    }
}

/// `write_all` with a fault site: `Torn` mode persists a prefix before
/// failing, exactly what an interrupted `write(2)` leaves on disk.
fn fault_write(f: &mut File, path: &Path, bytes: &[u8]) -> StoreResult<()> {
    match fault::decide("write", path, bytes.len()) {
        fault::Injection::Proceed => Ok(f.write_all(bytes)?),
        fault::Injection::Fail(e) => Err(e.into()),
        fault::Injection::Torn(n) => {
            f.write_all(&bytes[..n])?;
            let _ = f.sync_all();
            Err(std::io::Error::other(format!(
                "injected fault: torn write on {} ({n} of {} bytes persisted)",
                path.display(),
                bytes.len()
            ))
            .into())
        }
    }
}

// ---- atomic commit protocol -----------------------------------------------

/// The temp-file sibling `commit_file` stages through. Every target this
/// store commits (`catalog.manifest`, `index.cache`, `segments/*.seg`,
/// `BENCH_*.json`) maps to a distinct `.tmp` name within its directory.
fn tmp_path(path: &Path) -> PathBuf {
    path.with_extension("tmp")
}

/// Atomically replace `path` with `bytes`: write a temp file, fsync it,
/// rename it into place, fsync the parent directory. After `Ok`, the
/// bytes are durable; after an error or crash, `path` still holds its
/// previous content (a leftover `.tmp` is garbage that `tsfm fsck`
/// sweeps — it is never read).
pub fn commit_file(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    let tmp = tmp_path(path);
    let staged = (|| -> StoreResult<()> {
        fault_check("create", &tmp)?;
        let mut f = File::create(&tmp)?;
        fault_write(&mut f, &tmp, bytes)?;
        fault_check("fsync", &tmp)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = staged {
        // A real crash leaves the temp file; an ordinary error cleans up.
        // While a fault plan is tripped we are simulating the crash, so
        // the garbage must stay for fsck to find.
        if !fault::tripped() {
            let _ = fs::remove_file(&tmp);
        }
        return Err(e);
    }
    fault_check("rename", path)?;
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        sync_dir(parent)?;
    }
    Ok(())
}

/// Create-and-write a file that must not exist yet (the content-addressed
/// segment fast path). Returns the still-open handle on success — **not
/// yet fsynced**: callers keep it and batch [`sync_pending`] /
/// [`SyncPool`] + [`sync_dir`] at commit time, syncing the handle
/// directly instead of paying a by-path reopen (`open(2)` in a
/// multi-thousand-entry segment directory costs as much as the fsync
/// itself). Returns `Ok(None)` — having written nothing — if the path
/// already exists.
pub fn write_new(path: &Path, bytes: &[u8]) -> StoreResult<Option<File>> {
    fault_check("create", path)?;
    match File::options().write(true).create_new(true).open(path) {
        Ok(mut f) => {
            fault_write(&mut f, path, bytes)?;
            Ok(Some(f))
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// fsync one pending file: through its retained handle when the caller
/// still holds it, by path otherwise (the retry path after a failed
/// batch). One fault site either way, keyed on the path.
pub fn sync_pending(path: &Path, file: Option<&File>) -> StoreResult<()> {
    fault_check("fsync", path)?;
    match file {
        Some(f) => Ok(f.sync_data()?),
        None => Ok(File::open(path)?.sync_all()?),
    }
}

/// fsync one file by path.
pub fn sync_file(path: &Path) -> StoreResult<()> {
    fault_check("fsync", path)?;
    Ok(File::open(path)?.sync_all()?)
}

// ---- background sync pipeline ---------------------------------------------

/// A pool of fsync workers that amortizes segment durability for bulk
/// commits.
///
/// A single fsync on this class of hardware costs ~100-200µs of mostly
/// idle journal-commit latency — serially fsyncing a 10k-table ingest at
/// commit time would double its wall clock. But concurrent fsyncs share
/// journal commits (ext4's jbd2 batches every waiter into the running
/// transaction), so a burst of blocked workers turns one-flush-per-file
/// into a handful of journal flushes per batch. The catalog hands over
/// [`SyncPool::CHUNK`]-sized batches mid-ingest (overlapping writeback
/// with sketching; a per-file trickle instead was measured to stall the
/// foreground writer's journal handles) and `Catalog::commit` drains the
/// pool before acknowledging anything. Files arrive with their
/// still-open [`write_new`] handle: syncing the handle skips a by-path
/// `open(2)`, which in a multi-thousand-entry segment directory costs as
/// much as the fsync itself.
///
/// The durability contract is unchanged: the drain happens (and fails on
/// the first sync error) *before* the segment directory is synced and
/// the manifest is committed, so an acknowledged commit still means
/// every referenced segment is on disk.
///
/// Workers deliberately bypass the fault layer: while a fault plan is
/// armed the catalog routes syncs through the serial `pending_sync`
/// path instead (see [`fault::armed`]), keeping crash-sweep site
/// numbering deterministic.
pub struct SyncPool {
    tx: Option<std::sync::mpsc::Sender<(PathBuf, Option<File>)>>,
    state: std::sync::Arc<(std::sync::Mutex<SyncState>, std::sync::Condvar)>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

#[derive(Default)]
struct SyncState {
    in_flight: usize,
    /// Paths whose fsync failed since the last drain, with the error.
    failed: Vec<(PathBuf, StoreError)>,
}

impl SyncPool {
    /// Enough concurrency to saturate journal batching without melting
    /// the journal thread; workers are blocked in `fsync(2)` essentially
    /// their whole lives, so the count is I/O depth, not CPU load.
    pub const WORKERS: usize = 128;

    /// Commits with at most this many pending segments sync serially:
    /// below it, journal batching cannot recoup the cost of waking a
    /// worker pool, and the crash sweeper's small workloads stay on the
    /// deterministic serial path in fault runs and normal runs alike.
    pub const MIN_BATCH: usize = 8;

    /// Mid-ingest chunk size: once this many freshly written segments
    /// are pending, the catalog hands the whole chunk to the pool and
    /// keeps ingesting while it syncs. Coarse chunks keep the journal
    /// storms bursty — a per-file trickle forces a journal commit per
    /// handful of files and measurably stalls the foreground writer's
    /// transaction handles, while one storm every couple thousand files
    /// overlaps most of the writeback with sketching.
    pub const CHUNK: usize = 2048;

    /// Backpressure bound: `enqueue` blocks once this many syncs are in
    /// flight. Each queued entry holds an open file descriptor, so the
    /// bound keeps a slow disk from accumulating unbounded fd debt.
    const MAX_IN_FLIGHT: usize = 4096;

    pub fn new(workers: usize) -> Self {
        let (tx, rx) = std::sync::mpsc::channel::<(PathBuf, Option<File>)>();
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let state = std::sync::Arc::new((
            std::sync::Mutex::new(SyncState::default()),
            std::sync::Condvar::new(),
        ));
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                let state = std::sync::Arc::clone(&state);
                // tsfm_lint: allow(no-spawn-outside-pool, "SyncPool IS a bounded pool: worker count is fixed at construction, enqueue blocks at MAX_IN_FLIGHT, the loop body cannot panic because sync errors are caught into SyncState, and Drop joins every worker")
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the recv itself;
                    // a closed channel means the pool was dropped.
                    let Ok((path, file)) = tsfm_obs::sync::lock_unpoisoned(&rx).recv() else {
                        return;
                    };
                    let result = match file {
                        Some(f) => f.sync_data(),
                        None => File::open(&path).and_then(|f| f.sync_data()),
                    };
                    let (lock, cvar) = &*state;
                    let mut st = tsfm_obs::sync::lock_unpoisoned(lock);
                    st.in_flight -= 1;
                    if let Err(e) = result {
                        st.failed.push((path, e.into()));
                    }
                    cvar.notify_all();
                })
            })
            .collect();
        Self { tx: Some(tx), state, workers }
    }

    /// Queue one background fsync — through the retained [`write_new`]
    /// handle when given, by path otherwise. Failures surface at the
    /// next [`SyncPool::drain`] — i.e. at commit time, before anything
    /// is acknowledged. Blocks while the pool is at its in-flight bound.
    pub fn enqueue(&self, path: PathBuf, file: Option<File>) {
        let (lock, cvar) = &*self.state;
        {
            let mut st = tsfm_obs::sync::lock_unpoisoned(lock);
            while st.in_flight >= Self::MAX_IN_FLIGHT {
                st = match cvar.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            st.in_flight += 1;
        }
        if let Some(tx) = &self.tx {
            if tx.send((path, file)).is_ok() {
                return;
            }
        }
        // Workers are gone (only possible mid-teardown): undo the count.
        tsfm_obs::sync::lock_unpoisoned(lock).in_flight -= 1;
    }

    /// Block until every queued fsync finished; return the paths that
    /// failed, with their errors. An empty vec means everything queued
    /// since the last drain is durable.
    pub fn drain(&self) -> Vec<(PathBuf, StoreError)> {
        let (lock, cvar) = &*self.state;
        let mut st = tsfm_obs::sync::lock_unpoisoned(lock);
        while st.in_flight > 0 {
            st = match cvar.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        std::mem::take(&mut st.failed)
    }
}

impl Drop for SyncPool {
    fn drop(&mut self) {
        // Closing the channel ends the worker loops; join so no sync is
        // silently abandoned mid-flight.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// fsync a directory, making renames and new directory entries durable.
/// Platforms that cannot open a directory read-only get a best-effort
/// no-op — the rename itself still happened.
pub fn sync_dir(dir: &Path) -> StoreResult<()> {
    fault_check("dirsync", dir)?;
    match File::open(dir) {
        Ok(d) => Ok(d.sync_all()?),
        Err(_) => Ok(()),
    }
}

// ---- checked reads --------------------------------------------------------

/// A reader that counts consumed bytes so corruption errors can name the
/// stream offset where decoding stopped.
pub struct CountingReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> CountingReader<R> {
    pub fn new(inner: R) -> Self {
        Self { inner, offset: 0 }
    }

    /// Bytes consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.offset += n as u64;
        Ok(n)
    }
}

/// Open `path` and run `parse` over a buffered, byte-counting reader.
/// A [`StoreError::Corrupt`] coming back is stamped with the file name
/// and the offset reached, and counted in
/// `tsfm_store_corruptions_detected_total`.
pub fn read_file_checked<T>(
    path: &Path,
    parse: impl FnOnce(&mut CountingReader<BufReader<File>>) -> StoreResult<T>,
) -> StoreResult<T> {
    let mut r = CountingReader::new(BufReader::new(File::open(path)?));
    match parse(&mut r) {
        Ok(v) => Ok(v),
        Err(e) => Err(note_corruption(e.with_file(path, r.offset()))),
    }
}

/// Positioned, checksum-verified read: `len` bytes at `offset` of an
/// already-open arena `file`, verified against `crc` (CRC32C) before a
/// byte is interpreted. This is the lazy sketch-load path — no seek, no
/// shared cursor, so any number of snapshot readers can share one handle.
/// A short read or checksum mismatch is a typed [`StoreError::Corrupt`]
/// naming the file and offset (counted like every other corruption), and
/// every read's latency lands in `tsfm_store_arena_read_us`.
pub fn read_at_checked(
    file: &File,
    path: &Path,
    offset: u64,
    len: u64,
    crc: u32,
    format: &'static str,
) -> StoreResult<Vec<u8>> {
    use std::os::unix::fs::FileExt;
    let t0 = std::time::Instant::now();
    let mut buf = vec![0u8; len as usize];
    let res = (|| -> StoreResult<Vec<u8>> {
        file.read_exact_at(&mut buf, offset).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::corrupt(
                    format,
                    format!("truncated arena: {len} bytes at offset {offset} past end of file"),
                )
            } else {
                e.into()
            }
        })?;
        let actual = crc32c(&buf);
        if actual != crc {
            return Err(StoreError::corrupt(
                format,
                format!(
                    "arena payload checksum mismatch at offset {offset}: \
                     stored {crc:#010x}, computed {actual:#010x} over {len} bytes"
                ),
            ));
        }
        Ok(std::mem::take(&mut buf))
    })();
    tsfm_obs::metrics::global()
        .histogram("tsfm_store_arena_read_us", "Positioned arena payload read latency")
        .record(t0.elapsed().as_micros() as u64);
    res.map_err(|e| note_corruption(e.with_file(path, offset)))
}

/// Count a corruption sighting (no-op for other error kinds).
pub(crate) fn note_corruption(e: StoreError) -> StoreError {
    if matches!(e, StoreError::Corrupt { .. }) {
        tsfm_obs::metrics::global()
            .counter(
                "tsfm_store_corruptions_detected_total",
                "Checksum or format violations detected while reading store files",
            )
            .inc();
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 appendix B.4 check value.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
    }

    #[test]
    fn crc32c_detects_single_bit_flips() {
        let base: Vec<u8> = (0..193u32).map(|i| (i * 7 + 3) as u8).collect();
        let reference = crc32c(&base);
        let mut flipped = base.clone();
        for byte in 0..base.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), reference, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32c(&flipped), reference);
    }

    #[test]
    fn crc32c_slicing_matches_bytewise() {
        // The slicing-by-8 fast path must agree with the 1-byte tail loop
        // at every alignment.
        let data: Vec<u8> = (0..100u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in 0..data.len() {
            let whole = crc32c(&data[..len]);
            let mut bytewise = !0u32;
            let t = crc_tables();
            for &b in &data[..len] {
                bytewise = t[0][((bytewise ^ u32::from(b)) & 0xff) as usize] ^ (bytewise >> 8);
            }
            assert_eq!(whole, !bytewise, "len {len}");
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsfm_durable_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn commit_file_replaces_atomically_and_cleans_tmp() {
        let dir = tmp("commit");
        let target = dir.join("data.bin");
        commit_file(&target, b"first").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"first");
        commit_file(&target, b"second").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"second");
        assert!(!dir.join("data.tmp").exists());
    }

    #[test]
    fn write_new_refuses_existing_path() {
        let dir = tmp("new");
        let target = dir.join("seg.bin");
        let handle = write_new(&target, b"abc").unwrap();
        assert!(handle.is_some());
        assert!(write_new(&target, b"xyz").unwrap().is_none());
        assert_eq!(fs::read(&target).unwrap(), b"abc");
        // Sync through the retained handle, by path, and as a
        // retry-without-handle; all three must succeed.
        sync_pending(&target, handle.as_ref()).unwrap();
        sync_pending(&target, None).unwrap();
        sync_file(&target).unwrap();
        sync_dir(&dir).unwrap();
    }

    #[test]
    fn sync_pool_syncs_handles_and_reports_failures() {
        let dir = tmp("pool");
        let pool = SyncPool::new(4);
        let good = dir.join("good.bin");
        let handle = write_new(&good, b"payload").unwrap();
        pool.enqueue(good, handle);
        assert!(pool.drain().is_empty(), "healthy sync must not fail");
        // A path that cannot be opened surfaces as a failed entry at the
        // next drain — exactly what a commit must see before acking.
        let missing = dir.join("missing.bin");
        pool.enqueue(missing.clone(), None);
        let failed = pool.drain();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, missing);
        // The pool stays usable after a failure.
        let again = dir.join("again.bin");
        let handle = write_new(&again, b"more").unwrap();
        pool.enqueue(again, handle);
        assert!(pool.drain().is_empty());
    }

    #[test]
    fn counting_reader_tracks_offset() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = CountingReader::new(BufReader::new(std::io::Cursor::new(data)));
        let mut buf = [0u8; 2];
        std::io::Read::read_exact(&mut r, &mut buf).unwrap();
        assert_eq!(r.offset(), 2);
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut r, &mut rest).unwrap();
        assert_eq!(r.offset(), 5);
    }
}
