//! The sketch-based query engine shared by the in-memory pipeline and the
//! persistent catalog.
//!
//! Built from a set of [`TableRecord`]s (sorted internally by table id so
//! construction is independent of input order), it serves the three data
//! discovery workloads of the paper's §IV-C over three indexes:
//!
//! * **join** — an HNSW over per-column *cell* MinHash features (cosine of
//!   these features tracks value-overlap Jaccard), ranked by the Fig.-6
//!   algorithm ([`tsfm_search::rank`]);
//! * **union** — an HNSW over the full column signature
//!   `[cell ‖ word ‖ numerical]`, so unionable columns match on words and
//!   distribution even without value overlap, ranked by Fig.-6;
//! * **subset** — banded MinHash LSH over table-level content snapshots,
//!   ranked by estimated row-set Jaccard.
//!
//! The engine is immutable once built and holds no interior mutability, so
//! `&QueryEngine` queries are freely shareable across threads (see
//! [`crate::Searcher`]); [`QueryEngine::search_batch`] exploits this by
//! fanning a batch out over `std::thread::scope`.
//!
//! Because every index is deterministic (see
//! `crates/search/tests/determinism.rs`) and construction order is
//! canonicalized, an engine rebuilt from persisted records answers every
//! query identically to one built from the original in-memory sketches.

use crate::error::{StoreError, StoreResult};
use crate::record::TableRecord;
use crate::request::{ColumnMatch, DiscoveryRequest, DiscoveryResponse, HitExplanation};
use tsfm_search::{
    near_tables, near_tables_with_provenance, ColumnHit, Hnsw, HnswConfig, Metric, MinHashLsh,
};
use tsfm_sketch::{ColumnSketch, MinHash, TableSketch};

/// Which discovery workload a query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    Join,
    Union,
    Subset,
}

impl QueryMode {
    /// Every mode, in the order the CLI documents them.
    pub const ALL: [QueryMode; 3] = [QueryMode::Join, QueryMode::Union, QueryMode::Subset];

    pub fn name(self) -> &'static str {
        match self {
            QueryMode::Join => "join",
            QueryMode::Union => "union",
            QueryMode::Subset => "subset",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "join" => Some(QueryMode::Join),
            "union" => Some(QueryMode::Union),
            "subset" => Some(QueryMode::Subset),
            _ => None,
        }
    }
}

impl std::fmt::Display for QueryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The one mode parser shared by every frontend: the CLI `--mode` flag and
/// the serve loop's `"mode"` field both go through here, so both report
/// the same error listing the valid modes.
impl std::str::FromStr for QueryMode {
    type Err = StoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        QueryMode::parse(s).ok_or_else(|| {
            let valid: Vec<&str> = QueryMode::ALL.iter().map(|m| m.name()).collect();
            StoreError::invalid(format!("unknown mode {s:?} (valid modes: {})", valid.join(", ")))
        })
    }
}

/// Per-table assembly metadata: exactly what [`QueryEngine::from_meta`]
/// needs to reconstruct an engine without touching the full
/// [`TableRecord`]s — the catalog persists this alongside the HNSW graphs
/// so a lazy open never has to read sharded sketch payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    pub table_id: String,
    /// Table-level content snapshot feeding the subset-search LSH.
    pub content_snapshot: MinHash,
    /// Column names in sketch order (their count fixes the table's span
    /// in the column-indexed HNSW graphs).
    pub column_names: Vec<String>,
}

/// Extract [`TableMeta`] for `records` in the engine's canonical
/// (ascending table-id, last-duplicate-wins) order — the exact per-table
/// inputs [`QueryEngine::assemble`] reads, so
/// [`QueryEngine::from_meta`] over this output rebuilds the same engine.
pub fn table_metas(records: &[TableRecord]) -> Vec<TableMeta> {
    canonical_order(records)
        .into_iter()
        .map(|ri| TableMeta {
            table_id: records[ri].sketch.table_id.clone(),
            content_snapshot: records[ri].sketch.content_snapshot.clone(),
            column_names: records[ri].sketch.columns.iter().map(|c| c.name.clone()).collect(),
        })
        .collect()
}

/// One ranked result table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableHit {
    pub table_id: String,
    /// Join/union: how many query columns matched (Fig.-6 RANK1 key).
    /// Subset: 0 (the snapshot is table-level, not per-column).
    pub matching_columns: usize,
    /// Join/union: sum of per-column minimum distances (lower is better).
    /// Subset: estimated row-set Jaccard (higher is better).
    pub score: f64,
}

/// Per-query-column over-retrieval factor before Fig.-6 aggregation (the
/// paper retrieves `k·3` columns per query column).
const OVER_RETRIEVE: usize = 3;

/// Accumulating per-stage timer behind [`DiscoveryRequest`]'s `profile`
/// flag. [`Profiler::time`] attributes a closure's wall time to a named
/// stage, merging repeats (the per-column feature/beam loop hits each
/// stage once per query column). Disabled, every call is one branch and
/// zero clock reads, so unprofiled queries pay nothing.
struct Profiler {
    stages: Option<Vec<(&'static str, u64)>>,
}

impl Profiler {
    fn new(enabled: bool) -> Self {
        Self { stages: enabled.then(Vec::new) }
    }

    fn enabled(&self) -> bool {
        self.stages.is_some()
    }

    #[inline]
    fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let Some(stages) = &mut self.stages else { return f() };
        let t0 = std::time::Instant::now();
        let out = f();
        let us = t0.elapsed().as_micros() as u64;
        match stages.iter_mut().find(|(s, _)| *s == stage) {
            Some((_, acc)) => *acc += us,
            None => stages.push((stage, us)),
        }
        out
    }

    /// Close out: append the unattributed remainder (validation, filters,
    /// response assembly) as `"other"`, so the stages partition
    /// `total_us` and sum back to it.
    fn finish(self, total_us: u64) -> Option<Vec<(String, u64)>> {
        let mut stages = self.stages?;
        let attributed: u64 = stages.iter().map(|&(_, us)| us).sum();
        stages.push(("other", total_us.saturating_sub(attributed)));
        Some(stages.into_iter().map(|(s, us)| (s.to_string(), us)).collect())
    }
}

/// Immutable query indexes over a fixed corpus of records. `Send + Sync`:
/// all queries take `&self`.
pub struct QueryEngine {
    minhash_k: usize,
    /// Dense index → table id, sorted ascending.
    ids: Vec<String>,
    /// Column index (in both HNSWs) → owning table's dense index.
    col_owner: Vec<usize>,
    /// Column index → column name (for match explanations).
    col_names: Vec<String>,
    join_index: Hnsw,
    union_index: Hnsw,
    content_lsh: MinHashLsh,
}

/// Join feature: the cell-MinHash features alone (`k` wide), written into
/// a caller-reused buffer (the index build and every query fan-out go
/// through here once per column — no per-column allocation).
fn join_features(c: &ColumnSketch, out: &mut Vec<f32>) {
    out.clear();
    c.cell_minhash.extend_f32_features(out);
}

/// Union feature: `[cell ‖ word ‖ numerical]` (`2k + 16` wide), into a
/// caller-reused buffer.
fn union_features(c: &ColumnSketch, out: &mut Vec<f32>) {
    out.clear();
    c.extend_minhash_features(out);
    out.extend(c.numeric.to_f32_features());
}

/// LSH banding for a `k`-wide snapshot signature: 2-row bands when `k` is
/// even (collision probability `1−(1−J²)^(k/2)`), else 1-row bands.
fn content_banding(k: usize) -> (usize, usize) {
    if k % 2 == 0 {
        (k / 2, 2)
    } else {
        (k, 1)
    }
}

impl QueryEngine {
    /// Build all three indexes from records. Input order is irrelevant:
    /// records are processed in ascending table-id order, and duplicate ids
    /// keep the *last* occurrence.
    pub fn build(records: &[TableRecord], minhash_k: usize, hnsw_cfg: HnswConfig) -> Self {
        let _g = tsfm_obs::span!("engine.build");
        let order = canonical_order(records);
        let mut join_index = Hnsw::new(minhash_k, Metric::Cosine, hnsw_cfg.clone());
        let mut union_index =
            Hnsw::new(2 * minhash_k + tsfm_sketch::numeric::NUMERIC_SKETCH_DIM, Metric::Cosine, hnsw_cfg);
        let mut buf = Vec::new();
        for &ri in &order {
            for c in &records[ri].sketch.columns {
                join_features(c, &mut buf);
                join_index.add(&buf);
                union_features(c, &mut buf);
                union_index.add(&buf);
            }
        }
        Self::assemble(records, &order, minhash_k, join_index, union_index)
    }

    /// Build from pre-built HNSW graphs (the catalog's index-cache path).
    /// The graphs must have been produced by [`QueryEngine::build`] over
    /// the same records; node counts and dimensions are validated.
    pub fn with_graphs(
        records: &[TableRecord],
        minhash_k: usize,
        join_index: Hnsw,
        union_index: Hnsw,
    ) -> StoreResult<Self> {
        let order = canonical_order(records);
        let ncols: usize = order.iter().map(|&ri| records[ri].sketch.columns.len()).sum();
        check_graphs(ncols, minhash_k, &join_index, &union_index)?;
        Ok(Self::assemble(records, &order, minhash_k, join_index, union_index))
    }

    /// Build from pre-built HNSW graphs and per-table metadata alone — no
    /// [`TableRecord`]s (the catalog's lazy-open fast path, fed entirely
    /// from the index cache). `meta` must be in canonical order (ascending
    /// unique table ids, as [`table_metas`] produces); ordering, snapshot
    /// widths, node counts, and dimensions are all validated so a garbled
    /// cache surfaces as a typed [`StoreError::Corrupt`], never a panic.
    pub fn from_meta(
        meta: Vec<TableMeta>,
        minhash_k: usize,
        join_index: Hnsw,
        union_index: Hnsw,
    ) -> StoreResult<Self> {
        for w in meta.windows(2) {
            if w[0].table_id >= w[1].table_id {
                return Err(StoreError::corrupt(
                    "TSFMIDX1",
                    format!(
                        "engine metadata ids out of order: {:?} then {:?}",
                        w[0].table_id, w[1].table_id
                    ),
                ));
            }
        }
        let ncols: usize = meta.iter().map(|m| m.column_names.len()).sum();
        check_graphs(ncols, minhash_k, &join_index, &union_index)?;
        let (bands, rows) = content_banding(minhash_k);
        let mut content_lsh = MinHashLsh::new(bands, rows);
        let mut ids = Vec::with_capacity(meta.len());
        let mut col_owner = Vec::with_capacity(ncols);
        let mut col_names = Vec::with_capacity(ncols);
        for (ti, m) in meta.into_iter().enumerate() {
            // Pre-checked so the LSH's width assertion can never fire.
            if m.content_snapshot.k() != minhash_k {
                return Err(StoreError::corrupt(
                    "TSFMIDX1",
                    format!(
                        "table {:?} snapshot width {} does not match signature width {minhash_k}",
                        m.table_id,
                        m.content_snapshot.k()
                    ),
                ));
            }
            content_lsh.add(m.content_snapshot);
            ids.push(m.table_id);
            for name in m.column_names {
                col_owner.push(ti);
                col_names.push(name);
            }
        }
        Ok(Self { minhash_k, ids, col_owner, col_names, join_index, union_index, content_lsh })
    }

    fn assemble(
        records: &[TableRecord],
        order: &[usize],
        minhash_k: usize,
        join_index: Hnsw,
        union_index: Hnsw,
    ) -> Self {
        let (bands, rows) = content_banding(minhash_k);
        let mut content_lsh = MinHashLsh::new(bands, rows);
        let mut ids = Vec::with_capacity(order.len());
        let mut col_owner = Vec::new();
        let mut col_names = Vec::new();
        for (ti, &ri) in order.iter().enumerate() {
            content_lsh.add(records[ri].sketch.content_snapshot.clone());
            ids.push(records[ri].sketch.table_id.clone());
            for c in &records[ri].sketch.columns {
                col_owner.push(ti);
                col_names.push(c.name.clone());
            }
        }
        Self { minhash_k, ids, col_owner, col_names, join_index, union_index, content_lsh }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    pub fn minhash_k(&self) -> usize {
        self.minhash_k
    }

    pub fn join_index(&self) -> &Hnsw {
        &self.join_index
    }

    pub fn union_index(&self) -> &Hnsw {
        &self.union_index
    }

    /// Table ids in corpus (ascending) order.
    pub fn table_ids(&self) -> &[String] {
        &self.ids
    }

    /// Dense index of a table id in the corpus, if present.
    fn table_idx(&self, id: &str) -> Option<usize> {
        self.ids.binary_search_by(|x| x.as_str().cmp(id)).ok()
    }

    /// Run one validated discovery request against the corpus. This is the
    /// primary query entry point; every mode, filter, and explanation path
    /// goes through here.
    pub fn search(
        &self,
        sketch: &TableSketch,
        req: &DiscoveryRequest,
    ) -> StoreResult<DiscoveryResponse> {
        let t0 = std::time::Instant::now();
        let _g = tsfm_obs::span!(match req.mode() {
            QueryMode::Join => "engine.search.join",
            QueryMode::Union => "engine.search.union",
            QueryMode::Subset => "engine.search.subset",
        });
        if self.is_empty() {
            return Err(StoreError::EmptyIndex);
        }
        if sketch.content_snapshot.k() != self.minhash_k {
            return Err(StoreError::invalid(format!(
                "query sketched with signature width {} but the corpus uses {}",
                sketch.content_snapshot.k(),
                self.minhash_k
            )));
        }
        let mut prof = Profiler::new(req.profile());
        let (mut hits, mut explanations) = match req.mode() {
            QueryMode::Join => {
                self.column_search(sketch, req, &self.join_index, join_features, &mut prof)?
            }
            QueryMode::Union => {
                self.column_search(sketch, req, &self.union_index, union_features, &mut prof)?
            }
            QueryMode::Subset => (prof.time("lsh", || self.subset_search(sketch, req)), None),
        };
        if let Some(ms) = req.min_score() {
            // Mode-specific threshold (see DiscoveryRequestBuilder::min_score):
            // subset scores are Jaccards, join/union relevance is RANK1.
            let keep = |h: &TableHit| match req.mode() {
                QueryMode::Subset => h.score >= ms,
                _ => h.matching_columns as f64 >= ms,
            };
            explanations = explanations.map(|ex| {
                ex.into_iter()
                    .zip(&hits)
                    .filter(|(_, h)| keep(h))
                    .map(|(e, _)| e)
                    .collect::<Vec<_>>()
            });
            hits.retain(keep);
        }
        hits.truncate(req.k());
        if let Some(ex) = &mut explanations {
            ex.truncate(req.k());
        }
        let elapsed_micros = t0.elapsed().as_micros() as u64;
        Ok(DiscoveryResponse {
            mode: req.mode(),
            query_id: sketch.table_id.clone(),
            corpus_size: self.len(),
            elapsed_micros,
            hits,
            explanations,
            profile: prof.finish(elapsed_micros),
        })
    }

    /// Batched search: one response per query sketch, identical to calling
    /// [`QueryEngine::search`] serially, but fanned out over scoped threads
    /// sharing `&self` (the engine is immutable, so this is free).
    pub fn search_batch(
        &self,
        sketches: &[TableSketch],
        req: &DiscoveryRequest,
    ) -> StoreResult<Vec<DiscoveryResponse>> {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.search_batch_with_threads(sketches, req, threads)
    }

    /// [`QueryEngine::search_batch`] with an explicit worker count
    /// (`search_batch` picks the host's available parallelism). `0` or
    /// `1` runs the serial path inline.
    pub fn search_batch_with_threads(
        &self,
        sketches: &[TableSketch],
        req: &DiscoveryRequest,
        threads: usize,
    ) -> StoreResult<Vec<DiscoveryResponse>> {
        let n = sketches.len();
        let threads = threads.min(n);
        if threads <= 1 {
            return sketches.iter().map(|s| self.search(s, req)).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Option<StoreResult<DiscoveryResponse>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (out, work) in slots.chunks_mut(chunk).zip(sketches.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, sketch) in out.iter_mut().zip(work) {
                        *slot = Some(self.search(sketch, req));
                    }
                });
            }
        });
        // An unfilled slot means its worker panicked before writing it
        // (scope re-raises worker panics, so this is belt-and-braces for
        // a future panic=abort-less refactor): surface a typed server
        // fault instead of panicking the caller too.
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    Err(StoreError::internal("batch search worker left its slot unfilled"))
                })
            })
            .collect()
    }

    /// Fig.-6 ranking: per query column, retrieve `k·3` nearest corpus
    /// columns, collapse to tables, rank by (matching columns, distance).
    fn column_search(
        &self,
        sketch: &TableSketch,
        req: &DiscoveryRequest,
        index: &Hnsw,
        features: fn(&ColumnSketch, &mut Vec<f32>),
        prof: &mut Profiler,
    ) -> StoreResult<(Vec<TableHit>, Option<Vec<HitExplanation>>)> {
        let query_cols = self.select_columns(sketch, req)?;
        // One feature buffer per request, reused across the query's
        // columns; the HNSW search itself draws visited-list and heap
        // scratch from its per-thread pool, so a batch fan-out worker
        // allocates nothing per query after warmup.
        let mut buf = Vec::new();
        let k_cols = req.k().saturating_mul(OVER_RETRIEVE).max(1);
        // The per-column loop is the query hot path: only the profiled
        // variant pays the stage-timing wrappers, so unprofiled queries
        // keep the tight original shape.
        let per_col: Vec<Vec<ColumnHit>> = if prof.enabled() {
            let mut per_col = Vec::with_capacity(query_cols.len());
            for c in &query_cols {
                prof.time("features", || features(c, &mut buf));
                per_col.push(prof.time("beam", || {
                    index
                        .search(&buf, k_cols)
                        .into_iter()
                        .map(|(col, d)| ColumnHit {
                            table: self.col_owner[col],
                            column: col,
                            distance: d,
                        })
                        .collect()
                }));
            }
            per_col
        } else {
            query_cols
                .iter()
                .map(|c| {
                    features(c, &mut buf);
                    index
                        .search(&buf, k_cols)
                        .into_iter()
                        .map(|(col, d)| ColumnHit {
                            table: self.col_owner[col],
                            column: col,
                            distance: d,
                        })
                        .collect()
                })
                .collect()
        };
        let exclude = if req.exclude_self() { self.table_idx(&sketch.table_id) } else { None };
        if !req.explain() {
            let hits = prof.time("rank", || {
                near_tables(&per_col, exclude)
                    .into_iter()
                    .map(|r| TableHit {
                        table_id: self.ids[r.table].clone(),
                        matching_columns: r.matching_columns,
                        score: r.distance_sum as f64,
                    })
                    .collect()
            });
            return Ok((hits, None));
        }
        let detailed = prof.time("rank", || near_tables_with_provenance(&per_col, exclude));
        let mut hits = Vec::with_capacity(detailed.len());
        let mut explanations = Vec::with_capacity(detailed.len());
        prof.time("explain", || {
            for d in detailed {
                hits.push(TableHit {
                    table_id: self.ids[d.table].clone(),
                    matching_columns: d.matching_columns,
                    score: d.distance_sum as f64,
                });
                explanations.push(HitExplanation {
                    table_id: self.ids[d.table].clone(),
                    matches: d
                        .matches
                        .iter()
                        .map(|m| ColumnMatch {
                            query_column: query_cols[m.query_column].name.clone(),
                            corpus_column: self.col_names[m.corpus_column].clone(),
                            distance: m.distance,
                        })
                        .collect(),
                });
            }
        });
        Ok((hits, Some(explanations)))
    }

    /// Resolve the request's column filter against the query sketch.
    fn select_columns<'a>(
        &self,
        sketch: &'a TableSketch,
        req: &DiscoveryRequest,
    ) -> StoreResult<Vec<&'a ColumnSketch>> {
        let Some(filter) = req.columns() else {
            return Ok(sketch.columns.iter().collect());
        };
        let mut out = Vec::with_capacity(filter.len());
        for name in filter {
            let col = sketch.columns.iter().find(|c| &c.name == name).ok_or_else(|| {
                StoreError::invalid(format!(
                    "query table {:?} has no column named {name:?}",
                    sketch.table_id
                ))
            })?;
            out.push(col);
        }
        Ok(out)
    }

    fn subset_search(&self, sketch: &TableSketch, req: &DiscoveryRequest) -> Vec<TableHit> {
        let exclude = if req.exclude_self() { self.table_idx(&sketch.table_id) } else { None };
        self.content_lsh
            .search(&sketch.content_snapshot, req.k().saturating_add(1))
            .into_iter()
            .filter(|&(id, _)| Some(id) != exclude)
            .take(req.k())
            .map(|(id, j)| TableHit {
                table_id: self.ids[id].clone(),
                matching_columns: 0,
                score: j,
            })
            .collect()
    }

}

/// Validate pre-built HNSW graphs against the corpus shape: both must
/// hold one node per column at the widths the engine will query them at.
fn check_graphs(
    ncols: usize,
    minhash_k: usize,
    join_index: &Hnsw,
    union_index: &Hnsw,
) -> StoreResult<()> {
    if join_index.len() != ncols || union_index.len() != ncols {
        return Err(StoreError::corrupt(
            "TSFMIDX1",
            format!(
                "index has {}/{} nodes for {} columns",
                join_index.len(),
                union_index.len(),
                ncols
            ),
        ));
    }
    let union_dim = 2 * minhash_k + tsfm_sketch::numeric::NUMERIC_SKETCH_DIM;
    if join_index.dim() != minhash_k || union_index.dim() != union_dim {
        return Err(StoreError::corrupt(
            "TSFMIDX1",
            format!(
                "index dims {}/{} do not match signature width {minhash_k}",
                join_index.dim(),
                union_index.dim()
            ),
        ));
    }
    Ok(())
}

/// Indices of `records` in ascending table-id order, keeping only the last
/// record of any duplicated id.
fn canonical_order(records: &[TableRecord]) -> Vec<usize> {
    let mut by_id: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        by_id.insert(r.table_id(), i);
    }
    by_id.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_sketch::{SketchConfig, TableSketch};
    use tsfm_table::{Column, Table, Value};

    fn table(id: &str, col: &str, vals: &[&str]) -> Table {
        let mut t = Table::new(id, id);
        t.push_column(Column::new(
            col,
            vals.iter().map(|v| Value::Str((*v).into())).collect(),
        ));
        t
    }

    fn corpus() -> (Vec<TableRecord>, SketchConfig) {
        let cfg = SketchConfig::default();
        let vals_a: Vec<String> = (0..60).map(|i| format!("alpha-{i}")).collect();
        let vals_b: Vec<String> = (0..60).map(|i| format!("beta-{i}")).collect();
        let tables = [
            table("a0", "key", &vals_a.iter().map(String::as_str).collect::<Vec<_>>()),
            table("a1", "key2", &vals_a.iter().take(50).map(String::as_str).collect::<Vec<_>>()),
            table("b0", "other", &vals_b.iter().map(String::as_str).collect::<Vec<_>>()),
        ];
        let recs = tables
            .iter()
            .map(|t| TableRecord::from_sketch(TableSketch::build(t, &cfg), 0))
            .collect();
        (recs, cfg)
    }

    fn req(mode: QueryMode, k: usize) -> DiscoveryRequest {
        DiscoveryRequest::builder(mode).k(k).build().unwrap()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryEngine>();
    }

    #[test]
    fn join_finds_overlapping_table_and_excludes_self() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let hits = engine.search(&recs[0].sketch, &req(QueryMode::Join, 2)).unwrap().hits;
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table_id, "a1", "value-overlapping table ranks first: {hits:?}");
        assert!(hits.iter().all(|h| h.table_id != "a0"), "query excluded");
    }

    #[test]
    fn exclude_self_false_returns_the_query_table_first() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let r = DiscoveryRequest::builder(QueryMode::Join).k(3).exclude_self(false).build().unwrap();
        let hits = engine.search(&recs[0].sketch, &r).unwrap().hits;
        assert_eq!(hits[0].table_id, "a0", "a table trivially matches itself: {hits:?}");
    }

    #[test]
    fn build_is_input_order_invariant() {
        let (mut recs, cfg) = corpus();
        let a = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        recs.reverse();
        let b = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let q = &recs.iter().find(|r| r.table_id() == "a0").unwrap().sketch;
        for mode in QueryMode::ALL {
            assert_eq!(
                a.search(q, &req(mode, 3)).unwrap().hits,
                b.search(q, &req(mode, 3)).unwrap().hits
            );
        }
    }

    #[test]
    fn with_graphs_matches_fresh_build() {
        let (recs, cfg) = corpus();
        let built = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let restored = QueryEngine::with_graphs(
            &recs,
            cfg.minhash_k,
            tsfm_search::Hnsw::from_snapshot(built.join_index().snapshot()).unwrap(),
            tsfm_search::Hnsw::from_snapshot(built.union_index().snapshot()).unwrap(),
        )
        .unwrap();
        for mode in QueryMode::ALL {
            assert_eq!(
                built.search(&recs[0].sketch, &req(mode, 3)).unwrap().hits,
                restored.search(&recs[0].sketch, &req(mode, 3)).unwrap().hits
            );
        }
    }

    #[test]
    fn from_meta_matches_fresh_build() {
        let (recs, cfg) = corpus();
        let built = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let restored = QueryEngine::from_meta(
            table_metas(&recs),
            cfg.minhash_k,
            tsfm_search::Hnsw::from_snapshot(built.join_index().snapshot()).unwrap(),
            tsfm_search::Hnsw::from_snapshot(built.union_index().snapshot()).unwrap(),
        )
        .unwrap();
        assert_eq!(restored.table_ids(), built.table_ids());
        for mode in QueryMode::ALL {
            let r = DiscoveryRequest::builder(mode).k(3).explain(mode != QueryMode::Subset).build().unwrap();
            for rec in &recs {
                let a = built.search(&rec.sketch, &r).unwrap();
                let b = restored.search(&rec.sketch, &r).unwrap();
                assert_eq!(a.hits, b.hits, "mode {mode}");
                assert_eq!(a.explanations, b.explanations, "mode {mode}");
            }
        }
    }

    #[test]
    fn from_meta_rejects_unordered_or_mismatched_meta() {
        let (recs, cfg) = corpus();
        let built = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let graphs = || {
            (
                tsfm_search::Hnsw::from_snapshot(built.join_index().snapshot()).unwrap(),
                tsfm_search::Hnsw::from_snapshot(built.union_index().snapshot()).unwrap(),
            )
        };
        // Out-of-order ids.
        let mut meta = table_metas(&recs);
        meta.swap(0, 1);
        let (j, u) = graphs();
        let Err(err) = QueryEngine::from_meta(meta, cfg.minhash_k, j, u) else {
            panic!("unordered meta must be rejected")
        };
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("out of order"), "{err}");
        // A dropped table leaves the graphs with too many nodes.
        let mut meta = table_metas(&recs);
        meta.pop();
        let (j, u) = graphs();
        let Err(err) = QueryEngine::from_meta(meta, cfg.minhash_k, j, u) else {
            panic!("undersized meta must be rejected")
        };
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // A snapshot of the wrong width is caught before the LSH asserts.
        let mut meta = table_metas(&recs);
        meta[0].content_snapshot = MinHash { sig: vec![1, 2] };
        let (j, u) = graphs();
        let Err(err) = QueryEngine::from_meta(meta, cfg.minhash_k, j, u) else {
            panic!("wrong-width snapshot must be rejected")
        };
        assert!(err.to_string().contains("snapshot width"), "{err}");
    }

    #[test]
    fn with_graphs_rejects_mismatched_graphs() {
        let (recs, cfg) = corpus();
        let built = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let empty = tsfm_search::Hnsw::new(cfg.minhash_k, Metric::Cosine, Default::default());
        let join = tsfm_search::Hnsw::from_snapshot(built.join_index().snapshot()).unwrap();
        let Err(err) = QueryEngine::with_graphs(&recs, cfg.minhash_k, join, empty) else {
            panic!("mismatched graphs must be rejected")
        };
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn subset_ranks_row_subset_first() {
        let cfg = SketchConfig::default();
        let vals: Vec<String> = (0..100).map(|i| format!("row-{i}")).collect();
        let all: Vec<&str> = vals.iter().map(String::as_str).collect();
        let tables = [
            table("base", "c", &all),
            table("half", "c", &all[..50]),
            table("unrelated", "c", &["x", "y", "z"]),
        ];
        let recs: Vec<TableRecord> = tables
            .iter()
            .map(|t| TableRecord::from_sketch(TableSketch::build(t, &cfg), 0))
            .collect();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let hits = engine.search(&recs[0].sketch, &req(QueryMode::Subset, 2)).unwrap().hits;
        assert_eq!(hits[0].table_id, "half", "{hits:?}");
        assert!(hits[0].score > 0.2);

        // min_score drops the unrelated tail but keeps the true subset.
        let r = DiscoveryRequest::builder(QueryMode::Subset).k(2).min_score(0.2).build().unwrap();
        let filtered = engine.search(&recs[0].sketch, &r).unwrap().hits;
        assert!(filtered.iter().all(|h| h.score >= 0.2), "{filtered:?}");
        assert_eq!(filtered[0].table_id, "half");
    }

    #[test]
    fn mismatched_query_width_is_invalid_request() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let narrow = SketchConfig { minhash_k: cfg.minhash_k / 2, ..cfg };
        let q = TableSketch::build(&table("q", "c", &["v"]), &narrow);
        let err = engine.search(&q, &req(QueryMode::Join, 1)).unwrap_err();
        assert!(matches!(err, StoreError::InvalidRequest(_)), "{err}");
        assert!(err.to_string().contains("signature width"), "{err}");
    }

    #[test]
    fn empty_corpus_is_empty_index_error() {
        let cfg = SketchConfig::default();
        let engine = QueryEngine::build(&[], cfg.minhash_k, Default::default());
        let q = TableSketch::build(&table("q", "c", &["v"]), &cfg);
        let err = engine.search(&q, &req(QueryMode::Join, 1)).unwrap_err();
        assert!(matches!(err, StoreError::EmptyIndex), "{err}");
    }

    #[test]
    fn unknown_filter_column_is_invalid_request() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let r = DiscoveryRequest::builder(QueryMode::Join)
            .k(2)
            .columns(["no_such_column"])
            .build()
            .unwrap();
        let err = engine.search(&recs[0].sketch, &r).unwrap_err();
        assert!(err.to_string().contains("no_such_column"), "{err}");
    }

    #[test]
    fn explanations_name_matching_columns() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let r = DiscoveryRequest::builder(QueryMode::Join).k(2).explain(true).build().unwrap();
        let resp = engine.search(&recs[0].sketch, &r).unwrap();
        let ex = resp.explanations.as_ref().expect("explain requested");
        assert_eq!(ex.len(), resp.hits.len());
        // Ranks agree, and the top hit's match names real columns.
        assert_eq!(ex[0].table_id, resp.hits[0].table_id);
        assert_eq!(ex[0].table_id, "a1");
        assert_eq!(ex[0].matches.len(), 1);
        assert_eq!(ex[0].matches[0].query_column, "key");
        assert_eq!(ex[0].matches[0].corpus_column, "key2");

        // Same request without explain: identical hits, no explanations.
        let plain = engine.search(&recs[0].sketch, &req(QueryMode::Join, 2)).unwrap();
        assert_eq!(plain.hits, resp.hits);
        assert!(plain.explanations.is_none());
    }

    #[test]
    fn profile_breakdown_partitions_elapsed() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        for mode in QueryMode::ALL {
            let r = DiscoveryRequest::builder(mode).k(2).profile(true).build().unwrap();
            let resp = engine.search(&recs[0].sketch, &r).unwrap();
            let prof = resp.profile.expect("profile requested");
            // Stages partition the elapsed time: every stage is a
            // truncated sub-interval and "other" absorbs the remainder,
            // so the sum reproduces elapsed_micros exactly.
            let sum: u64 = prof.iter().map(|(_, us)| *us).sum();
            assert_eq!(sum, resp.elapsed_micros, "mode {mode}: {prof:?}");
            assert_eq!(prof.last().expect("never empty").0, "other", "{prof:?}");

            // Profiling never changes results, and unprofiled responses
            // carry no breakdown.
            let plain = engine.search(&recs[0].sketch, &req(mode, 2)).unwrap();
            assert_eq!(plain.hits, resp.hits, "mode {mode}");
            assert!(plain.profile.is_none());
        }
    }

    #[test]
    fn search_batch_matches_serial() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let sketches: Vec<TableSketch> = recs.iter().map(|r| r.sketch.clone()).collect();
        for mode in QueryMode::ALL {
            let r = req(mode, 3);
            // Force the scoped-thread fan-out even on single-core hosts
            // (where search_batch would pick the serial path), plus the
            // auto and explicitly-serial variants — all must agree.
            for batch in [
                engine.search_batch(&sketches, &r).unwrap(),
                engine.search_batch_with_threads(&sketches, &r, 2).unwrap(),
                engine.search_batch_with_threads(&sketches, &r, 1).unwrap(),
                engine.search_batch_with_threads(&sketches, &r, 64).unwrap(),
            ] {
                assert_eq!(batch.len(), sketches.len());
                for (s, b) in sketches.iter().zip(&batch) {
                    assert_eq!(engine.search(s, &r).unwrap().hits, b.hits, "mode {mode}");
                }
            }
        }
    }

    #[test]
    fn k_zero_is_rejected_at_request_build() {
        // The deprecated positional shims (removed after their one-PR
        // grace period) used to silently return empty results for k == 0;
        // the request builder is now the only entrance and it rejects it.
        let err = DiscoveryRequest::builder(QueryMode::Join).k(0).build().unwrap_err();
        assert!(matches!(err, StoreError::InvalidRequest(_)), "{err}");
    }

    #[test]
    fn mode_from_str_and_display() {
        for mode in QueryMode::ALL {
            assert_eq!(mode.name().parse::<QueryMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        let err = "fuzzy".parse::<QueryMode>().unwrap_err();
        assert!(matches!(err, StoreError::InvalidRequest(_)));
        let msg = err.to_string();
        assert!(
            msg.contains("join") && msg.contains("union") && msg.contains("subset"),
            "error lists valid modes: {msg}"
        );
    }
}
