//! The sketch-based query engine shared by the in-memory pipeline and the
//! persistent catalog.
//!
//! Built from a set of [`TableRecord`]s (sorted internally by table id so
//! construction is independent of input order), it serves the three data
//! discovery workloads of the paper's §IV-C over three indexes:
//!
//! * **join** — an HNSW over per-column *cell* MinHash features (cosine of
//!   these features tracks value-overlap Jaccard), ranked by the Fig.-6
//!   algorithm ([`tsfm_search::rank`]);
//! * **union** — an HNSW over the full column signature
//!   `[cell ‖ word ‖ numerical]`, so unionable columns match on words and
//!   distribution even without value overlap, ranked by Fig.-6;
//! * **subset** — banded MinHash LSH over table-level content snapshots,
//!   ranked by estimated row-set Jaccard.
//!
//! Because every index is deterministic (see
//! `crates/search/tests/determinism.rs`) and construction order is
//! canonicalized, an engine rebuilt from persisted records answers every
//! query identically to one built from the original in-memory sketches.

use crate::record::TableRecord;
use tsfm_search::{near_tables, ColumnHit, Hnsw, HnswConfig, Metric, MinHashLsh};
use tsfm_sketch::{ColumnSketch, TableSketch};

/// Which discovery workload a query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    Join,
    Union,
    Subset,
}

impl QueryMode {
    pub fn name(self) -> &'static str {
        match self {
            QueryMode::Join => "join",
            QueryMode::Union => "union",
            QueryMode::Subset => "subset",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "join" => Some(QueryMode::Join),
            "union" => Some(QueryMode::Union),
            "subset" => Some(QueryMode::Subset),
            _ => None,
        }
    }
}

/// One ranked result table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableHit {
    pub table_id: String,
    /// Join/union: how many query columns matched (Fig.-6 RANK1 key).
    /// Subset: 0 (the snapshot is table-level, not per-column).
    pub matching_columns: usize,
    /// Join/union: sum of per-column minimum distances (lower is better).
    /// Subset: estimated row-set Jaccard (higher is better).
    pub score: f64,
}

/// Per-query-column over-retrieval factor before Fig.-6 aggregation (the
/// paper retrieves `k·3` columns per query column).
const OVER_RETRIEVE: usize = 3;

/// Immutable query indexes over a fixed corpus of records.
pub struct QueryEngine {
    minhash_k: usize,
    /// Dense index → table id, sorted ascending.
    ids: Vec<String>,
    /// Column index (in both HNSWs) → owning table's dense index.
    col_owner: Vec<usize>,
    join_index: Hnsw,
    union_index: Hnsw,
    content_lsh: MinHashLsh,
}

/// Join feature: the cell-MinHash features alone (`k` wide).
fn join_features(c: &ColumnSketch) -> Vec<f32> {
    c.cell_minhash.to_f32_features()
}

/// Union feature: `[cell ‖ word ‖ numerical]` (`2k + 16` wide).
fn union_features(c: &ColumnSketch) -> Vec<f32> {
    let mut v = c.minhash_features();
    v.extend(c.numeric.to_f32_features());
    v
}

/// LSH banding for a `k`-wide snapshot signature: 2-row bands when `k` is
/// even (collision probability `1−(1−J²)^(k/2)`), else 1-row bands.
fn content_banding(k: usize) -> (usize, usize) {
    if k % 2 == 0 {
        (k / 2, 2)
    } else {
        (k, 1)
    }
}

impl QueryEngine {
    /// Build all three indexes from records. Input order is irrelevant:
    /// records are processed in ascending table-id order, and duplicate ids
    /// keep the *last* occurrence.
    pub fn build(records: &[TableRecord], minhash_k: usize, hnsw_cfg: HnswConfig) -> Self {
        let order = canonical_order(records);
        let mut join_index = Hnsw::new(minhash_k, Metric::Cosine, hnsw_cfg.clone());
        let mut union_index =
            Hnsw::new(2 * minhash_k + tsfm_sketch::numeric::NUMERIC_SKETCH_DIM, Metric::Cosine, hnsw_cfg);
        let mut col_owner = Vec::new();
        for (ti, &ri) in order.iter().enumerate() {
            for c in &records[ri].sketch.columns {
                join_index.add(&join_features(c));
                union_index.add(&union_features(c));
                col_owner.push(ti);
            }
        }
        Self::assemble(records, &order, minhash_k, col_owner, join_index, union_index)
    }

    /// Build from pre-built HNSW graphs (the catalog's index-cache path).
    /// The graphs must have been produced by [`QueryEngine::build`] over
    /// the same records; node counts and dimensions are validated.
    pub fn with_graphs(
        records: &[TableRecord],
        minhash_k: usize,
        join_index: Hnsw,
        union_index: Hnsw,
    ) -> Result<Self, String> {
        let order = canonical_order(records);
        let mut col_owner = Vec::new();
        for (ti, &ri) in order.iter().enumerate() {
            col_owner.extend(std::iter::repeat(ti).take(records[ri].sketch.columns.len()));
        }
        if join_index.len() != col_owner.len() || union_index.len() != col_owner.len() {
            return Err(format!(
                "index has {}/{} nodes for {} columns",
                join_index.len(),
                union_index.len(),
                col_owner.len()
            ));
        }
        let union_dim = 2 * minhash_k + tsfm_sketch::numeric::NUMERIC_SKETCH_DIM;
        if join_index.dim() != minhash_k || union_index.dim() != union_dim {
            return Err(format!(
                "index dims {}/{} do not match signature width {minhash_k}",
                join_index.dim(),
                union_index.dim()
            ));
        }
        Ok(Self::assemble(records, &order, minhash_k, col_owner, join_index, union_index))
    }

    fn assemble(
        records: &[TableRecord],
        order: &[usize],
        minhash_k: usize,
        col_owner: Vec<usize>,
        join_index: Hnsw,
        union_index: Hnsw,
    ) -> Self {
        let (bands, rows) = content_banding(minhash_k);
        let mut content_lsh = MinHashLsh::new(bands, rows);
        let mut ids = Vec::with_capacity(order.len());
        for &ri in order {
            content_lsh.add(records[ri].sketch.content_snapshot.clone());
            ids.push(records[ri].sketch.table_id.clone());
        }
        Self { minhash_k, ids, col_owner, join_index, union_index, content_lsh }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    pub fn minhash_k(&self) -> usize {
        self.minhash_k
    }

    pub fn join_index(&self) -> &Hnsw {
        &self.join_index
    }

    pub fn union_index(&self) -> &Hnsw {
        &self.union_index
    }

    /// Dense index of a table id in the corpus, if present.
    fn table_idx(&self, id: &str) -> Option<usize> {
        self.ids.binary_search_by(|x| x.as_str().cmp(id)).ok()
    }

    /// Rank tables for one query sketch under `mode`. The query table
    /// itself (matched by id) is excluded from the results.
    pub fn query(&self, mode: QueryMode, sketch: &TableSketch, k: usize) -> Vec<TableHit> {
        assert_eq!(
            sketch.content_snapshot.k(),
            self.minhash_k,
            "query sketched with a different signature width than the corpus"
        );
        match mode {
            QueryMode::Join => self.column_query(sketch, k, &self.join_index, join_features),
            QueryMode::Union => self.column_query(sketch, k, &self.union_index, union_features),
            QueryMode::Subset => self.subset_query(sketch, k),
        }
    }

    pub fn query_join(&self, sketch: &TableSketch, k: usize) -> Vec<TableHit> {
        self.query(QueryMode::Join, sketch, k)
    }

    pub fn query_union(&self, sketch: &TableSketch, k: usize) -> Vec<TableHit> {
        self.query(QueryMode::Union, sketch, k)
    }

    pub fn query_subset(&self, sketch: &TableSketch, k: usize) -> Vec<TableHit> {
        self.query(QueryMode::Subset, sketch, k)
    }

    /// Batched query: one result list per query sketch.
    pub fn query_batch(
        &self,
        mode: QueryMode,
        sketches: &[TableSketch],
        k: usize,
    ) -> Vec<Vec<TableHit>> {
        sketches.iter().map(|s| self.query(mode, s, k)).collect()
    }

    /// Fig.-6 ranking: per query column, retrieve `k·3` nearest corpus
    /// columns, collapse to tables, rank by (matching columns, distance).
    fn column_query(
        &self,
        sketch: &TableSketch,
        k: usize,
        index: &Hnsw,
        features: fn(&ColumnSketch) -> Vec<f32>,
    ) -> Vec<TableHit> {
        let per_col: Vec<Vec<ColumnHit>> = sketch
            .columns
            .iter()
            .map(|c| {
                index
                    .search(&features(c), k.saturating_mul(OVER_RETRIEVE).max(1))
                    .into_iter()
                    .map(|(col, d)| ColumnHit { table: self.col_owner[col], distance: d })
                    .collect()
            })
            .collect();
        let exclude = self.table_idx(&sketch.table_id);
        let mut out: Vec<TableHit> = near_tables(&per_col, exclude)
            .into_iter()
            .map(|r| TableHit {
                table_id: self.ids[r.table].clone(),
                matching_columns: r.matching_columns,
                score: r.distance_sum as f64,
            })
            .collect();
        out.truncate(k);
        out
    }

    fn subset_query(&self, sketch: &TableSketch, k: usize) -> Vec<TableHit> {
        let exclude = self.table_idx(&sketch.table_id);
        self.content_lsh
            .search(&sketch.content_snapshot, k.saturating_add(1))
            .into_iter()
            .filter(|&(id, _)| Some(id) != exclude)
            .take(k)
            .map(|(id, j)| TableHit {
                table_id: self.ids[id].clone(),
                matching_columns: 0,
                score: j,
            })
            .collect()
    }
}

/// Indices of `records` in ascending table-id order, keeping only the last
/// record of any duplicated id.
fn canonical_order(records: &[TableRecord]) -> Vec<usize> {
    let mut by_id: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        by_id.insert(r.table_id(), i);
    }
    by_id.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfm_sketch::{SketchConfig, TableSketch};
    use tsfm_table::{Column, Table, Value};

    fn table(id: &str, col: &str, vals: &[&str]) -> Table {
        let mut t = Table::new(id, id);
        t.push_column(Column::new(
            col,
            vals.iter().map(|v| Value::Str((*v).into())).collect(),
        ));
        t
    }

    fn corpus() -> (Vec<TableRecord>, SketchConfig) {
        let cfg = SketchConfig::default();
        let vals_a: Vec<String> = (0..60).map(|i| format!("alpha-{i}")).collect();
        let vals_b: Vec<String> = (0..60).map(|i| format!("beta-{i}")).collect();
        let tables = [
            table("a0", "key", &vals_a.iter().map(String::as_str).collect::<Vec<_>>()),
            table("a1", "key2", &vals_a.iter().take(50).map(String::as_str).collect::<Vec<_>>()),
            table("b0", "other", &vals_b.iter().map(String::as_str).collect::<Vec<_>>()),
        ];
        let recs = tables
            .iter()
            .map(|t| TableRecord::from_sketch(TableSketch::build(t, &cfg), 0))
            .collect();
        (recs, cfg)
    }

    #[test]
    fn join_finds_overlapping_table_and_excludes_self() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let hits = engine.query_join(&recs[0].sketch, 2);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table_id, "a1", "value-overlapping table ranks first: {hits:?}");
        assert!(hits.iter().all(|h| h.table_id != "a0"), "query excluded");
    }

    #[test]
    fn build_is_input_order_invariant() {
        let (mut recs, cfg) = corpus();
        let a = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        recs.reverse();
        let b = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let q = &recs.iter().find(|r| r.table_id() == "a0").unwrap().sketch;
        for mode in [QueryMode::Join, QueryMode::Union, QueryMode::Subset] {
            assert_eq!(a.query(mode, q, 3), b.query(mode, q, 3));
        }
    }

    #[test]
    fn with_graphs_matches_fresh_build() {
        let (recs, cfg) = corpus();
        let built = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let restored = QueryEngine::with_graphs(
            &recs,
            cfg.minhash_k,
            tsfm_search::Hnsw::from_snapshot(built.join_index().snapshot()).unwrap(),
            tsfm_search::Hnsw::from_snapshot(built.union_index().snapshot()).unwrap(),
        )
        .unwrap();
        for mode in [QueryMode::Join, QueryMode::Union, QueryMode::Subset] {
            assert_eq!(
                built.query(mode, &recs[0].sketch, 3),
                restored.query(mode, &recs[0].sketch, 3)
            );
        }
    }

    #[test]
    fn with_graphs_rejects_mismatched_graphs() {
        let (recs, cfg) = corpus();
        let built = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let empty = tsfm_search::Hnsw::new(cfg.minhash_k, Metric::Cosine, Default::default());
        let join = tsfm_search::Hnsw::from_snapshot(built.join_index().snapshot()).unwrap();
        assert!(QueryEngine::with_graphs(&recs, cfg.minhash_k, join, empty).is_err());
    }

    #[test]
    fn subset_ranks_row_subset_first() {
        let cfg = SketchConfig::default();
        let vals: Vec<String> = (0..100).map(|i| format!("row-{i}")).collect();
        let all: Vec<&str> = vals.iter().map(String::as_str).collect();
        let tables = [
            table("base", "c", &all),
            table("half", "c", &all[..50]),
            table("unrelated", "c", &["x", "y", "z"]),
        ];
        let recs: Vec<TableRecord> = tables
            .iter()
            .map(|t| TableRecord::from_sketch(TableSketch::build(t, &cfg), 0))
            .collect();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let hits = engine.query_subset(&recs[0].sketch, 2);
        assert_eq!(hits[0].table_id, "half", "{hits:?}");
        assert!(hits[0].score > 0.2);
    }

    #[test]
    #[should_panic(expected = "different signature width")]
    fn mismatched_query_width_panics() {
        let (recs, cfg) = corpus();
        let engine = QueryEngine::build(&recs, cfg.minhash_k, Default::default());
        let narrow = SketchConfig { minhash_k: cfg.minhash_k / 2, ..cfg };
        let q = TableSketch::build(&table("q", "c", &["v"]), &narrow);
        engine.query_join(&q, 1);
    }
}
