//! The store's error taxonomy.
//!
//! Every fallible operation in `tsfm_store` returns [`StoreError`] instead
//! of stuffing everything through `io::Error`:
//!
//! | variant          | meaning                                              |
//! |------------------|------------------------------------------------------|
//! | `Io`             | the operating system failed us (open/read/write)     |
//! | `Corrupt`        | bytes were read but violate a `TSFM*` format         |
//! | `UnknownTable`   | a table id that is not in the catalog                |
//! | `InvalidRequest` | a caller-supplied request that can never succeed     |
//! | `EmptyIndex`     | a query against a catalog with zero tables           |
//! | `Internal`       | a broken invariant inside the store (worker panic, …)|
//!
//! The split matters operationally: `Io` and `Corrupt` are the server
//! operator's problem (disk, deployment), while `UnknownTable`,
//! `InvalidRequest` and `EmptyIndex` are the client's — the `tsfm serve`
//! frontend maps the former to 5xx-style responses and the latter to
//! 4xx-style ones without string matching.

use std::fmt;
use std::io;

/// Alias used across the crate.
pub type StoreResult<T> = Result<T, StoreError>;

/// Internal placeholder format name used by the low-level frame
/// primitives before a container-level reader attributes the error to a
/// concrete `TSFM*` format via [`StoreError::into_format`].
pub(crate) const FRAME: &str = "frame";

/// What went wrong in the store. See the module docs for the taxonomy.
#[derive(Debug)]
pub enum StoreError {
    /// Operating-system level I/O failure.
    Io(io::Error),
    /// On-disk (or on-wire) bytes violate a versioned format. When the
    /// bytes came from a file, `file` names it and `offset` is the
    /// stream position where decoding stopped (both stamped by
    /// [`crate::durable::read_file_checked`]).
    Corrupt { format: String, detail: String, file: Option<String>, offset: Option<u64> },
    /// The named table is not in the catalog.
    UnknownTable(String),
    /// The request itself is malformed (k == 0, unknown mode, unknown
    /// query column, mismatched sketch config, …).
    InvalidRequest(String),
    /// A query was issued against an empty catalog.
    EmptyIndex,
    /// A broken invariant inside the store itself: a panicked worker
    /// thread, an unfilled result slot, a snapshot that vanished between
    /// build and read. These are bugs — but they surface as a typed,
    /// wire-serializable server fault instead of tearing the process down.
    Internal(String),
}

impl StoreError {
    /// Shorthand for a [`StoreError::Corrupt`] (no file attribution yet).
    pub fn corrupt(format: impl Into<String>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            format: format.into(),
            detail: detail.into(),
            file: None,
            offset: None,
        }
    }

    /// Stamp a `Corrupt` error with the file it came from and the stream
    /// offset where decoding stopped. Errors already attributed to a file
    /// and non-corruption errors pass through unchanged.
    pub fn with_file(self, path: &std::path::Path, at: u64) -> Self {
        match self {
            StoreError::Corrupt { format, detail, file: None, offset: None } => {
                StoreError::Corrupt {
                    format,
                    detail,
                    file: Some(path.display().to_string()),
                    offset: Some(at),
                }
            }
            other => other,
        }
    }

    /// Shorthand for a [`StoreError::InvalidRequest`].
    pub fn invalid(detail: impl Into<String>) -> Self {
        StoreError::InvalidRequest(detail.into())
    }

    /// Shorthand for a [`StoreError::Internal`].
    pub fn internal(detail: impl Into<String>) -> Self {
        StoreError::Internal(detail.into())
    }

    /// Attribute a low-level decode error to a concrete container format:
    /// generic frame-level corruption gets `format` stamped on it, and an
    /// unexpected EOF becomes `Corrupt` (a truncated file is corruption,
    /// not an OS failure). Errors already attributed pass through.
    pub fn into_format(self, format: &str) -> Self {
        match self {
            StoreError::Corrupt { format: f, detail, file, offset } if f == FRAME => {
                StoreError::Corrupt { format: format.into(), detail, file, offset }
            }
            StoreError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                StoreError::corrupt(format, "truncated input")
            }
            other => other,
        }
    }

    /// Whether the fault lies with the request (client) rather than the
    /// store (server). The serve frontend uses this to pick the error
    /// class reported on the wire.
    pub fn is_client_error(&self) -> bool {
        matches!(
            self,
            StoreError::UnknownTable(_) | StoreError::InvalidRequest(_) | StoreError::EmptyIndex
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt { format, detail, file, offset } => {
                write!(f, "corrupt {format} data: {detail}")?;
                if let Some(name) = file {
                    write!(f, " (in {name}")?;
                    if let Some(at) = offset {
                        write!(f, " at offset {at}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            StoreError::UnknownTable(id) => write!(f, "unknown table {id:?}"),
            StoreError::InvalidRequest(detail) => write!(f, "invalid request: {detail}"),
            StoreError::EmptyIndex => {
                write!(f, "the catalog is empty — ingest tables before querying")
            }
            StoreError::Internal(detail) => write!(f, "internal store error: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_format_attributes_frame_and_eof() {
        let e = StoreError::corrupt(FRAME, "unreasonable length").into_format("TSFMSEG1");
        assert!(matches!(&e, StoreError::Corrupt { format, .. } if format == "TSFMSEG1"));

        let eof = StoreError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        let e = eof.into_format("TSFMHNS1");
        assert!(matches!(&e, StoreError::Corrupt { format, detail, .. }
            if format == "TSFMHNS1" && detail == "truncated input"));

        // Already-attributed and genuine I/O errors pass through.
        let e = StoreError::corrupt("TSFMCAT1", "bad count").into_format("TSFMSEG1");
        assert!(matches!(&e, StoreError::Corrupt { format, .. } if format == "TSFMCAT1"));
        let denied = StoreError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "no"));
        assert!(matches!(denied.into_format("TSFMSEG1"), StoreError::Io(_)));
    }

    #[test]
    fn client_vs_server_classification() {
        assert!(StoreError::EmptyIndex.is_client_error());
        assert!(StoreError::invalid("k must be positive").is_client_error());
        assert!(StoreError::UnknownTable("t".into()).is_client_error());
        assert!(!StoreError::corrupt("TSFMSEG1", "x").is_client_error());
        assert!(!StoreError::Io(io::Error::other("x")).is_client_error());
        assert!(!StoreError::internal("worker panicked").is_client_error());
    }

    #[test]
    fn display_is_informative() {
        let s = StoreError::corrupt("TSFMIDX1", "bad fingerprint").to_string();
        assert!(s.contains("TSFMIDX1") && s.contains("bad fingerprint"));
        assert!(StoreError::invalid("k == 0").to_string().contains("k == 0"));
    }

    #[test]
    fn with_file_stamps_corruption_once() {
        let path = std::path::Path::new("/lake/segments/t1.seg");
        let e = StoreError::corrupt("TSFMSEG1", "checksum mismatch").with_file(path, 42);
        let s = e.to_string();
        assert!(s.contains("t1.seg") && s.contains("offset 42"), "{s}");
        // Already-stamped errors keep their original attribution.
        let e2 = e.with_file(std::path::Path::new("/other"), 7);
        assert!(matches!(&e2, StoreError::Corrupt { file: Some(f), offset: Some(42), .. }
            if f.contains("t1.seg")));
        // Non-corruption errors pass through untouched.
        let io = StoreError::Io(io::Error::other("x")).with_file(path, 0);
        assert!(matches!(io, StoreError::Io(_)));
    }
}
