//! Offline catalog verification and repair — the engine behind the
//! `tsfm fsck` CLI verb.
//!
//! [`fsck`] walks a catalog directory and verifies everything the serving
//! path trusts: the manifest frame, every segment's CRC32C and its
//! agreement with the manifest entry (content hash *and* table id), every
//! shard's manifest + arena (header, offset table, and a CRC-verified
//! positioned read of each active slot), missing and orphaned files in
//! both tiers, leftover `.tmp` staging files, and the index cache
//! (checksum + fingerprint over the merged loose+sharded contents).
//! Damage is reported as typed [`Problem`]s and rendered as one
//! structured JSON object.
//!
//! With `repair = true` a damaged store degrades to a smaller-but-correct
//! one instead of refusing to open: bad segments are quarantined (moved
//! to `<dir>/quarantine/`, never deleted — an operator can recover bytes
//! from them), their manifest entries dropped, a damaged *shard* is
//! quarantined as a unit (both its files; the other shards keep serving),
//! `.tmp` garbage removed, the pruned manifest committed durably, and the
//! HNSW index cache rebuilt. The one thing repair will not invent is the
//! manifest itself: the sketch configuration is not recoverable from
//! segments alone, so a corrupt manifest is reported and left for
//! restore-from-backup.

use crate::catalog::{self, fingerprint_pairs, read_index_cache, Catalog, ManifestEntry};
use crate::durable;
use crate::error::{StoreError, StoreResult};
use crate::ser;
use crate::shard::{self, ArenaIndex, ShardManifest, ShardMeta};
use crate::wire::escape_json;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{self, File};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use tsfm_sketch::SketchConfig;

/// Where repair moves bad segments (inside the catalog directory).
pub const QUARANTINE_DIR: &str = "quarantine";

/// One verified defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    pub kind: ProblemKind,
    /// Path relative to the catalog directory.
    pub file: String,
    /// The table the file backs, when the manifest knows it.
    pub table: Option<String>,
    pub detail: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// The manifest itself fails checksum or parse — nothing below it can
    /// be trusted, and repair cannot reconstruct it.
    CorruptManifest,
    /// A segment fails its checksum, fails to parse, or disagrees with
    /// its manifest entry.
    CorruptSegment,
    /// The manifest references a segment file that does not exist.
    MissingSegment,
    /// A segment file no manifest entry references (e.g. written by a
    /// crashed ingest whose manifest never committed).
    OrphanSegment,
    /// A shard manifest or arena fails its checksum, disagrees with the
    /// root manifest, or holds a slot whose payload disagrees with the
    /// shard's own entry.
    CorruptShard,
    /// The root manifest references a shard file that does not exist.
    MissingShard,
    /// A file under `shards/` no root-manifest meta references (e.g.
    /// written by a crashed compaction whose root flip never happened).
    OrphanShard,
    /// A leftover `.tmp` staging file from an interrupted commit.
    TmpFile,
}

impl ProblemKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ProblemKind::CorruptManifest => "corrupt_manifest",
            ProblemKind::CorruptSegment => "corrupt_segment",
            ProblemKind::MissingSegment => "missing_segment",
            ProblemKind::OrphanSegment => "orphan_segment",
            ProblemKind::CorruptShard => "corrupt_shard",
            ProblemKind::MissingShard => "missing_shard",
            ProblemKind::OrphanShard => "orphan_shard",
            ProblemKind::TmpFile => "tmp_file",
        }
    }
}

/// Index cache verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCacheState {
    /// Checksums verify and the fingerprint matches the manifest.
    Valid,
    /// No cache file — the next snapshot rebuilds it; not damage.
    Absent,
    /// Readable but keyed to different contents (stale fingerprint, or a
    /// corrupt manifest left nothing to compare against).
    Stale,
    Corrupt(String),
}

impl IndexCacheState {
    pub fn as_str(&self) -> &'static str {
        match self {
            IndexCacheState::Valid => "valid",
            IndexCacheState::Absent => "absent",
            IndexCacheState::Stale => "stale",
            IndexCacheState::Corrupt(_) => "corrupt",
        }
    }
}

/// What `repair` actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Files moved into `quarantine/` (relative paths).
    pub quarantined: Vec<String>,
    /// Table ids dropped from the manifest (their segments were corrupt
    /// or missing).
    pub dropped_tables: Vec<String>,
    /// `.tmp` staging files removed.
    pub removed_tmp: Vec<String>,
    /// Whether the HNSW index cache was rebuilt from the surviving
    /// segments.
    pub index_rebuilt: bool,
}

impl RepairSummary {
    fn actions(&self) -> u64 {
        (self.quarantined.len()
            + self.dropped_tables.len()
            + self.removed_tmp.len()
            + usize::from(self.index_rebuilt)) as u64
    }
}

/// The full verification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Catalog directory as given.
    pub catalog: String,
    /// Tables the manifest declares.
    pub tables: usize,
    /// Segments that verified end to end.
    pub segments_ok: usize,
    /// Surviving pre-checksum (v1) frames — readable, but unprotected
    /// until a rewrite migrates them.
    pub v1_segments: usize,
    pub problems: Vec<Problem>,
    pub index_cache: IndexCacheState,
    /// Present when `repair` ran and took at least one action.
    pub repair: Option<RepairSummary>,
}

impl FsckReport {
    /// Whether the store verified clean (pre-repair state). A stale or
    /// absent index cache is not damage — the next snapshot rebuilds it.
    pub fn healthy(&self) -> bool {
        self.problems.is_empty() && !matches!(self.index_cache, IndexCacheState::Corrupt(_))
    }

    /// Whether the store is consistent *now*: either it verified clean,
    /// or repair ran and dealt with every problem (a corrupt manifest is
    /// the unrepairable case and keeps this `false`).
    pub fn consistent_after(&self) -> bool {
        self.healthy()
            || (self.repair.is_some()
                && !self.problems.iter().any(|p| p.kind == ProblemKind::CorruptManifest))
    }

    /// The report as one structured JSON object (the `tsfm fsck` output).
    pub fn to_json(&self) -> String {
        let problems: Vec<String> = self
            .problems
            .iter()
            .map(|p| {
                let table = p
                    .table
                    .as_ref()
                    .map_or_else(|| "null".to_string(), |t| format!("\"{}\"", escape_json(t)));
                format!(
                    "{{\"kind\":\"{}\",\"file\":\"{}\",\"table\":{},\"detail\":\"{}\"}}",
                    p.kind.as_str(),
                    escape_json(&p.file),
                    table,
                    escape_json(&p.detail)
                )
            })
            .collect();
        let mut out = format!(
            "{{\"catalog\":\"{}\",\"tables\":{},\"segments_ok\":{},\"v1_segments\":{},\
             \"problems\":[{}],\"index_cache\":\"{}\",\"healthy\":{}",
            escape_json(&self.catalog),
            self.tables,
            self.segments_ok,
            self.v1_segments,
            problems.join(","),
            self.index_cache.as_str(),
            self.healthy()
        );
        if let Some(r) = &self.repair {
            let list = |v: &[String]| -> String {
                let items: Vec<String> =
                    v.iter().map(|s| format!("\"{}\"", escape_json(s))).collect();
                format!("[{}]", items.join(","))
            };
            out.push_str(&format!(
                ",\"repair\":{{\"quarantined\":{},\"dropped_tables\":{},\"removed_tmp\":{},\
                 \"index_rebuilt\":{}}}",
                list(&r.quarantined),
                list(&r.dropped_tables),
                list(&r.removed_tmp),
                r.index_rebuilt
            ));
        }
        out.push('}');
        out
    }
}

/// Verify (and optionally repair) the catalog at `dir`. See the module
/// docs for what is checked and what repair does. Returns `Err` only for
/// environmental failures (the directory is not a catalog, repair I/O
/// failed); damage found in the store comes back inside the report.
pub fn fsck(dir: &Path, repair: bool) -> StoreResult<FsckReport> {
    let manifest_path = dir.join(catalog::MANIFEST_FILE);
    if !manifest_path.exists() {
        return Err(StoreError::invalid(format!(
            "{} is not a catalog (no {} found)",
            dir.display(),
            catalog::MANIFEST_FILE
        )));
    }
    let mut report = FsckReport {
        catalog: dir.display().to_string(),
        tables: 0,
        segments_ok: 0,
        v1_segments: 0,
        problems: Vec::new(),
        index_cache: IndexCacheState::Absent,
        repair: None,
    };

    let manifest = catalog::read_manifest(&manifest_path);
    let (cfg, entries, metas, tombstones) = match manifest {
        Ok(v) => v,
        Err(e) => {
            report.problems.push(Problem {
                kind: ProblemKind::CorruptManifest,
                file: catalog::MANIFEST_FILE.to_string(),
                table: None,
                detail: e.to_string(),
            });
            // Still classify the index cache so the report is complete,
            // even though nothing can validate its fingerprint.
            report.index_cache = match read_index_cache(&dir.join(catalog::INDEX_FILE)) {
                Ok(_) => IndexCacheState::Stale,
                Err(StoreError::Io(ref io)) if io.kind() == std::io::ErrorKind::NotFound => {
                    IndexCacheState::Absent
                }
                Err(e) => IndexCacheState::Corrupt(e.to_string()),
            };
            return Ok(report);
        }
    };
    let sharded_total: u64 = metas.iter().flatten().map(|m| m.entry_count).sum();
    report.tables = entries.len()
        + sharded_total.saturating_sub(tombstones.len() as u64) as usize;

    // ---- segments: every checksum, every manifest agreement ----
    let seg_dir = dir.join(catalog::SEGMENT_DIR);
    let mut bad_tables: Vec<String> = Vec::new();
    let mut quarantine: Vec<PathBuf> = Vec::new();
    for (id, entry) in &entries {
        let rel = format!("{}/{}", catalog::SEGMENT_DIR, entry.segment);
        let path = seg_dir.join(&entry.segment);
        if !path.exists() {
            report.problems.push(Problem {
                kind: ProblemKind::MissingSegment,
                file: rel,
                table: Some(id.clone()),
                detail: "manifest references a segment that is not on disk".to_string(),
            });
            bad_tables.push(id.clone());
            continue;
        }
        if frame_version(&path) == Some(ser::LEGACY_VERSION) {
            report.v1_segments += 1;
        }
        let verified = durable::read_file_checked(&path, |r| {
            let rec = ser::read_record(r)?;
            if rec.content_hash != entry.content_hash || rec.table_id() != id {
                return Err(StoreError::corrupt(
                    "TSFMSEG1",
                    format!(
                        "segment holds table {:?} hash {:#x}, manifest expects {id:?} hash {:#x}",
                        rec.table_id(),
                        rec.content_hash,
                        entry.content_hash
                    ),
                ));
            }
            Ok(())
        });
        match verified {
            Ok(()) => report.segments_ok += 1,
            Err(e) => {
                report.problems.push(Problem {
                    kind: ProblemKind::CorruptSegment,
                    file: rel,
                    table: Some(id.clone()),
                    detail: e.to_string(),
                });
                bad_tables.push(id.clone());
                quarantine.push(path);
            }
        }
    }

    // ---- shard layer: manifests, arenas, every active slot ----
    let shard_dir = dir.join(shard::SHARD_DIR);
    let space = metas.len() as u32;
    let mut bad_shards: Vec<u32> = Vec::new();
    let mut shard_quarantine: Vec<PathBuf> = Vec::new();
    let mut shard_dropped: Vec<String> = Vec::new();
    let mut shard_manifests: Vec<Option<ShardManifest>> = vec![None; metas.len()];
    for meta in metas.iter().flatten() {
        let srel = format!("{}/{}", shard::SHARD_DIR, meta.shard_file());
        let arel = format!("{}/{}", shard::SHARD_DIR, meta.arena_file());
        let spath = shard_dir.join(meta.shard_file());
        let apath = shard_dir.join(meta.arena_file());
        let mut shard_ok = true;

        let sm = if spath.exists() {
            match shard::read_shard_manifest(&spath) {
                Ok(m) => {
                    if m.index != meta.index
                        || m.generation != meta.generation
                        || m.shard_count != space
                        || m.entries.len() as u64 != meta.entry_count
                    {
                        report.problems.push(Problem {
                            kind: ProblemKind::CorruptShard,
                            file: srel.clone(),
                            table: None,
                            detail: format!(
                                "shard file says (shard {} of {}, generation {}, {} entries); \
                                 root manifest says (shard {} of {space}, generation {}, {} \
                                 entries)",
                                m.index,
                                m.shard_count,
                                m.generation,
                                m.entries.len(),
                                meta.index,
                                meta.generation,
                                meta.entry_count
                            ),
                        });
                        shard_ok = false;
                    }
                    Some(m)
                }
                Err(e) => {
                    report.problems.push(Problem {
                        kind: ProblemKind::CorruptShard,
                        file: srel.clone(),
                        table: None,
                        detail: e.to_string(),
                    });
                    shard_ok = false;
                    None
                }
            }
        } else {
            report.problems.push(Problem {
                kind: ProblemKind::MissingShard,
                file: srel.clone(),
                table: None,
                detail: "root manifest references a shard file that is not on disk".to_string(),
            });
            shard_ok = false;
            None
        };

        match ArenaIndex::open(&apath, meta) {
            Ok(arena) => {
                // A CRC-verified positioned read of every *active* slot
                // (tombstoned or loose-shadowed slots are dead data).
                if let Some(m) = sm.as_ref().filter(|_| shard_ok) {
                    for (i, e) in m.entries.iter().enumerate() {
                        if tombstones.contains(&e.id) || entries.contains_key(&e.id) {
                            continue;
                        }
                        let slot_ok = match arena.read_record(i) {
                            Ok(rec) => {
                                if rec.content_hash == e.content_hash && rec.table_id() == e.id {
                                    Ok(())
                                } else {
                                    Err(format!(
                                        "slot {i} holds table {:?} hash {:#x}, shard manifest \
                                         expects {:?} hash {:#x}",
                                        rec.table_id(),
                                        rec.content_hash,
                                        e.id,
                                        e.content_hash
                                    ))
                                }
                            }
                            Err(err) => Err(err.to_string()),
                        };
                        match slot_ok {
                            Ok(()) => report.segments_ok += 1,
                            Err(detail) => {
                                report.problems.push(Problem {
                                    kind: ProblemKind::CorruptShard,
                                    file: arel.clone(),
                                    table: Some(e.id.clone()),
                                    detail,
                                });
                                shard_ok = false;
                            }
                        }
                    }
                }
            }
            Err(err) => {
                let kind = match &err {
                    StoreError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
                        ProblemKind::MissingShard
                    }
                    _ => ProblemKind::CorruptShard,
                };
                report.problems.push(Problem {
                    kind,
                    file: arel.clone(),
                    table: None,
                    detail: err.to_string(),
                });
                shard_ok = false;
            }
        }

        if shard_ok {
            shard_manifests[meta.index as usize] = sm;
        } else {
            bad_shards.push(meta.index);
            for p in [&spath, &apath] {
                if p.exists() {
                    shard_quarantine.push(p.clone());
                }
            }
            if let Some(m) = &sm {
                shard_dropped.extend(
                    m.entries
                        .iter()
                        .filter(|e| !tombstones.contains(&e.id) && !entries.contains_key(&e.id))
                        .map(|e| e.id.clone()),
                );
            }
        }
    }

    // ---- orphans and staging leftovers ----
    let referenced: std::collections::BTreeSet<&str> =
        entries.values().map(|e| e.segment.as_str()).collect();
    let mut tmp_files: Vec<PathBuf> = Vec::new();
    if seg_dir.is_dir() {
        let mut names: Vec<String> = fs::read_dir(&seg_dir)?
            .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().to_string()))
            .collect();
        names.sort();
        for name in names {
            if referenced.contains(name.as_str()) {
                continue;
            }
            let path = seg_dir.join(&name);
            let rel = format!("{}/{name}", catalog::SEGMENT_DIR);
            if name.ends_with(".tmp") {
                report.problems.push(Problem {
                    kind: ProblemKind::TmpFile,
                    file: rel,
                    table: None,
                    detail: "staging file left by an interrupted commit".to_string(),
                });
                tmp_files.push(path);
            } else {
                report.problems.push(Problem {
                    kind: ProblemKind::OrphanSegment,
                    file: rel,
                    table: None,
                    detail: "no manifest entry references this file".to_string(),
                });
                quarantine.push(path);
            }
        }
    }
    // Files under shards/ no root-manifest meta references: leftovers of
    // a compaction that crashed before its root-manifest flip.
    if shard_dir.is_dir() {
        let shard_referenced: BTreeSet<String> = metas
            .iter()
            .flatten()
            .flat_map(|m| [m.shard_file(), m.arena_file()])
            .collect();
        let mut names: Vec<String> = fs::read_dir(&shard_dir)?
            .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().to_string()))
            .collect();
        names.sort();
        for name in names {
            if shard_referenced.contains(&name) {
                continue;
            }
            let path = shard_dir.join(&name);
            let rel = format!("{}/{name}", shard::SHARD_DIR);
            if name.ends_with(".tmp") {
                report.problems.push(Problem {
                    kind: ProblemKind::TmpFile,
                    file: rel,
                    table: None,
                    detail: "staging file left by an interrupted commit".to_string(),
                });
                tmp_files.push(path);
            } else {
                report.problems.push(Problem {
                    kind: ProblemKind::OrphanShard,
                    file: rel,
                    table: None,
                    detail: "no root-manifest shard references this file".to_string(),
                });
                shard_quarantine.push(path);
            }
        }
    }
    for staging in ["catalog.tmp", "index.tmp"] {
        let path = dir.join(staging);
        if path.exists() {
            report.problems.push(Problem {
                kind: ProblemKind::TmpFile,
                file: staging.to_string(),
                table: None,
                detail: "staging file left by an interrupted commit".to_string(),
            });
            tmp_files.push(path);
        }
    }

    // ---- index cache ----
    // The fingerprint covers the merged active contents of both tiers;
    // with any shard unreadable the expected value is unknowable, so a
    // readable cache degrades to Stale (rebuilt on repair), not Corrupt.
    let merged_fp = if bad_shards.is_empty() {
        let mut pairs: Vec<(&str, u64)> =
            entries.iter().map(|(id, e)| (id.as_str(), e.content_hash)).collect();
        for m in shard_manifests.iter().flatten() {
            for e in &m.entries {
                if !tombstones.contains(&e.id) && !entries.contains_key(&e.id) {
                    pairs.push((e.id.as_str(), e.content_hash));
                }
            }
        }
        pairs.sort_unstable();
        Some(fingerprint_pairs(&cfg, pairs.into_iter()))
    } else {
        None
    };
    let index_path = dir.join(catalog::INDEX_FILE);
    report.index_cache = if index_path.exists() {
        match read_index_cache(&index_path) {
            Ok((fp, ..)) if merged_fp == Some(fp) => IndexCacheState::Valid,
            Ok(_) => IndexCacheState::Stale,
            Err(e) => IndexCacheState::Corrupt(e.to_string()),
        }
    } else {
        IndexCacheState::Absent
    };

    if repair {
        let summary = run_repair(
            dir,
            &cfg,
            &entries,
            &bad_tables,
            &quarantine,
            &tmp_files,
            &report.index_cache,
            &ShardRepair {
                metas: &metas,
                tombstones: &tombstones,
                bad_shards: &bad_shards,
                quarantine: &shard_quarantine,
                dropped: &shard_dropped,
            },
        )?;
        if summary.actions() > 0 {
            tsfm_obs::metrics::global()
                .counter("tsfm_store_fsck_repairs_total", "Repair actions taken by tsfm fsck")
                .add(summary.actions());
            report.repair = Some(summary);
        }
    }
    Ok(report)
}

/// Frame version of a file's leading container, `None` if unreadable.
fn frame_version(path: &Path) -> Option<u32> {
    let mut r = BufReader::new(File::open(path).ok()?);
    ser::read_frame_header(&mut r, ser::SEGMENT_MAGIC, "TSFM segment").ok()
}

/// The shard-layer inputs to [`run_repair`], bundled.
struct ShardRepair<'a> {
    metas: &'a [Option<ShardMeta>],
    tombstones: &'a BTreeSet<String>,
    /// Indices of shards to quarantine as a unit.
    bad_shards: &'a [u32],
    /// Shard-layer files (bad shards' pairs + orphans) to move aside.
    quarantine: &'a [PathBuf],
    /// Active table ids lost with the bad shards (where known).
    dropped: &'a [String],
}

#[allow(clippy::too_many_arguments)]
fn run_repair(
    dir: &Path,
    cfg: &SketchConfig,
    entries: &BTreeMap<String, ManifestEntry>,
    bad_tables: &[String],
    quarantine: &[PathBuf],
    tmp_files: &[PathBuf],
    index_state: &IndexCacheState,
    shards: &ShardRepair<'_>,
) -> StoreResult<RepairSummary> {
    let mut summary = RepairSummary::default();

    if !quarantine.is_empty() {
        let qdir = dir.join(QUARANTINE_DIR);
        fs::create_dir_all(&qdir)?;
        for path in quarantine {
            let name = path.file_name().map(|n| n.to_string_lossy().to_string());
            let Some(name) = name else { continue };
            fs::rename(path, qdir.join(&name))?;
            summary.quarantined.push(format!("{QUARANTINE_DIR}/{name}"));
        }
        durable::sync_dir(&dir.join(catalog::SEGMENT_DIR))?;
    }
    if !shards.quarantine.is_empty() {
        let qdir = dir.join(QUARANTINE_DIR);
        fs::create_dir_all(&qdir)?;
        for path in shards.quarantine {
            let name = path.file_name().map(|n| n.to_string_lossy().to_string());
            let Some(name) = name else { continue };
            fs::rename(path, qdir.join(&name))?;
            summary.quarantined.push(format!("{QUARANTINE_DIR}/{name}"));
        }
        durable::sync_dir(&dir.join(shard::SHARD_DIR))?;
    }
    for path in tmp_files {
        fs::remove_file(path)?;
        summary
            .removed_tmp
            .push(path.file_name().map_or_else(String::new, |n| n.to_string_lossy().to_string()));
    }

    let entries_changed = !bad_tables.is_empty();
    let shards_changed = !shards.bad_shards.is_empty();
    if entries_changed || shards_changed {
        let mut pruned = entries.clone();
        for id in bad_tables {
            pruned.remove(id);
            summary.dropped_tables.push(id.clone());
        }
        summary.dropped_tables.extend(shards.dropped.iter().cloned());
        summary.dropped_tables.sort_unstable();
        // A quarantined shard leaves a hole in the space (its slice of
        // the namespace is empty until the next compaction heals it);
        // tombstones pointing into a hole mark nothing and are dropped.
        let mut metas_after = shards.metas.to_vec();
        for &i in shards.bad_shards {
            metas_after[i as usize] = None;
        }
        let mut tombs_after = shards.tombstones.clone();
        if !metas_after.is_empty() {
            let space = metas_after.len() as u32;
            tombs_after.retain(|id| metas_after[shard::shard_of(id, space) as usize].is_some());
        }
        catalog::write_manifest_file(
            &dir.join(catalog::MANIFEST_FILE),
            cfg,
            &pruned,
            &metas_after,
            &tombs_after,
        )?;
    }

    // Rebuild derived state whenever it cannot be trusted as-is: the
    // manifest changed under it, or it was stale/corrupt to begin with.
    if entries_changed || shards_changed || !matches!(index_state, IndexCacheState::Valid) {
        let _ = fs::remove_file(dir.join(catalog::INDEX_FILE));
        let mut cat = Catalog::open_with(dir, cfg.clone())?;
        cat.searcher()?;
        cat.commit()?;
        summary.index_rebuilt = true;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tsfm_table::{Column, Table, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tsfm_fsck_{tag}_{}_{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn table(id: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(id, id);
        t.push_column(Column::new("v", vals.iter().map(|&v| Value::Int(v)).collect()));
        t
    }

    fn seeded_catalog(dir: &Path, n: i64) -> Catalog {
        let mut cat = Catalog::open(dir).unwrap();
        for i in 0..n {
            cat.add_table(&table(&format!("t{i}"), &[i, i + 1, i + 2]), i as u64 + 100).unwrap();
        }
        cat.searcher().unwrap();
        cat.commit().unwrap();
        cat
    }

    #[test]
    fn clean_store_is_healthy() {
        let dir = tmp_dir("clean");
        drop(seeded_catalog(&dir, 4));
        let report = fsck(&dir, false).unwrap();
        assert!(report.healthy(), "{}", report.to_json());
        assert_eq!((report.tables, report.segments_ok, report.v1_segments), (4, 4, 0));
        assert_eq!(report.index_cache, IndexCacheState::Valid);
        assert!(report.to_json().contains("\"healthy\":true"));
    }

    #[test]
    fn not_a_catalog_is_invalid_request() {
        let dir = tmp_dir("nocat");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(fsck(&dir, false), Err(StoreError::InvalidRequest(_))));
    }

    #[test]
    fn corrupt_segment_detected_and_repaired() {
        let dir = tmp_dir("seg");
        let cat = seeded_catalog(&dir, 4);
        let victim = cat.entry("t2").unwrap().segment.clone();
        drop(cat);
        // Flip one payload bit.
        let path = dir.join(catalog::SEGMENT_DIR).join(&victim);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        let report = fsck(&dir, false).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.segments_ok, 3);
        assert!(report
            .problems
            .iter()
            .any(|p| p.kind == ProblemKind::CorruptSegment
                && p.table.as_deref() == Some("t2")
                && p.detail.contains("checksum mismatch")));

        let repaired = fsck(&dir, true).unwrap();
        assert!(repaired.consistent_after());
        let summary = repaired.repair.expect("repair acted");
        assert_eq!(summary.dropped_tables, vec!["t2".to_string()]);
        assert!(summary.index_rebuilt);
        assert!(dir.join(QUARANTINE_DIR).join(&victim).exists(), "bad bytes preserved");

        // The store is now smaller but green: re-verifies clean and opens.
        let after = fsck(&dir, false).unwrap();
        assert!(after.healthy(), "{}", after.to_json());
        assert_eq!((after.tables, after.segments_ok), (3, 3));
        assert_eq!(after.index_cache, IndexCacheState::Valid);
        let mut cat = Catalog::open(&dir).unwrap();
        assert_eq!(cat.len(), 3);
        assert!(cat.searcher().unwrap().sketch_of("t1").is_ok());
    }

    #[test]
    fn orphan_and_tmp_files_are_swept() {
        let dir = tmp_dir("orphan");
        drop(seeded_catalog(&dir, 2));
        fs::write(dir.join(catalog::SEGMENT_DIR).join("ghost-0000-1.seg"), b"zzz").unwrap();
        fs::write(dir.join(catalog::SEGMENT_DIR).join("half.tmp"), b"partial").unwrap();
        fs::write(dir.join("catalog.tmp"), b"partial").unwrap();

        let report = fsck(&dir, false).unwrap();
        let kinds: Vec<ProblemKind> = report.problems.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&ProblemKind::OrphanSegment));
        assert_eq!(kinds.iter().filter(|k| **k == ProblemKind::TmpFile).count(), 2);

        let repaired = fsck(&dir, true).unwrap();
        let summary = repaired.repair.expect("repair acted");
        assert_eq!(summary.quarantined, vec!["quarantine/ghost-0000-1.seg".to_string()]);
        assert_eq!(summary.removed_tmp.len(), 2);
        assert!(summary.dropped_tables.is_empty(), "good tables untouched");
        assert!(fsck(&dir, false).unwrap().healthy());
    }

    #[test]
    fn missing_segment_detected_and_dropped() {
        let dir = tmp_dir("missing");
        let cat = seeded_catalog(&dir, 3);
        let victim = cat.entry("t0").unwrap().segment.clone();
        drop(cat);
        fs::remove_file(dir.join(catalog::SEGMENT_DIR).join(victim)).unwrap();
        let report = fsck(&dir, false).unwrap();
        assert!(report.problems.iter().any(|p| p.kind == ProblemKind::MissingSegment));
        let repaired = fsck(&dir, true).unwrap();
        assert_eq!(repaired.repair.unwrap().dropped_tables, vec!["t0".to_string()]);
        assert!(fsck(&dir, false).unwrap().healthy());
    }

    #[test]
    fn corrupt_index_cache_detected_and_rebuilt() {
        let dir = tmp_dir("idx");
        drop(seeded_catalog(&dir, 3));
        let path = dir.join(catalog::INDEX_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let report = fsck(&dir, false).unwrap();
        assert!(matches!(report.index_cache, IndexCacheState::Corrupt(_)));
        assert!(!report.healthy());

        let repaired = fsck(&dir, true).unwrap();
        assert!(repaired.repair.unwrap().index_rebuilt);
        let after = fsck(&dir, false).unwrap();
        assert_eq!(after.index_cache, IndexCacheState::Valid);
    }

    #[test]
    fn corrupt_manifest_reported_not_repaired() {
        let dir = tmp_dir("manifest");
        drop(seeded_catalog(&dir, 2));
        let path = dir.join(catalog::MANIFEST_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x80;
        fs::write(&path, &bytes).unwrap();

        let report = fsck(&dir, true).unwrap();
        assert!(report.problems.iter().any(|p| p.kind == ProblemKind::CorruptManifest));
        assert!(!report.healthy());
        assert!(!report.consistent_after(), "a corrupt manifest is not repairable");
        assert!(report.repair.is_none());
    }
}
