//! Persistent data-lake discovery index (`tsfm_store`).
//!
//! Everything upstream of this crate — sketches, embeddings, HNSW, LSH —
//! lives in process memory; this crate makes the serving path durable so
//! index build cost is paid once and amortized across queries:
//!
//! * [`ser`] — versioned little-endian binary serialization (the
//!   `TSFMCKP1` idiom of `tsfm_nn::io`) for MinHash / numerical / table
//!   sketches, embedding matrices, and HNSW graphs, with magic bytes,
//!   bounds checks, and `InvalidData` errors on corrupt input;
//! * [`TableRecord`] — the unit of storage: one table's sketch bundle,
//!   optional neural embeddings, and the content hash of its source;
//! * [`Catalog`] — a directory-backed catalog with incremental ingest
//!   (unchanged sources are detected by content hash and skipped), lazy
//!   index rebuild after mutation, and an on-disk index cache;
//! * [`QueryEngine`] — deterministic join / union / subset ranking over a
//!   record set, reusing the Fig.-6 algorithm of [`tsfm_search::rank`];
//!   the same engine serves the in-memory pipeline and the catalog, which
//!   is what makes persisted results provably identical to fresh ones.
//!
//! The `tsfm` CLI binary (in the umbrella crate) drives this end to end
//! over directories of real CSV files: `tsfm ingest <catalog> <dir>`,
//! `tsfm query <catalog> <csv>`, `tsfm stats <catalog>`.

pub mod catalog;
pub mod engine;
pub mod record;
pub mod ser;

pub use catalog::{Catalog, CatalogStats, IngestOutcome, IngestReport, ManifestEntry};
pub use engine::{QueryEngine, QueryMode, TableHit};
pub use record::TableRecord;
