//! Persistent data-lake discovery index (`tsfm_store`).
//!
//! Everything upstream of this crate — sketches, embeddings, HNSW, LSH —
//! lives in process memory; this crate makes the serving path durable and
//! concurrent so index build cost is paid once and amortized across
//! queries:
//!
//! * [`error`] — the typed [`StoreError`] taxonomy (`Io`, `Corrupt`,
//!   `UnknownTable`, `InvalidRequest`, `EmptyIndex`) every fallible
//!   operation returns;
//! * [`ser`] — versioned little-endian binary serialization (the
//!   `TSFMCKP1` idiom of `tsfm_nn::io`) for MinHash / numerical / table
//!   sketches, embedding matrices, and HNSW graphs, with magic bytes,
//!   CRC32C-checksummed v2 frames, bounds checks, and typed `Corrupt`
//!   errors on bad input;
//! * [`durable`] — the crash-safety layer every store write goes
//!   through: CRC32C, the write-tmp → fsync → rename → dir-sync commit
//!   protocol, offset-attributed checked reads, and the fault-injection
//!   hook the crash-point tests drive;
//! * [`fsck`] — offline verification and repair behind `tsfm fsck`:
//!   every checksum verified, orphaned/missing segments and stale index
//!   caches detected, damage reported as structured JSON, `--repair`
//!   quarantining bad segments and rebuilding derived state;
//! * [`TableRecord`] — the unit of storage: one table's sketch bundle,
//!   optional neural embeddings, and the content hash of its source;
//! * [`Catalog`] — a directory-backed catalog with incremental ingest
//!   (unchanged sources are detected by content hash and skipped), an
//!   epoch counter bumped by every mutation, and an on-disk index cache;
//! * [`shard`] — the million-table layer: hash-partitioned shard
//!   manifests (`TSFMSHD1`) plus flat sketch arenas (`TSFMARN1`) read by
//!   positioned I/O, so opening a compacted catalog is O(shards) and
//!   lazy snapshots load sketches on demand through an LRU cache;
//! * [`Searcher`] — the read path: an immutable `Send + Sync` snapshot
//!   ([`Arc`](std::sync::Arc)-shared [`QueryEngine`] + corpus sketches)
//!   taken via [`Catalog::searcher`], queried concurrently without locks;
//! * [`DiscoveryRequest`] / [`DiscoveryResponse`] — the validated
//!   request builder (mode, k, min_score, exclude_self, column filter,
//!   explain) and the typed response (ranked [`TableHit`]s, per-query
//!   timing, optional per-column match explanations);
//! * [`QueryEngine`] — deterministic join / union / subset ranking over a
//!   record set, reusing the Fig.-6 algorithm of [`tsfm_search::rank`];
//!   the same engine serves the in-memory pipeline and the catalog, which
//!   is what makes persisted results provably identical to fresh ones;
//! * [`wire`] — the hand-rolled JSON layer shared by `tsfm query --json`
//!   and the `tsfm serve` JSONL-over-TCP protocol;
//! * [`serve`] — the production serve frontend: a bounded worker pool
//!   with accept-queue shedding, per-connection read/write timeouts and a
//!   request-line cap, pipelining, graceful shutdown, catalog hot-swap,
//!   and the `stats` ops verb;
//! * [`metrics`] — the lock-free counters and log-bucketed latency
//!   histogram behind the `stats` verb.
//!
//! The `tsfm` CLI binary (in the umbrella crate) drives this end to end
//! over directories of real CSV files: `tsfm ingest <catalog> <dir>`,
//! `tsfm query <catalog> <csv>`, `tsfm serve <catalog> --port N`,
//! `tsfm stats <catalog>`.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod durable;
pub mod engine;
pub mod error;
pub mod fsck;
pub mod metrics;
pub mod record;
pub mod request;
pub mod searcher;
pub mod ser;
pub mod serve;
pub mod shard;
pub mod wire;

pub use catalog::{Catalog, CatalogStats, IngestOutcome, IngestReport, ManifestEntry, SnapshotMode};
pub use fsck::{FsckReport, IndexCacheState, Problem, ProblemKind, RepairSummary};
pub use engine::{table_metas, QueryEngine, QueryMode, TableHit, TableMeta};
pub use error::{StoreError, StoreResult};
pub use record::TableRecord;
pub use request::{
    ColumnMatch, DiscoveryRequest, DiscoveryRequestBuilder, DiscoveryResponse, HitExplanation,
};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use searcher::Searcher;
pub use serve::{ServeConfig, Server, ServerHandle};
pub use wire::{ServeCommand, ServeRequest};
