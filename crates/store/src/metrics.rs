//! Lock-free serving metrics: the operational counters the `stats` and
//! `metrics` wire verbs report.
//!
//! The log-bucketed latency histogram that used to live here was
//! generalized into [`tsfm_obs::metrics::Histogram`] so any crate can
//! record latency distributions; it is re-exported under its historical
//! name ([`LatencyHistogram`]) for existing callers.
//!
//! Everything here is plain atomics — connection workers record into the
//! histogram and bump counters without ever taking a lock, so the ops
//! surface costs the hot path a handful of relaxed atomic increments per
//! request. Snapshots ([`MetricsSnapshot`]) are taken without stopping
//! writers and are therefore only approximately consistent across fields
//! (each individual counter is exact); that is the standard contract for
//! a stats endpoint.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The serve latency histogram: exact below 64µs, log-bucketed (~3%
/// relative error) above. See [`tsfm_obs::metrics::Histogram`].
pub use tsfm_obs::metrics::Histogram as LatencyHistogram;

/// All counters the serve frontend maintains. One instance per server,
/// shared by every connection worker. Field meanings:
///
/// * `accepted` — connections the acceptor took from the listener;
/// * `shed` — connections refused with an `unavailable` reply because the
///   worker pool and the pending queue were both full;
/// * `active` — connections currently owned by a worker (gauge);
/// * `closed_idle` — connections closed for sitting idle between requests
///   longer than the idle timeout;
/// * `closed_slow_read` — connections closed for trickling a request line
///   slower than the read timeout (slowloris defence);
/// * `closed_slow_write` — connections closed because the peer stopped
///   draining replies (write-backpressure bound);
/// * `overlong_lines` — request lines rejected for exceeding the line cap;
/// * `requests_*` — per-request outcomes (`ok` / `client_error` /
///   `server_error` partition `total`, stats requests included);
/// * `latency` — per-query service latency (successful queries only).
#[derive(Default)]
pub struct ServeMetrics {
    pub accepted: AtomicU64,
    pub shed: AtomicU64,
    pub active: AtomicUsize,
    pub closed_idle: AtomicU64,
    pub closed_slow_read: AtomicU64,
    pub closed_slow_write: AtomicU64,
    pub overlong_lines: AtomicU64,
    pub requests_total: AtomicU64,
    pub requests_ok: AtomicU64,
    pub requests_client_error: AtomicU64,
    pub requests_server_error: AtomicU64,
    /// Connection-handler panics contained by the worker pool. Always 0
    /// in a healthy server; any nonzero value is a bug worth a page.
    pub worker_panics: AtomicU64,
    pub latency: LatencyHistogram,
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self { latency: LatencyHistogram::new(), ..Default::default() }
    }

    /// Point-in-time copy of every counter plus derived percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            accepted: r(&self.accepted),
            shed: r(&self.shed),
            active: self.active.load(Ordering::Relaxed),
            closed_idle: r(&self.closed_idle),
            closed_slow_read: r(&self.closed_slow_read),
            closed_slow_write: r(&self.closed_slow_write),
            overlong_lines: r(&self.overlong_lines),
            requests_total: r(&self.requests_total),
            requests_ok: r(&self.requests_ok),
            requests_client_error: r(&self.requests_client_error),
            requests_server_error: r(&self.requests_server_error),
            worker_panics: r(&self.worker_panics),
            latency_count: self.latency.count(),
            latency_mean_us: self.latency.mean(),
            latency_p50_us: self.latency.percentile(0.50),
            latency_p95_us: self.latency.percentile(0.95),
            latency_p99_us: self.latency.percentile(0.99),
            latency_max_us: self.latency.max(),
        }
    }

    /// Render this server's counters as Prometheus text exposition
    /// (`tsfm_serve_*` families). Per-server state renders here — not
    /// through the global registry — so two servers in one process (or
    /// in one test binary) never mix their counts; callers append
    /// `tsfm_obs::metrics::global().prometheus_text()` for the
    /// process-wide instruments.
    pub fn prometheus_text(&self, tables: usize, uptime_ms: u64, reloads: u64) -> String {
        let m = self.snapshot();
        let mut out = String::with_capacity(2048);
        let mut gauge = |name: &str, help: &str, v: i64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"));
        };
        gauge("tsfm_serve_uptime_ms", "Milliseconds since the server started", uptime_ms as i64);
        gauge("tsfm_serve_tables", "Tables in the serving snapshot", tables as i64);
        gauge(
            "tsfm_serve_connections_active",
            "Connections currently owned by a worker",
            m.active as i64,
        );
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        };
        counter("tsfm_serve_reloads_total", "Searcher snapshot hot-swaps", reloads);
        counter(
            "tsfm_serve_connections_accepted_total",
            "Connections accepted from the listener",
            m.accepted,
        );
        counter(
            "tsfm_serve_connections_shed_total",
            "Connections refused at capacity with an unavailable reply",
            m.shed,
        );
        out.push_str(concat!(
            "# HELP tsfm_serve_connections_closed_total Connections closed by limit enforcement\n",
            "# TYPE tsfm_serve_connections_closed_total counter\n"
        ));
        for (reason, v) in [
            ("idle", m.closed_idle),
            ("slow_read", m.closed_slow_read),
            ("slow_write", m.closed_slow_write),
        ] {
            out.push_str(&format!(
                "tsfm_serve_connections_closed_total{{reason=\"{reason}\"}} {v}\n"
            ));
        }
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        };
        counter(
            "tsfm_serve_worker_panics_total",
            "Connection-handler panics contained by the worker pool",
            m.worker_panics,
        );
        counter(
            "tsfm_serve_overlong_lines_total",
            "Request lines rejected for exceeding the line cap",
            m.overlong_lines,
        );
        out.push_str(concat!(
            "# HELP tsfm_serve_requests_total Requests served, by outcome\n",
            "# TYPE tsfm_serve_requests_total counter\n"
        ));
        for (outcome, v) in [
            ("ok", m.requests_ok),
            ("client_error", m.requests_client_error),
            ("server_error", m.requests_server_error),
        ] {
            out.push_str(&format!("tsfm_serve_requests_total{{outcome=\"{outcome}\"}} {v}\n"));
        }
        out.push_str(concat!(
            "# HELP tsfm_serve_latency_us Successful query latency, microseconds\n",
            "# TYPE tsfm_serve_latency_us summary\n"
        ));
        for (label, v) in [
            ("0.5", m.latency_p50_us),
            ("0.95", m.latency_p95_us),
            ("0.99", m.latency_p99_us),
        ] {
            out.push_str(&format!("tsfm_serve_latency_us{{quantile=\"{label}\"}} {v}\n"));
        }
        out.push_str(&format!("tsfm_serve_latency_us_sum {}\n", self.latency.sum()));
        out.push_str(&format!("tsfm_serve_latency_us_count {}\n", m.latency_count));
        out
    }
}

/// A copy of the counters at one instant (fields may be a few events
/// apart from each other under concurrent load; each is individually
/// exact).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub accepted: u64,
    pub shed: u64,
    pub active: usize,
    pub closed_idle: u64,
    pub closed_slow_read: u64,
    pub closed_slow_write: u64,
    pub overlong_lines: u64,
    pub requests_total: u64,
    pub requests_ok: u64,
    pub requests_client_error: u64,
    pub requests_server_error: u64,
    pub worker_panics: u64,
    pub latency_count: u64,
    pub latency_mean_us: f64,
    pub latency_p50_us: u64,
    pub latency_p95_us: u64,
    pub latency_p99_us: u64,
    pub latency_max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_reexport_behaves_like_before() {
        let h = LatencyHistogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 50);
        assert_eq!(h.percentile(0.5), 25);
        assert_eq!(h.percentile(1.0), 50);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 25.5).abs() < 1e-9);
        let empty = LatencyHistogram::new();
        assert_eq!(empty.percentile(0.99), 0);
    }

    #[test]
    fn metrics_snapshot_copies_counters() {
        let m = ServeMetrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.shed.fetch_add(1, Ordering::Relaxed);
        m.requests_total.fetch_add(2, Ordering::Relaxed);
        m.requests_ok.fetch_add(2, Ordering::Relaxed);
        m.latency.record(10);
        m.latency.record(30);
        let s = m.snapshot();
        assert_eq!(s.accepted, 3);
        assert_eq!(s.shed, 1);
        assert_eq!(s.requests_total, 2);
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.latency_p50_us, 10);
        assert_eq!(s.latency_max_us, 30);
    }

    #[test]
    fn prometheus_text_is_well_formed_and_complete() {
        let m = ServeMetrics::new();
        m.accepted.fetch_add(2, Ordering::Relaxed);
        m.requests_total.fetch_add(2, Ordering::Relaxed);
        m.requests_ok.fetch_add(1, Ordering::Relaxed);
        m.requests_client_error.fetch_add(1, Ordering::Relaxed);
        m.latency.record(120);
        let text = m.prometheus_text(7, 1234, 1);
        assert!(text.contains("tsfm_serve_tables 7\n"));
        assert!(text.contains("tsfm_serve_uptime_ms 1234\n"));
        assert!(text.contains("tsfm_serve_reloads_total 1\n"));
        assert!(text.contains("tsfm_serve_connections_accepted_total 2\n"));
        assert!(text.contains("tsfm_serve_requests_total{outcome=\"ok\"} 1\n"));
        assert!(text.contains("tsfm_serve_requests_total{outcome=\"client_error\"} 1\n"));
        assert!(text.contains("tsfm_serve_connections_closed_total{reason=\"idle\"} 0\n"));
        assert!(text.contains("tsfm_serve_latency_us_count 1\n"));
        // Exposition grammar: every non-comment, non-blank line is
        // `name[{labels}] value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
