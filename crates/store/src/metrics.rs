//! Lock-free serving metrics: a log-bucketed latency histogram plus the
//! operational counters the `stats` wire verb reports.
//!
//! Everything here is plain atomics — connection workers record into the
//! histogram and bump counters without ever taking a lock, so the ops
//! surface costs the hot path a handful of relaxed atomic increments per
//! request. Snapshots ([`MetricsSnapshot`]) are taken without stopping
//! writers and are therefore only approximately consistent across fields
//! (each individual counter is exact); that is the standard contract for
//! a stats endpoint.
//!
//! ## Histogram shape
//!
//! Latencies are recorded in whole microseconds. Values below 64µs get
//! one bucket each (exact); above that, buckets are logarithmic with 32
//! sub-buckets per power of two, so the relative quantization error of a
//! reported percentile is bounded by ~3%. Values are clamped to ~2^40µs
//! (≈13 days), far beyond any plausible request latency.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Exact buckets for 0..LINEAR_MAX µs.
const LINEAR_MAX: u64 = 64;
/// log2(LINEAR_MAX): first exponent handled logarithmically.
const LINEAR_EXP: u32 = 6;
/// Sub-buckets per power of two in the logarithmic range.
const SUBS: u64 = 32;
const SUB_BITS: u32 = 5;
/// Largest exponent tracked; larger values clamp into the last bucket.
const MAX_EXP: u32 = 40;
const NUM_BUCKETS: usize =
    LINEAR_MAX as usize + ((MAX_EXP - LINEAR_EXP) as usize + 1) * SUBS as usize;

/// A fixed-size, lock-free log-bucketed histogram of microsecond
/// latencies. `record` is wait-free (two relaxed increments and a
/// `fetch_max`); percentile extraction walks the bucket array.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(micros: u64) -> usize {
        if micros < LINEAR_MAX {
            return micros as usize;
        }
        let exp = (63 - micros.leading_zeros()).min(MAX_EXP);
        let sub = if exp >= MAX_EXP {
            SUBS - 1 // clamp: everything past 2^40µs lands in the top bucket
        } else {
            (micros >> (exp - SUB_BITS)) & (SUBS - 1)
        };
        LINEAR_MAX as usize + ((exp - LINEAR_EXP) as usize) * SUBS as usize + sub as usize
    }

    /// Lower edge of a bucket — what `percentile` reports. Reporting the
    /// lower edge (not the midpoint) keeps sub-64µs percentiles exact and
    /// never over-states a latency.
    fn bucket_floor(index: usize) -> u64 {
        if index < LINEAR_MAX as usize {
            return index as u64;
        }
        let b = index - LINEAR_MAX as usize;
        let exp = LINEAR_EXP + (b / SUBS as usize) as u32;
        let sub = (b % SUBS as usize) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }

    /// Record one latency. Wait-free; safe from any thread.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in µs, or 0 when empty. Reported
    /// from bucket lower edges: exact below 64µs, within ~3% above.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the percentile observation, 1-based, clamped to [1, n].
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        // Writers raced past the count we loaded; the max is the honest
        // answer for "the highest latency seen".
        self.max()
    }
}

/// All counters the serve frontend maintains. One instance per server,
/// shared by every connection worker. Field meanings:
///
/// * `accepted` — connections the acceptor took from the listener;
/// * `shed` — connections refused with an `unavailable` reply because the
///   worker pool and the pending queue were both full;
/// * `active` — connections currently owned by a worker (gauge);
/// * `closed_idle` — connections closed for sitting idle between requests
///   longer than the idle timeout;
/// * `closed_slow_read` — connections closed for trickling a request line
///   slower than the read timeout (slowloris defence);
/// * `closed_slow_write` — connections closed because the peer stopped
///   draining replies (write-backpressure bound);
/// * `overlong_lines` — request lines rejected for exceeding the line cap;
/// * `requests_*` — per-request outcomes (`ok` / `client_error` /
///   `server_error` partition `total`, stats requests included);
/// * `latency` — per-query service latency (successful queries only).
#[derive(Default)]
pub struct ServeMetrics {
    pub accepted: AtomicU64,
    pub shed: AtomicU64,
    pub active: AtomicUsize,
    pub closed_idle: AtomicU64,
    pub closed_slow_read: AtomicU64,
    pub closed_slow_write: AtomicU64,
    pub overlong_lines: AtomicU64,
    pub requests_total: AtomicU64,
    pub requests_ok: AtomicU64,
    pub requests_client_error: AtomicU64,
    pub requests_server_error: AtomicU64,
    pub latency: LatencyHistogram,
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self { latency: LatencyHistogram::new(), ..Default::default() }
    }

    /// Point-in-time copy of every counter plus derived percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            accepted: r(&self.accepted),
            shed: r(&self.shed),
            active: self.active.load(Ordering::Relaxed),
            closed_idle: r(&self.closed_idle),
            closed_slow_read: r(&self.closed_slow_read),
            closed_slow_write: r(&self.closed_slow_write),
            overlong_lines: r(&self.overlong_lines),
            requests_total: r(&self.requests_total),
            requests_ok: r(&self.requests_ok),
            requests_client_error: r(&self.requests_client_error),
            requests_server_error: r(&self.requests_server_error),
            latency_count: self.latency.count(),
            latency_mean_us: self.latency.mean(),
            latency_p50_us: self.latency.percentile(0.50),
            latency_p95_us: self.latency.percentile(0.95),
            latency_p99_us: self.latency.percentile(0.99),
            latency_max_us: self.latency.max(),
        }
    }
}

/// A copy of the counters at one instant (fields may be a few events
/// apart from each other under concurrent load; each is individually
/// exact).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub accepted: u64,
    pub shed: u64,
    pub active: usize,
    pub closed_idle: u64,
    pub closed_slow_read: u64,
    pub closed_slow_write: u64,
    pub overlong_lines: u64,
    pub requests_total: u64,
    pub requests_ok: u64,
    pub requests_client_error: u64,
    pub requests_server_error: u64,
    pub latency_count: u64,
    pub latency_mean_us: f64,
    pub latency_p50_us: u64,
    pub latency_p95_us: u64,
    pub latency_p99_us: u64,
    pub latency_max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range_in_order() {
        // Every representative value maps into a bucket whose floor is
        // ≤ the value, and bucket indexes are monotone in the value.
        let mut last = 0usize;
        for v in (0..200u64).chain([255, 256, 1000, 65_535, 1 << 20, 1 << 35, u64::MAX]) {
            let i = LatencyHistogram::bucket_index(v);
            assert!(i < NUM_BUCKETS, "v={v} i={i}");
            assert!(i >= last, "bucket index must not decrease: v={v}");
            assert!(LatencyHistogram::bucket_floor(i) <= v, "floor > value for {v}");
            last = i;
        }
        // Sub-64µs values are exact.
        for v in 0..LINEAR_MAX {
            let i = LatencyHistogram::bucket_index(v);
            assert_eq!(LatencyHistogram::bucket_floor(i), v);
        }
    }

    #[test]
    fn percentiles_exact_in_linear_range() {
        let h = LatencyHistogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 50);
        assert_eq!(h.percentile(0.5), 25);
        assert_eq!(h.percentile(0.02), 1);
        assert_eq!(h.percentile(1.0), 50);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 25.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_bounded_error_in_log_range() {
        let h = LatencyHistogram::new();
        // Uniform 1..=100_000 µs: p50 ≈ 50_000, p99 ≈ 99_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let got = h.percentile(q) as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.04, "q={q}: got {got}, want ~{want} (rel {rel:.3})");
        }
        assert_eq!(h.percentile(1.0 / 100_000.0), 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn huge_values_clamp_instead_of_indexing_out_of_bounds() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1 << 50);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(0.5) >= 1 << MAX_EXP);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        const THREADS: usize = 8;
        const PER: u64 = 5_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        h.record((t as u64 * 7 + i) % 300);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS as u64 * PER);
        let total: u64 = (0..NUM_BUCKETS)
            .map(|i| h.buckets[i].load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, THREADS as u64 * PER);
    }

    #[test]
    fn metrics_snapshot_copies_counters() {
        let m = ServeMetrics::new();
        m.accepted.fetch_add(3, Ordering::Relaxed);
        m.shed.fetch_add(1, Ordering::Relaxed);
        m.requests_total.fetch_add(2, Ordering::Relaxed);
        m.requests_ok.fetch_add(2, Ordering::Relaxed);
        m.latency.record(10);
        m.latency.record(30);
        let s = m.snapshot();
        assert_eq!(s.accepted, 3);
        assert_eq!(s.shed, 1);
        assert_eq!(s.requests_total, 2);
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.latency_p50_us, 10);
        assert_eq!(s.latency_max_us, 30);
    }
}
