//! The unit of catalog storage: one table's sketches plus optional neural
//! embeddings and the content hash used for incremental re-ingest.

use tsfm_sketch::TableSketch;

/// Everything the catalog persists about one table.
#[derive(Debug, Clone)]
pub struct TableRecord {
    /// The full sketch bundle (content snapshot + per-column sketches).
    pub sketch: TableSketch,
    /// Stable hash of the source bytes (e.g. the CSV text). Re-ingesting a
    /// source whose hash matches the stored record is a no-op.
    pub content_hash: u64,
    /// Optional table-level embedding (e.g. the model's pooler output).
    pub table_embedding: Option<Vec<f32>>,
    /// Optional per-column embeddings; either empty or one per column.
    pub column_embeddings: Vec<Vec<f32>>,
}

impl TableRecord {
    /// A sketch-only record (the CLI ingest path — no model required).
    pub fn from_sketch(sketch: TableSketch, content_hash: u64) -> Self {
        Self { sketch, content_hash, table_embedding: None, column_embeddings: Vec::new() }
    }

    pub fn table_id(&self) -> &str {
        &self.sketch.table_id
    }

    pub fn num_cols(&self) -> usize {
        self.sketch.columns.len()
    }

    pub fn num_rows(&self) -> usize {
        self.sketch.num_rows
    }
}
