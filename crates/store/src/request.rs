//! The typed discovery request/response pair.
//!
//! [`DiscoveryRequest`] replaces the old positional `(mode, table, k)`
//! methods with a validated builder — invalid parameter combinations are
//! rejected at `build()` time with [`StoreError::InvalidRequest`], so the
//! engine and every frontend (CLI, serve loop) share one set of rules.
//! [`DiscoveryResponse`] carries the ranked hits plus per-query timing and,
//! when requested, per-column match explanations (which query column
//! matched which corpus column — the Fig.-6 ranking made transparent).

use crate::engine::{QueryMode, TableHit};
use crate::error::{StoreError, StoreResult};

/// A validated discovery query. Construct via [`DiscoveryRequest::builder`];
/// fields are private so every instance went through validation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryRequest {
    mode: QueryMode,
    k: usize,
    min_score: Option<f64>,
    exclude_self: bool,
    columns: Option<Vec<String>>,
    explain: bool,
    profile: bool,
}

impl DiscoveryRequest {
    /// Start building a request for `mode`. Defaults: `k = 10`, no score
    /// threshold, the query table excluded from its own results, all query
    /// columns used, no explanations.
    pub fn builder(mode: QueryMode) -> DiscoveryRequestBuilder {
        DiscoveryRequestBuilder {
            mode,
            k: 10,
            min_score: None,
            exclude_self: true,
            columns: None,
            explain: false,
            profile: false,
        }
    }

    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn min_score(&self) -> Option<f64> {
        self.min_score
    }

    pub fn exclude_self(&self) -> bool {
        self.exclude_self
    }

    /// Restriction of the query to a subset of its columns, if any.
    pub fn columns(&self) -> Option<&[String]> {
        self.columns.as_deref()
    }

    pub fn explain(&self) -> bool {
        self.explain
    }

    pub fn profile(&self) -> bool {
        self.profile
    }

    /// Flip per-stage profiling on an already-validated request.
    /// Profiling never affects validation or results, so this is safe to
    /// expose outside the builder — the serve loop uses it to collect
    /// stage breakdowns for the slowlog even when the client did not ask
    /// for a profile in its response.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }
}

/// Builder for [`DiscoveryRequest`]; `build()` validates.
#[derive(Debug, Clone)]
pub struct DiscoveryRequestBuilder {
    mode: QueryMode,
    k: usize,
    min_score: Option<f64>,
    exclude_self: bool,
    columns: Option<Vec<String>>,
    explain: bool,
    profile: bool,
}

impl DiscoveryRequestBuilder {
    /// Number of result tables to return. Must be ≥ 1.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Drop hits scoring below this threshold. The score compared against
    /// is mode-specific: for `subset` it is the estimated row-set Jaccard;
    /// for `join`/`union` it is the number of matching query columns
    /// (RANK1), since raw distance sums are not comparable across queries.
    pub fn min_score(mut self, min_score: f64) -> Self {
        self.min_score = Some(min_score);
        self
    }

    /// Whether the query table itself (matched by id) is removed from the
    /// ranking. Defaults to `true`.
    pub fn exclude_self(mut self, exclude: bool) -> Self {
        self.exclude_self = exclude;
        self
    }

    /// Use only these query columns (by name). Applies to `join`/`union`;
    /// `subset` operates on table-level snapshots and rejects a filter.
    pub fn columns<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Attach per-column match explanations to the response (`join`/`union`
    /// only; `subset` has no per-column provenance).
    pub fn explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Attach a per-stage wall-time breakdown
    /// ([`DiscoveryResponse::profile`]) to the response. Costs a handful
    /// of `Instant::now()` calls on the query path; results are
    /// unaffected.
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Validate and produce the request.
    pub fn build(self) -> StoreResult<DiscoveryRequest> {
        if self.k == 0 {
            return Err(StoreError::invalid("k must be >= 1 (asked for 0 results)"));
        }
        if let Some(ms) = self.min_score {
            if !ms.is_finite() {
                return Err(StoreError::invalid(format!("min_score must be finite, got {ms}")));
            }
        }
        if let Some(cols) = &self.columns {
            if cols.is_empty() {
                return Err(StoreError::invalid(
                    "column filter is empty — omit it to use every query column",
                ));
            }
            if self.mode == QueryMode::Subset {
                return Err(StoreError::invalid(
                    "column filter does not apply to subset queries (table-level snapshots)",
                ));
            }
        }
        Ok(DiscoveryRequest {
            mode: self.mode,
            k: self.k,
            min_score: self.min_score,
            exclude_self: self.exclude_self,
            columns: self.columns,
            explain: self.explain,
            profile: self.profile,
        })
    }
}

/// One explained query-column → corpus-column match.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatch {
    /// Name of the query column.
    pub query_column: String,
    /// Name of the matched column inside the hit table.
    pub corpus_column: String,
    /// Embedding distance between the two columns (lower is closer).
    pub distance: f32,
}

/// Per-hit explanation: the column matches behind one ranked table.
#[derive(Debug, Clone, PartialEq)]
pub struct HitExplanation {
    pub table_id: String,
    /// One entry per matching query column, in query-column order.
    pub matches: Vec<ColumnMatch>,
}

/// The result of one discovery query.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryResponse {
    pub mode: QueryMode,
    /// Id of the query table the response answers.
    pub query_id: String,
    /// Number of tables in the searched corpus.
    pub corpus_size: usize,
    /// Wall-clock time the engine spent on this query, in microseconds.
    pub elapsed_micros: u64,
    /// Ranked hits, best first, at most `k`.
    pub hits: Vec<TableHit>,
    /// Parallel to `hits` when the request asked to `explain()` a
    /// `join`/`union` query; `None` otherwise.
    pub explanations: Option<Vec<HitExplanation>>,
    /// Per-stage wall-time breakdown `(stage, µs)` in execution order,
    /// when the request asked to `profile()`. Stages partition
    /// `elapsed_micros`: the engine appends an `"other"` stage for any
    /// unattributed remainder, so the entries sum to the total.
    pub profile: Option<Vec<(String, u64)>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_accessors() {
        let r = DiscoveryRequest::builder(QueryMode::Join).build().unwrap();
        assert_eq!(r.mode(), QueryMode::Join);
        assert_eq!(r.k(), 10);
        assert_eq!(r.min_score(), None);
        assert!(r.exclude_self());
        assert!(r.columns().is_none());
        assert!(!r.explain());
    }

    #[test]
    fn k_zero_rejected() {
        let err = DiscoveryRequest::builder(QueryMode::Join).k(0).build().unwrap_err();
        assert!(matches!(err, StoreError::InvalidRequest(_)), "{err}");
        assert!(err.to_string().contains("k must be >= 1"), "{err}");
    }

    #[test]
    fn non_finite_min_score_rejected() {
        for bad in [f64::NAN, f64::INFINITY] {
            let err = DiscoveryRequest::builder(QueryMode::Subset)
                .min_score(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, StoreError::InvalidRequest(_)), "{err}");
        }
    }

    #[test]
    fn column_filter_rules() {
        let err = DiscoveryRequest::builder(QueryMode::Union)
            .columns(Vec::<String>::new())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");

        let err = DiscoveryRequest::builder(QueryMode::Subset)
            .columns(["a"])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("subset"), "{err}");

        let ok = DiscoveryRequest::builder(QueryMode::Join).columns(["a", "b"]).build().unwrap();
        assert_eq!(ok.columns(), Some(&["a".to_string(), "b".to_string()][..]));
    }
}
