//! The shared read-path snapshot.
//!
//! A [`Searcher`] is an immutable view of one catalog generation: an
//! [`Arc<QueryEngine>`] plus the corpus sketches and the sketch config the
//! corpus was built with. It is `Send + Sync + Clone` (cloning is two
//! `Arc` bumps), so any number of threads — a serve loop's connection
//! workers, a batch fan-out, a background re-ranker — can query the same
//! snapshot without taking `&mut Catalog` or any lock.
//!
//! Mutating the catalog bumps its epoch and drops its cached snapshot;
//! the next [`crate::Catalog::searcher`] call rebuilds. Snapshots already
//! handed out keep answering from the generation they captured (readers
//! are never blocked or invalidated mid-flight), and
//! [`Searcher::epoch`] lets callers detect staleness.

use crate::engine::QueryEngine;
use crate::error::{StoreError, StoreResult};
use crate::request::{DiscoveryRequest, DiscoveryResponse};
use std::sync::Arc;
use tsfm_sketch::{SketchConfig, TableSketch};
use tsfm_table::Table;

/// An immutable, thread-shareable discovery snapshot. See module docs.
#[derive(Clone)]
pub struct Searcher {
    engine: Arc<QueryEngine>,
    /// Corpus sketches in ascending table-id order (the engine's order),
    /// so stored tables can themselves be used as queries by id.
    sketches: Arc<Vec<TableSketch>>,
    sketch_cfg: SketchConfig,
    epoch: u64,
}

impl Searcher {
    pub(crate) fn new(
        engine: Arc<QueryEngine>,
        sketches: Arc<Vec<TableSketch>>,
        sketch_cfg: SketchConfig,
        epoch: u64,
    ) -> Self {
        debug_assert_eq!(engine.len(), sketches.len());
        Self { engine, sketches, sketch_cfg, epoch }
    }

    /// Number of tables in the snapshot.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// The catalog generation this snapshot was taken at. A catalog whose
    /// `epoch()` has moved past this value has newer contents.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn sketch_config(&self) -> &SketchConfig {
        &self.sketch_cfg
    }

    /// The underlying engine, for advanced callers.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Sketch a table with the snapshot's own config, ready to query.
    pub fn sketch(&self, table: &Table) -> TableSketch {
        TableSketch::build(table, &self.sketch_cfg)
    }

    /// The stored sketch of a corpus table, or
    /// [`StoreError::UnknownTable`].
    pub fn sketch_of(&self, table_id: &str) -> StoreResult<&TableSketch> {
        self.sketches
            .binary_search_by(|s| s.table_id.as_str().cmp(table_id))
            .map(|i| &self.sketches[i])
            .map_err(|_| StoreError::UnknownTable(table_id.to_string()))
    }

    /// Sketch `table` and run `req` against the snapshot.
    pub fn search_table(&self, table: &Table, req: &DiscoveryRequest) -> StoreResult<DiscoveryResponse> {
        self.engine.search(&self.sketch(table), req)
    }

    /// Run `req` for a pre-built sketch (must use the snapshot's config).
    pub fn search_sketch(
        &self,
        sketch: &TableSketch,
        req: &DiscoveryRequest,
    ) -> StoreResult<DiscoveryResponse> {
        self.engine.search(sketch, req)
    }

    /// Use a table already in the corpus as the query, by id — the "what
    /// joins/unions with my ingested table X" workload.
    pub fn search_id(&self, table_id: &str, req: &DiscoveryRequest) -> StoreResult<DiscoveryResponse> {
        let sketch = self.sketch_of(table_id)?;
        self.engine.search(sketch, req)
    }

    /// Parallel batched search over the shared snapshot; results are
    /// identical to (and ordered like) serial [`Searcher::search_sketch`]
    /// calls.
    pub fn search_batch(
        &self,
        sketches: &[TableSketch],
        req: &DiscoveryRequest,
    ) -> StoreResult<Vec<DiscoveryResponse>> {
        self.engine.search_batch(sketches, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn searcher_is_send_sync_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<Searcher>();
    }
}
