//! The shared read-path snapshot.
//!
//! A [`Searcher`] is an immutable view of one catalog generation: an
//! [`Arc<QueryEngine>`] plus the corpus sketches and the sketch config the
//! corpus was built with. It is `Send + Sync + Clone` (cloning is two
//! `Arc` bumps), so any number of threads — a serve loop's connection
//! workers, a batch fan-out, a background re-ranker — can query the same
//! snapshot without taking `&mut Catalog` or any lock.
//!
//! The corpus comes in two shapes. An **eager** snapshot holds every
//! sketch in memory (small catalogs, hot `sketch_of`). A **lazy**
//! snapshot — the default once a catalog has a shard layer — holds only
//! loose sketches plus open arena handles ([`crate::shard::LazyCorpus`]);
//! shard-resident sketches are loaded by positioned read on demand,
//! through an LRU cache, so snapshot RSS is bounded by churn + cache
//! size instead of corpus size. Both shapes answer every query
//! identically: the [`QueryEngine`] carries its own per-table state, and
//! `sketch_of` only matters for by-id queries.
//!
//! Mutating the catalog bumps its epoch and drops its cached snapshot;
//! the next [`crate::Catalog::searcher`] call rebuilds. Snapshots already
//! handed out keep answering from the generation they captured (readers
//! are never blocked or invalidated mid-flight — a lazy snapshot's arena
//! descriptors even survive a compaction unlinking the files), and
//! [`Searcher::epoch`] lets callers detect staleness.

use crate::engine::QueryEngine;
use crate::error::{StoreError, StoreResult};
use crate::request::{DiscoveryRequest, DiscoveryResponse};
use crate::shard::LazyCorpus;
use std::sync::Arc;
use tsfm_sketch::{SketchConfig, TableSketch};
use tsfm_table::Table;

/// The snapshot's id-addressable sketch corpus, in one of two shapes.
#[derive(Clone)]
enum Corpus {
    /// Every sketch in memory, ascending table-id order (the engine's
    /// order).
    Eager(Arc<Vec<Arc<TableSketch>>>),
    /// Loose sketches in memory; shard-resident ones behind positioned
    /// arena reads + an LRU cache.
    Lazy(Arc<LazyCorpus>),
}

/// An immutable, thread-shareable discovery snapshot. See module docs.
#[derive(Clone)]
pub struct Searcher {
    engine: Arc<QueryEngine>,
    corpus: Corpus,
    sketch_cfg: SketchConfig,
    epoch: u64,
}

impl Searcher {
    pub(crate) fn eager(
        engine: Arc<QueryEngine>,
        sketches: Arc<Vec<Arc<TableSketch>>>,
        sketch_cfg: SketchConfig,
        epoch: u64,
    ) -> Self {
        debug_assert_eq!(engine.len(), sketches.len());
        Self { engine, corpus: Corpus::Eager(sketches), sketch_cfg, epoch }
    }

    pub(crate) fn lazy(
        engine: Arc<QueryEngine>,
        corpus: Arc<LazyCorpus>,
        sketch_cfg: SketchConfig,
        epoch: u64,
    ) -> Self {
        debug_assert_eq!(engine.len(), corpus.len());
        Self { engine, corpus: Corpus::Lazy(corpus), sketch_cfg, epoch }
    }

    /// Number of tables in the snapshot.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// The catalog generation this snapshot was taken at. A catalog whose
    /// `epoch()` has moved past this value has newer contents.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn sketch_config(&self) -> &SketchConfig {
        &self.sketch_cfg
    }

    /// Whether this snapshot loads shard-resident sketches lazily.
    pub fn is_lazy(&self) -> bool {
        matches!(self.corpus, Corpus::Lazy(_))
    }

    /// The underlying engine, for advanced callers.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Sketch a table with the snapshot's own config, ready to query.
    pub fn sketch(&self, table: &Table) -> TableSketch {
        TableSketch::build(table, &self.sketch_cfg)
    }

    /// The stored sketch of a corpus table, or
    /// [`StoreError::UnknownTable`]. On a lazy snapshot this may do a
    /// positioned arena read (any I/O or corruption error is passed
    /// through typed, never panicking).
    pub fn sketch_of(&self, table_id: &str) -> StoreResult<Arc<TableSketch>> {
        match &self.corpus {
            Corpus::Eager(sketches) => sketches
                .binary_search_by(|s| s.table_id.as_str().cmp(table_id))
                .map(|i| Arc::clone(&sketches[i]))
                .map_err(|_| StoreError::UnknownTable(table_id.to_string())),
            Corpus::Lazy(corpus) => corpus
                .sketch_of(table_id)?
                .ok_or_else(|| StoreError::UnknownTable(table_id.to_string())),
        }
    }

    /// Sketch `table` and run `req` against the snapshot.
    pub fn search_table(&self, table: &Table, req: &DiscoveryRequest) -> StoreResult<DiscoveryResponse> {
        self.engine.search(&self.sketch(table), req)
    }

    /// Run `req` for a pre-built sketch (must use the snapshot's config).
    pub fn search_sketch(
        &self,
        sketch: &TableSketch,
        req: &DiscoveryRequest,
    ) -> StoreResult<DiscoveryResponse> {
        self.engine.search(sketch, req)
    }

    /// Use a table already in the corpus as the query, by id — the "what
    /// joins/unions with my ingested table X" workload.
    pub fn search_id(&self, table_id: &str, req: &DiscoveryRequest) -> StoreResult<DiscoveryResponse> {
        let sketch = self.sketch_of(table_id)?;
        self.engine.search(&sketch, req)
    }

    /// Parallel batched search over the shared snapshot; results are
    /// identical to (and ordered like) serial [`Searcher::search_sketch`]
    /// calls.
    pub fn search_batch(
        &self,
        sketches: &[TableSketch],
        req: &DiscoveryRequest,
    ) -> StoreResult<Vec<DiscoveryResponse>> {
        self.engine.search_batch(sketches, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn searcher_is_send_sync_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<Searcher>();
    }
}
